//! # crowdsense — privacy-preserving crowd-sensing platform
//!
//! Umbrella crate re-exporting the whole workspace: the APISENSE
//! crowd-sensing middleware, the PRIVAPI privacy middleware and the
//! substrates they build on.
//!
//! This is a from-scratch reproduction of:
//!
//! > N. Haderer, V. Primault, P. Raveneau, C. Ribeiro, R. Rouvoy,
//! > S. Ben Mokhtar. *Towards a Practical Deployment of Privacy-preserving
//! > Crowd-sensing Tasks.* Middleware 2014 Posters & Demos.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use crowdsense::mobility::gen::{CityModel, PopulationConfig};
//! use crowdsense::privapi::prelude::*;
//!
//! // 1. Generate a small synthetic mobility dataset.
//! let city = CityModel::builder().seed(7).build();
//! let dataset = city.generate_population(&PopulationConfig {
//!     users: 5,
//!     days: 2,
//!     ..PopulationConfig::default()
//! });
//!
//! // 2. Anonymize it with the paper's speed-smoothing strategy.
//! let strategy = SpeedSmoothing::new(geo::Meters::new(150.0)).unwrap();
//! let protected = strategy.anonymize(&dataset, 42);
//! assert_eq!(protected.user_count(), dataset.user_count());
//! ```

#![forbid(unsafe_code)]

pub use apisense;
pub use campaign;
pub use geo;
pub use mobility;
pub use privapi;
pub use simnet;
