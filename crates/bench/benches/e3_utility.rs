//! Criterion bench for E3: utility metric computation.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use privapi::metrics::{crowded_places_utility, spatial_distortion, traffic_utility};
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e3(c: &mut Criterion) {
    let data = dataset(10, 3, 120, 0xE3);
    let strategy = SpeedSmoothing::new(geo::Meters::new(100.0)).expect("static");
    let protected = strategy.anonymize(&data.dataset, 0);

    let mut group = c.benchmark_group("e3_utility");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("crowded_places_10u3d", |b| {
        b.iter(|| {
            black_box(crowded_places_utility(
                black_box(&data.dataset),
                black_box(&protected),
                geo::Meters::new(250.0),
                20,
            ))
        })
    });
    group.bench_function("traffic_10u3d", |b| {
        b.iter(|| {
            black_box(traffic_utility(
                black_box(&data.dataset),
                black_box(&protected),
                geo::Meters::new(500.0),
            ))
        })
    });
    group.bench_function("distortion_10u3d", |b| {
        b.iter(|| {
            black_box(spatial_distortion(
                black_box(&data.dataset),
                black_box(&protected),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
