//! Micro-benchmarks of the substrates: geo primitives, spatial indexes,
//! the script interpreter, the wire codec and the network simulator.

use apisense::script::{Host, Script, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use geo::{BoundingBox, GeoPoint, Meters, QuadTree, UniformGrid};
use simnet::wire::{decode_frame, encode_frame};
use simnet::{Actor, Context, LinkModel, Message, NodeId, Simulation};
use std::hint::black_box;
use std::time::Duration;

struct NullHost;
impl Host for NullHost {
    fn call(
        &mut self,
        _path: &str,
        args: &mut [Value],
    ) -> Result<Value, apisense::ApisenseError> {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
}

struct Sink;
impl Actor for Sink {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {}
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Geo primitives.
    let a = GeoPoint::new(45.75, 4.85).unwrap();
    let b = GeoPoint::new(45.76, 4.86).unwrap();
    group.bench_function("haversine", |bch| {
        bch.iter(|| black_box(black_box(a).haversine_distance(black_box(&b))))
    });

    // Grid histogram of 10k points.
    let bbox = BoundingBox::new(
        GeoPoint::new(45.70, 4.80).unwrap(),
        GeoPoint::new(45.80, 4.90).unwrap(),
    )
    .unwrap();
    let grid = UniformGrid::new(bbox, Meters::new(250.0)).unwrap();
    let points: Vec<GeoPoint> = (0..10_000)
        .map(|i| {
            GeoPoint::new(
                45.70 + (i % 100) as f64 * 0.001,
                4.80 + (i / 100) as f64 * 0.001,
            )
            .unwrap()
        })
        .collect();
    group.bench_function("grid_histogram_10k", |bch| {
        bch.iter(|| black_box(grid.histogram(black_box(&points).iter())))
    });

    // Quadtree: build + nearest.
    group.bench_function("quadtree_build_10k", |bch| {
        bch.iter(|| {
            let mut tree = QuadTree::new(bbox);
            for (i, p) in points.iter().enumerate() {
                tree.insert(*p, i);
            }
            black_box(tree.len())
        })
    });
    let mut tree = QuadTree::new(bbox);
    for (i, p) in points.iter().enumerate() {
        tree.insert(*p, i);
    }
    group.bench_function("quadtree_nearest", |bch| {
        bch.iter(|| black_box(tree.nearest(black_box(&a))))
    });

    // Script interpreter: arithmetic loop.
    let script = Script::compile(
        "let s = 0; let i = 0; while (i < 100) { s = s + i * 2; i = i + 1; } s",
    )
    .unwrap();
    group.bench_function("script_loop_100", |bch| {
        bch.iter(|| black_box(script.run(&mut NullHost, 1_000_000)))
    });

    // Wire codec.
    let msg = Message::request(7, 99, vec![0u8; 256]);
    group.bench_function("wire_frame_roundtrip_256B", |bch| {
        bch.iter(|| {
            let framed = encode_frame(black_box(&msg));
            let mut buf = bytes::BytesMut::from(framed.as_slice());
            black_box(decode_frame(&mut buf).unwrap())
        })
    });

    // Simulator message throughput: 1k messages through a lossy link.
    group.bench_function("simnet_1k_messages", |bch| {
        bch.iter(|| {
            let mut sim = Simulation::new(1);
            sim.set_default_link(LinkModel::mobile());
            let a = sim.add_node("a", Box::new(Sink));
            let b = sim.add_node("b", Box::new(Sink));
            for _ in 0..1_000 {
                sim.post(a, b, Message::event(1, vec![0; 64]));
            }
            black_box(sim.run())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
