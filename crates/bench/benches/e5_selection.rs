//! Criterion bench for E5: strategy selection cost.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use privapi::attack::PoiAttack;
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e5(c: &mut Criterion) {
    let data = dataset(8, 2, 180, 0xE5);
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);
    let mut group = c.benchmark_group("e5_selection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("select_default_pool_8u2d", |b| {
        b.iter(|| {
            let selector = StrategySelector::new(
                Objective::CrowdedPlaces {
                    cell: geo::Meters::new(250.0),
                    k: 10,
                },
                0.3,
                1,
            )
            .with_pool(StrategyPool::default_pool());
            black_box(selector.select(black_box(&data.dataset), &reference).ok());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
