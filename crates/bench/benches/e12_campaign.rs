//! Criterion bench for multi-campaign orchestration.
//!
//! Measures the two deployment models of `bench::e12` on a small mixed
//! two-preset population:
//!
//! * `independent_sessions` — K same-config campaigns, each as its own
//!   `StreamingPublisher` re-extracting the original side per session;
//! * `orchestrated_campaigns` — the same K campaigns through one
//!   `campaign::Orchestrator` sharing the original-side session;
//! * `orchestrator_register` — registry overhead (register + duplicate
//!   rejection + retire), separate from the per-window work.

use bench::e12::mixed_population;
use campaign::{Campaign, CampaignId, Orchestrator};
use criterion::{criterion_group, criterion_main, Criterion};
use mobility::WindowedDataset;
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::streaming::StreamingPublisher;
use std::hint::black_box;
use std::time::Duration;

const CAMPAIGNS: u64 = 3;

fn bench_campaigns(c: &mut Criterion) {
    let population = mixed_population(6, 3);
    let windows = WindowedDataset::partition(&population);
    let config = PrivApiConfig::default();

    let mut group = c.benchmark_group("e12_campaign");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("independent_sessions", |b| {
        b.iter(|| {
            for _ in 0..CAMPAIGNS {
                let mut publisher = StreamingPublisher::from_privapi(PrivApi::new(config));
                black_box(publisher.publish_all(&windows).ok());
            }
        })
    });

    group.bench_function("orchestrated_campaigns", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            for id in 0..CAMPAIGNS {
                orchestrator
                    .register(Campaign::new(id, format!("c{id}"), config))
                    .expect("distinct ids");
            }
            for window in &windows {
                black_box(orchestrator.advance_day(window).expect("ascending days"));
            }
        })
    });

    group.bench_function("orchestrator_register", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            for id in 0..64u64 {
                orchestrator
                    .register(Campaign::new(id, "c", config))
                    .expect("distinct ids");
            }
            black_box(
                orchestrator
                    .register(Campaign::new(0, "dup", config))
                    .is_err(),
            );
            for id in 0..64u64 {
                orchestrator.retire(CampaignId(id)).expect("active");
            }
            black_box(orchestrator.registry().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
