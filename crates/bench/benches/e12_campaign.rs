//! Criterion bench for multi-campaign orchestration.
//!
//! Measures the two deployment models of `bench::e12` on a small mixed
//! two-preset population:
//!
//! * `independent_sessions` — K same-config campaigns, each as its own
//!   `StreamingPublisher` re-extracting the original side per session;
//! * `orchestrated_campaigns` — the same K campaigns through one
//!   `campaign::Orchestrator` sharing the original-side session;
//! * `orchestrated_donor_sharing` — the same orchestrated shape with the
//!   §3.11 donor counters (`users_donated`/`shards_donated`) summed into
//!   the measurement;
//! * `orchestrator_register` — registry overhead (register + duplicate
//!   rejection + retire), separate from the per-window work.

use bench::e12::mixed_population;
use campaign::{Campaign, CampaignId, Orchestrator};
use criterion::{criterion_group, criterion_main, Criterion};
use mobility::WindowedDataset;
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::streaming::StreamingPublisher;
use std::hint::black_box;
use std::time::Duration;

const CAMPAIGNS: u64 = 3;

fn bench_campaigns(c: &mut Criterion) {
    let population = mixed_population(6, 3);
    let windows = WindowedDataset::partition(&population);
    let config = PrivApiConfig::default();

    let mut group = c.benchmark_group("e12_campaign");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("independent_sessions", |b| {
        b.iter(|| {
            for _ in 0..CAMPAIGNS {
                let mut publisher = StreamingPublisher::from_privapi(PrivApi::new(config));
                black_box(publisher.publish_all(&windows).ok());
            }
        })
    });

    group.bench_function("orchestrated_campaigns", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            for id in 0..CAMPAIGNS {
                orchestrator
                    .register(Campaign::new(id, format!("c{id}"), config))
                    .expect("distinct ids");
            }
            for window in &windows {
                black_box(orchestrator.advance_day(window).expect("ascending days"));
            }
        })
    });

    // The §3.11 donor scheme: K fingerprint-identical campaigns, the
    // followers adopting the leader's protected side — the summed
    // `users_donated`/`shards_donated` counters are black-boxed so the
    // donor bookkeeping itself is inside the measurement.
    group.bench_function("orchestrated_donor_sharing", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            for id in 0..CAMPAIGNS {
                orchestrator
                    .register(Campaign::new(id, format!("c{id}"), config))
                    .expect("distinct ids");
            }
            let mut users_donated = 0usize;
            let mut shards_donated = 0usize;
            for window in &windows {
                let report = orchestrator.advance_day(window).expect("ascending days");
                for id in 0..CAMPAIGNS {
                    if let Some(release) = report.release_of(CampaignId(id)) {
                        users_donated += release.strategies.users_donated;
                        shards_donated += release.strategies.shards_donated;
                    }
                }
            }
            black_box((users_donated, shards_donated))
        })
    });

    group.bench_function("orchestrator_register", |b| {
        b.iter(|| {
            let mut orchestrator = Orchestrator::new();
            for id in 0..64u64 {
                orchestrator
                    .register(Campaign::new(id, "c", config))
                    .expect("distinct ids");
            }
            black_box(
                orchestrator
                    .register(Campaign::new(0, "dup", config))
                    .is_err(),
            );
            for id in 0..64u64 {
                orchestrator.retire(CampaignId(id)).expect("active");
            }
            black_box(orchestrator.registry().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
