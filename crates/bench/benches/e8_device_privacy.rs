//! Criterion bench for E8: device-side privacy filter throughput.

use apisense::device::{DeviceId, SensedRecord};
use apisense::hive::TaskId;
use apisense::privacy::{ExclusionZone, PrivacyPreferences, TimeWindow};
use apisense::script::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use mobility::{Timestamp, UserId};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Duration;

fn record(i: i64) -> SensedRecord {
    let mut payload = BTreeMap::new();
    payload.insert(
        "lat".to_string(),
        Value::Num(45.75 + (i % 100) as f64 * 1e-4),
    );
    payload.insert("lon".to_string(), Value::Num(4.85));
    SensedRecord {
        task: TaskId(1),
        user: UserId(1),
        device: DeviceId(1),
        time: Timestamp::new(i * 60),
        payload: Value::Map(payload),
    }
}

fn bench_e8(c: &mut Criterion) {
    let home = geo::GeoPoint::new(45.752, 4.85).unwrap();
    let full_chain = PrivacyPreferences::default()
        .with_exclusion_zone(ExclusionZone::new(home, geo::Meters::new(250.0)))
        .with_time_window(TimeWindow::new(7, 22))
        .with_blur(geo::Meters::new(100.0));
    let records: Vec<SensedRecord> = (0..1_000).map(record).collect();

    let mut group = c.benchmark_group("e8_device_privacy");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("filter_1000_records_full_chain", |b| {
        b.iter(|| {
            let kept = records
                .iter()
                .filter_map(|r| full_chain.filter_record(black_box(r.clone())))
                .count();
            black_box(kept)
        })
    });
    group.bench_function("hash_1000_contacts", |b| {
        let contacts: Vec<String> =
            (0..1_000).map(|i| format!("user{i}@example.org")).collect();
        b.iter(|| black_box(full_chain.hash_contacts(contacts.iter().map(String::as_str))))
    });
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
