//! Criterion bench for the sharded, spatial-indexed attack pipeline.
//!
//! Measures the three layers of the attack-path restructuring:
//!
//! * `extract_serial` vs `extract_parallel` — the per-user shard fan-out
//!   (equal on a single-core host, ≥ 1.5× on 4+ cores; results are
//!   byte-identical either way);
//! * `match_scan` vs `match_indexed` — pairwise O(R·E) matching vs probing
//!   a pre-built `ReferenceIndex` (the engine shares one index across the
//!   whole candidate pool, so the build is amortized — benched separately
//!   as `index_build`);
//! * `profile_scan` vs `profile_indexed` — the re-identification linkage
//!   distance, pairwise vs nearest-neighbor lookups;
//! * `publish_end_to_end` — one full `PrivApi::publish` on a small
//!   population, the number every other win rolls up into.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use geo::PointIndex;
use privapi::attack::{indexed_profile_distance, profile_distance};
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_attack(c: &mut Criterion) {
    let data = dataset(12, 3, 120, 0xE10);
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);
    let index = attack.index_reference(&reference);
    let protected = GaussianPerturbation::new(geo::Meters::new(120.0))
        .expect("valid sigma")
        .anonymize(&data.dataset, 0xE10);
    let extracted = attack.extract(&protected);

    let mut group = c.benchmark_group("e10_attack");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("extract_serial", |b| {
        b.iter(|| black_box(attack.extract_serial(black_box(&data.dataset))))
    });
    group.bench_function("extract_parallel", |b| {
        b.iter(|| black_box(attack.extract(black_box(&data.dataset))))
    });

    group.bench_function("match_scan", |b| {
        b.iter(|| black_box(attack.match_extracted_scan(black_box(&extracted), &reference)))
    });
    group.bench_function("match_indexed", |b| {
        b.iter(|| black_box(attack.match_extracted(black_box(&extracted), &index)))
    });
    group.bench_function("index_build", |b| {
        b.iter(|| black_box(attack.index_reference(black_box(&reference))))
    });

    // Re-identification linkage distance over every (observed, profile)
    // pair — the O(U²·R·E) term of the AP attack.
    let profiles: Vec<&Vec<geo::GeoPoint>> =
        reference.values().filter(|p| !p.is_empty()).collect();
    let profile_indexes: Vec<PointIndex> = profiles
        .iter()
        .map(|p| {
            PointIndex::build((*p).clone(), attack.config().match_distance).expect("valid cell")
        })
        .collect();
    group.bench_function("profile_scan", |b| {
        b.iter(|| {
            let total: f64 = profiles
                .iter()
                .flat_map(|o| profiles.iter().map(|p| profile_distance(o, p)))
                .sum();
            black_box(total)
        })
    });
    group.bench_function("profile_indexed", |b| {
        b.iter(|| {
            let total: f64 = profiles
                .iter()
                .flat_map(|o| {
                    profile_indexes
                        .iter()
                        .map(|p| indexed_profile_distance(o, p))
                })
                .sum();
            black_box(total)
        })
    });

    // End to end: the publish path all of the above rolls up into (its own
    // smaller population keeps the bench affordable).
    let publish_data = dataset(6, 2, 300, 0xE10);
    group.bench_function("publish_end_to_end", |b| {
        let privapi = PrivApi::default();
        b.iter(|| black_box(privapi.publish(black_box(&publish_data.dataset)).ok()))
    });
    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
