//! Criterion bench for E7: virtual-sensor query loops.

use apisense::virtual_sensor::SelectionStrategy;
use bench::e7::run_strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_vsensor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for strategy in [
        SelectionStrategy::RoundRobin,
        SelectionStrategy::EnergyAware,
        SelectionStrategy::CoverageAware,
    ] {
        group.bench_function(format!("120q_20dev_{strategy}"), |b| {
            b.iter(|| black_box(run_strategy(strategy, 20, 120, 5, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
