//! Criterion bench for the PRIVAPI evaluation engine.
//!
//! Demonstrates the two structural wins of `privapi::engine` on the
//! selection hot path (acceptance criteria of the workspace-bootstrap PR):
//!
//! * `context_reuse_*` — utility scoring through a shared
//!   `CrowdedBaseline`/`TrafficBaseline` vs. recomputing the original
//!   dataset's projection per candidate (the legacy `utility_of` shape);
//! * `engine_sequential` vs `engine_parallel` — identical reports, with the
//!   parallel run fanning candidates over the available cores (equal on a
//!   single-core host, faster as cores are added).

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use privapi::attack::PoiAttack;
use privapi::metrics::{crowded_places_utility, CrowdedBaseline};
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let data = dataset(8, 2, 180, 0xE9);
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);
    let pool = StrategyPool::default_pool();
    let objective = Objective::CrowdedPlaces {
        cell: geo::Meters::new(250.0),
        k: 10,
    };
    let protected: Vec<_> = pool
        .iter()
        .map(|s| s.anonymize(&data.dataset, 0xE9))
        .collect();

    let mut group = c.benchmark_group("e9_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // Utility scoring for the whole pool: shared original-side projection
    // (one gridding) vs. the legacy per-candidate recomputation.
    group.bench_function("context_reuse_shared", |b| {
        b.iter(|| {
            let baseline =
                CrowdedBaseline::new(black_box(&data.dataset), geo::Meters::new(250.0), 10)
                    .unwrap();
            let total: f64 = protected
                .iter()
                .map(|p| baseline.score(black_box(p)).precision_at_k)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("context_reuse_recompute", |b| {
        b.iter(|| {
            let total: f64 = protected
                .iter()
                .map(|p| {
                    crowded_places_utility(
                        black_box(&data.dataset),
                        black_box(p),
                        geo::Meters::new(250.0),
                        10,
                    )
                    .map(|r| r.precision_at_k)
                    .unwrap_or(0.0)
                })
                .sum();
            black_box(total)
        })
    });

    // Full engine runs: sequential vs parallel schedule (same report).
    group.bench_function("engine_sequential", |b| {
        let engine =
            EvaluationEngine::new(objective, 0.3, 1).with_mode(ExecutionMode::Sequential);
        b.iter(|| {
            black_box(
                engine
                    .evaluate(&pool, black_box(&data.dataset), &reference)
                    .ok(),
            )
        })
    });
    group.bench_function("engine_parallel", |b| {
        let engine =
            EvaluationEngine::new(objective, 0.3, 1).with_mode(ExecutionMode::Parallel);
        b.iter(|| {
            black_box(
                engine
                    .evaluate(&pool, black_box(&data.dataset), &reference)
                    .ok(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
