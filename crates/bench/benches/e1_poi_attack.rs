//! Criterion bench for E1: anonymization and attack throughput.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use privapi::attack::PoiAttack;
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e1(c: &mut Criterion) {
    let data = dataset(10, 3, 120, 0xE1);
    let attack = PoiAttack::default();
    let geo_i = GeoIndistinguishability::new(0.01).expect("static");
    let reference = attack.extract(&data.dataset);
    let protected = geo_i.anonymize(&data.dataset, 1);

    let mut group = c.benchmark_group("e1_poi_attack");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("geo_i_anonymize_10u3d", |b| {
        b.iter(|| black_box(geo_i.anonymize(black_box(&data.dataset), 1)))
    });
    group.bench_function("poi_extract_10u3d", |b| {
        b.iter(|| black_box(attack.extract(black_box(&data.dataset))))
    });
    group.bench_function("poi_evaluate_10u3d", |b| {
        b.iter(|| black_box(attack.evaluate_reference(black_box(&protected), &reference)))
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
