//! Criterion bench for the streaming publication pipeline.
//!
//! Measures the layers of the day-window restructuring:
//!
//! * `partition` — bucketing a dataset into `DatasetWindow`s;
//! * `session_advance_all_windows` — the cache path alone (per-user shard
//!   refresh + reference-index amendment), no candidate sweeps;
//! * `batch_republish_all_windows` vs `stream_publish_all_windows` — the
//!   two deployment models end to end: every day re-publishes the whole
//!   accumulated prefix from scratch vs a `StreamingPublisher` session
//!   reusing yesterday's shards and index (winners byte-identical, see
//!   `bench::e11`);
//! * `stream_publish_fold_baselines` — the same streaming session with
//!   the per-window `BaselineDelta` counters summed, pinning the §3.11
//!   in-place utility-baseline folds to a measured data point.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use mobility::WindowedDataset;
use privapi::attack::PoiAttack;
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_streaming(c: &mut Criterion) {
    let data = dataset(6, 3, 300, 0xE11);
    let windows = WindowedDataset::partition(&data.dataset);

    let mut group = c.benchmark_group("e11_streaming");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("partition", |b| {
        b.iter(|| black_box(WindowedDataset::partition(black_box(&data.dataset))))
    });

    group.bench_function("session_advance_all_windows", |b| {
        let attack = PoiAttack::default();
        b.iter(|| {
            let mut cache = SessionCache::new();
            for window in &windows {
                black_box(cache.advance(&attack, window).expect("ascending windows"));
            }
            black_box(cache.windows_ingested())
        })
    });

    group.bench_function("batch_republish_all_windows", |b| {
        let privapi = PrivApi::default();
        b.iter(|| {
            for i in 0..windows.len() {
                black_box(privapi.publish(&windows.prefix(i)).ok());
            }
        })
    });

    group.bench_function("stream_publish_all_windows", |b| {
        b.iter(|| {
            let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
            black_box(publisher.publish_all(&windows).ok());
        })
    });

    // The §3.11 in-place baseline folds, surfaced through the per-window
    // `BaselineDelta` counters (rebuilds stay 0 on a stationary box).
    group.bench_function("stream_publish_fold_baselines", |b| {
        b.iter(|| {
            let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
            let mut cells_updated = 0usize;
            let mut rebuilds = 0usize;
            for window in &windows {
                let release = publisher.publish_window(window).expect("ascending windows");
                cells_updated += release.baseline.cells_updated;
                rebuilds += usize::from(release.baseline.rebuilt);
            }
            black_box((cells_updated, rebuilds))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
