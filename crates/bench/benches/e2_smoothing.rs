//! Criterion bench for E2: speed-smoothing throughput at several epsilons.

use bench::data::dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privapi::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_e2(c: &mut Criterion) {
    let data = dataset(10, 3, 60, 0xE2);
    let mut group = c.benchmark_group("e2_smoothing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for eps in [50.0, 100.0, 200.0] {
        let strategy = SpeedSmoothing::new(geo::Meters::new(eps)).expect("static");
        group.bench_with_input(
            BenchmarkId::new("anonymize_10u3d", eps as u64),
            &strategy,
            |b, s| b.iter(|| black_box(s.anonymize(black_box(&data.dataset), 0))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
