//! Criterion bench for the script execution tiers (E14).
//!
//! Measures one device running the E14 sensing script per reading through
//! both tiers:
//!
//! * `interpret_per_reading` — the tree-walking interpreter baseline,
//!   walking the AST on every execution;
//! * `vm_compile_once` — the bytecode VM executing the pre-compiled
//!   program with a reused executor (the deployed client-runtime shape).
//!
//! The acceptance target for the VM tier is ≥5× interpreter throughput on
//! this workload; `bench_summary --out-e14` records the measured ratio in
//! `BENCH_e14.json`.

use apisense::device::Battery;
use apisense::hive::TaskId;
use apisense::script::{Script, Vm};
use bench::e14::SENSING_SCRIPT;
use bench::e7::build_fleet;
use criterion::{criterion_group, criterion_main, Criterion};
use mobility::Timestamp;
use std::hint::black_box;
use std::time::Duration;

fn bench_script_tiers(c: &mut Criterion) {
    let script = Script::compile(SENSING_SCRIPT).expect("sensing script compiles");
    let mut fleet = build_fleet(4, 2, 0xE14);
    let device = &mut fleet[0];
    let task = TaskId(14);
    let now = Timestamp::from_day_time(0, 9, 0, 0);

    let mut group = c.benchmark_group("e14_script");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("interpret_per_reading", |b| {
        b.iter(|| {
            // Reset charge so battery depletion never gates the sampling.
            *device.battery_mut() = Battery::at_level(1.0);
            black_box(device.sample_interpreted(task, black_box(&script), now))
        })
    });
    group.bench_function("vm_compile_once", |b| {
        let mut vm = Vm::new();
        b.iter(|| {
            *device.battery_mut() = Battery::at_level(1.0);
            black_box(device.sample_scripted(task, black_box(&script), &mut vm, now))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_script_tiers);
criterion_main!(benches);
