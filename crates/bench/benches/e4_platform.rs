//! Criterion bench for E4: end-to-end campaign simulation.

use apisense::deploy::{run_campaign, CampaignConfig};
use bench::e4;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_e4(c: &mut Criterion) {
    let task = e4::task();
    let mut group = c.benchmark_group("e4_platform");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for devices in [10usize, 25] {
        group.bench_with_input(
            BenchmarkId::new("campaign_1h", devices),
            &devices,
            |b, &devices| {
                b.iter(|| {
                    black_box(run_campaign(
                        &task,
                        &CampaignConfig {
                            devices,
                            duration_s: 3_600,
                            seed: 1,
                            ..CampaignConfig::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
