//! Criterion bench for the federated release pipeline.
//!
//! Measures the hot paths of `bench::e15` on the smoke fleet:
//!
//! * `fleet_federated` — the full federated run: config broadcast,
//!   device-local anonymization, protected upload, session assembly;
//! * `fleet_federated_chaos` — the same fleet under `FaultPlan::chaos`
//!   loss, duplication and reordering over every lane: the price of
//!   at-least-once recovery when the config broadcast sweats too;
//! * `central_counterfactual` — the server-side oracle alone
//!   (`central_release` over the windowed prefix), isolating the
//!   anonymization cost parity is measured against.

use apisense::federated::{run_federated_fleet, FederatedFleetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::FaultPlan;
use std::hint::black_box;
use std::time::Duration;

fn bench_federated(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_federated");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("fleet_federated", |b| {
        b.iter(|| black_box(run_federated_fleet(&FederatedFleetConfig::small(15))))
    });

    group.bench_function("fleet_federated_chaos", |b| {
        b.iter(|| {
            let mut config = FederatedFleetConfig::small(15);
            config.fleet.faults = FaultPlan::chaos(15);
            black_box(run_federated_fleet(&config))
        })
    });

    group.bench_function("central_counterfactual", |b| {
        let outcome = run_federated_fleet(&FederatedFleetConfig::small(15));
        b.iter(|| black_box(outcome.central()))
    });

    group.finish();
}

criterion_group!(benches, bench_federated);
criterion_main!(benches);
