//! Criterion bench for E6: participation simulation.

use apisense::incentives::{simulate_campaign, CampaignConfig, IncentiveStrategy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_e6(c: &mut Criterion) {
    let config = CampaignConfig {
        users: 300,
        days: 28,
        records_per_active_day: 48,
        seed: 1,
    };
    let mut group = c.benchmark_group("e6_incentives");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for strategy in [
        IncentiveStrategy::None,
        IncentiveStrategy::Ranking,
        IncentiveStrategy::WinWin,
    ] {
        group.bench_function(format!("campaign_300u28d_{strategy}"), |b| {
            b.iter(|| black_box(simulate_campaign(black_box(&strategy), &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
