//! Criterion bench for fault-injected reliable ingestion.
//!
//! Measures the hot paths of `bench::e13` on the smoke fleet:
//!
//! * `fleet_faultfree` — the full device→Hive fleet run with no injected
//!   faults (the byte-identity oracle);
//! * `fleet_chaos` — the same fleet under `FaultPlan::chaos` burst loss,
//!   duplication and reordering: the price of at-least-once recovery;
//! * `sender_receiver_cycle` — the transport micro-loop alone (enqueue →
//!   poll → accept → ack) without the simulator, isolating protocol
//!   overhead from event-queue overhead.

use apisense::fleet::{run_fleet, FleetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::reliable::{ReliableConfig, ReliableReceiver, ReliableSender};
use simnet::FaultPlan;
use std::hint::black_box;
use std::time::Duration;

fn bench_reliable(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_reliable");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("fleet_faultfree", |b| {
        b.iter(|| black_box(run_fleet(&FleetConfig::small(11))))
    });

    group.bench_function("fleet_chaos", |b| {
        b.iter(|| {
            let mut config = FleetConfig::small(11);
            config.faults = FaultPlan::chaos(11);
            black_box(run_fleet(&config))
        })
    });

    group.bench_function("sender_receiver_cycle", |b| {
        let chunk = vec![0u8; 256];
        b.iter(|| {
            let mut tx = ReliableSender::new(1, ReliableConfig::default());
            let mut rx = ReliableReceiver::new();
            let mut now = 0u64;
            for _ in 0..256 {
                tx.enqueue(chunk.clone());
                for t in tx.poll(now) {
                    let (released, ack) = rx.accept(t.frame.sender, t.frame.seq, t.frame.chunk);
                    black_box(released);
                    tx.on_ack(&ack, now + 1);
                }
                now += 2;
            }
            black_box((tx.acked(), rx.watermark()))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_reliable);
criterion_main!(benches);
