//! E12 — multi-campaign orchestration: N concurrent campaigns through the
//! shared-population `campaign::Orchestrator` vs N independent
//! `StreamingPublisher` sessions.
//!
//! The workload mixes two [`ScenarioPreset`] populations (commuters and a
//! sparse rural cohort merged into one stream) and four campaign shapes:
//!
//! * K full-population campaigns with identical attack configurations —
//!   the headline group: under the orchestrator their original-side
//!   per-user extraction is paid **once**, vs **K×** for independent
//!   sessions;
//! * one user-subset campaign (the commuter cohort) with the same attack
//!   configuration — derives shards from the shared session whenever the
//!   extraction grids agree;
//! * one campaign with its own attack parameters — pays exactly its own
//!   original-side pass.
//!
//! Per-campaign winner parity against the independent replay is asserted
//! for every release before any number is reported. The `bench_summary`
//! binary drives [`run`] and emits `BENCH_e12.json` next to e10/e11.

use crate::Scale;
use campaign::{Campaign, CampaignId, Orchestrator};
use mobility::gen::ScenarioPreset;
use mobility::{Dataset, LocationRecord, ParticipantFilter, UserId, WindowedDataset};
use privapi::attack::{PoiAttack, PoiAttackConfig};
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::streaming::{PopulationCache, StreamingPublisher};
use std::fmt;
use std::time::Instant;

/// Workload shape for one E12 run.
#[derive(Debug, Clone)]
pub struct E12Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Total population size, split evenly between the commuter and the
    /// sparse-rural scenario presets.
    pub users: usize,
    /// Days of data (= windows).
    pub days: usize,
    /// Same-attack-configuration full-population campaigns (the shared
    /// group). The run adds one subset campaign and one custom-attack
    /// campaign on top.
    pub same_config_campaigns: usize,
}

impl E12Config {
    /// Tiny CI smoke shape: seconds end to end, still exercising sharing,
    /// derivation, the custom-attack path and per-release parity.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            users: 6,
            days: 3,
            same_config_campaigns: 3,
        }
    }

    /// The canonical population for `scale`. `Large` is bounded below the
    /// streaming population: the experiment's baseline replays the whole
    /// stream once per campaign (K + 2 times), so the O(active-users)
    /// claim itself is measured by E11 at the full `Scale::Large`
    /// population instead.
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, _) = scale.population();
        let (users, days) = crate::data::by_scale(
            scale,
            (users, days),
            (users, days),
            (users, days),
            (1_000, 6),
        );
        Self {
            label: format!("{scale:?}").to_lowercase(),
            users,
            days,
            same_config_campaigns: 4,
        }
    }
}

/// The merged two-preset population: first half commuters, second half
/// sparse-rural users re-keyed past the commuter ids, plus two
/// fixed-position *boundary beacons* (think roadside reference stations)
/// at opposite corners outside both presets' excursion range, reporting
/// a few fixes every day. The beacons pin the population bounding box
/// from day 0, so a user subset that includes them shares the
/// population's extraction grid on every window — which is exactly the
/// condition under which the orchestrator can *derive* subset shards
/// from the shared session instead of re-extracting them, the path this
/// experiment is built to measure. Deterministic per `(users, days)`.
pub fn mixed_population(users: usize, days: usize) -> Dataset {
    let commuters = users / 2 + users % 2;
    let rural = users - commuters;
    let mut records: Vec<LocationRecord> = ScenarioPreset::Commuter
        .generate(commuters, days, 0xE12)
        .dataset
        .iter_records()
        .copied()
        .collect();
    if rural > 0 {
        records.extend(
            ScenarioPreset::SparseRural
                .generate(rural, days, 0xE12 ^ 1)
                .dataset
                .iter_records()
                .map(|r| {
                    LocationRecord::new(UserId(r.user.0 + commuters as u64), r.time, r.point)
                }),
        );
    }
    // Boundary beacons: the sparse-rural preset roams ≤ 20 km (≈ 0.18°)
    // around the shared city centre, so ±0.35° lies strictly outside
    // every generated fix and the two corners bound the merged box.
    let centre = geo::GeoPoint::clamped(45.7578, 4.8320);
    for (slot, (dlat, dlon)) in [(-0.35, -0.35), (0.35, 0.35)].iter().enumerate() {
        let beacon = UserId((users + slot) as u64);
        let site = geo::GeoPoint::clamped(centre.latitude() + dlat, centre.longitude() + dlon);
        for day in 0..days as i64 {
            for i in 0..4i64 {
                records.push(LocationRecord::new(
                    beacon,
                    mobility::Timestamp::new(day * mobility::DAY_SECONDS + i * 3_600),
                    site,
                ));
            }
        }
    }
    Dataset::from_records(records)
}

/// Ids of the two boundary beacons appended by [`mixed_population`].
pub fn beacon_users(users: usize) -> [UserId; 2] {
    [UserId(users as u64), UserId(users as u64 + 1)]
}

/// Measured orchestrated-vs-independent numbers plus the invariants they
/// were taken under.
#[derive(Debug, Clone)]
pub struct E12Report {
    /// Workload label.
    pub label: String,
    /// Worker threads available.
    pub threads: usize,
    /// Population size (both presets).
    pub users: usize,
    /// Records in the merged population.
    pub records: usize,
    /// Day windows processed.
    pub windows: usize,
    /// Campaigns run (same-config group + subset + custom attack).
    pub campaigns: usize,
    /// Size of the same-attack-configuration full-population group.
    pub same_config_campaigns: usize,
    /// Shared original-side sessions the orchestrator maintained.
    pub shared_sessions: usize,
    /// Releases published by the orchestrator across all windows.
    pub releases: usize,
    /// Wall time of the N independent streaming sessions, ms.
    pub independent_total_ms: f64,
    /// Wall time of the orchestrated run, ms.
    pub orchestrated_total_ms: f64,
    /// Per-user extraction passes of the independent replay (all probes).
    pub independent_user_extractions: usize,
    /// Per-user extraction passes of the orchestrated run (all probes).
    pub orchestrated_user_extractions: usize,
    /// Original-side per-user extraction cost of ONE population replay —
    /// what the shared group pays once under the orchestrator.
    pub original_side_user_extractions: usize,
    /// Original-side cost the independent same-config group paid (K×).
    pub independent_original_user_extractions: usize,
    /// Full-dataset extraction passes, independent replay.
    pub independent_extractions: usize,
    /// Full-dataset extraction passes, orchestrated run.
    pub orchestrated_extractions: usize,
    /// Subset-campaign shards derived (cloned) from the shared session.
    pub shards_derived: usize,
    /// Protected-side anonymizations the same-config followers adopted
    /// from their group leader's donor snapshot instead of recomputing.
    pub users_donated: usize,
    /// Protected-side extraction shards adopted from the donor snapshot.
    pub shards_donated: usize,
    /// Orchestrated releases where a stale utility-baseline fold was
    /// discarded and rebuilt (a quantized-grid move; a session's first
    /// build is not counted, and windows fold in place otherwise).
    pub baseline_rebuilds: usize,
    /// Baseline cells / day-histogram entries touched by in-place folds
    /// across all orchestrated releases.
    pub baseline_cells_updated: usize,
}

impl E12Report {
    /// End-to-end speedup of orchestration over independent sessions.
    pub fn total_speedup(&self) -> f64 {
        self.independent_total_ms / self.orchestrated_total_ms.max(1e-9)
    }

    /// How many times over the independent replay pays the shared group's
    /// original-side extraction (≈ the group size K; the orchestrator
    /// pays it once).
    pub fn original_side_ratio(&self) -> f64 {
        self.independent_original_user_extractions as f64
            / self.original_side_user_extractions.max(1) as f64
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace
    /// has no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e12_multi_campaign\",\n{}  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"users\": {},\n  \"records\": {},\n  \"windows\": {},\n  \
             \"campaigns\": {},\n  \"same_config_campaigns\": {},\n  \
             \"shared_sessions\": {},\n  \"releases\": {},\n  \
             \"independent_total_ms\": {:.3},\n  \"orchestrated_total_ms\": {:.3},\n  \
             \"total_speedup\": {:.3},\n  \"independent_user_extractions\": {},\n  \
             \"orchestrated_user_extractions\": {},\n  \
             \"original_side_user_extractions\": {},\n  \
             \"independent_original_user_extractions\": {},\n  \
             \"original_side_ratio\": {:.3},\n  \"independent_extractions\": {},\n  \
             \"orchestrated_extractions\": {},\n  \"shards_derived\": {},\n  \
             \"users_donated\": {},\n  \"shards_donated\": {},\n  \
             \"baseline_rebuilds\": {},\n  \"baseline_cells_updated\": {}\n}}\n",
            crate::host_json(),
            self.label,
            self.threads,
            self.users,
            self.records,
            self.windows,
            self.campaigns,
            self.same_config_campaigns,
            self.shared_sessions,
            self.releases,
            self.independent_total_ms,
            self.orchestrated_total_ms,
            self.total_speedup(),
            self.independent_user_extractions,
            self.orchestrated_user_extractions,
            self.original_side_user_extractions,
            self.independent_original_user_extractions,
            self.original_side_ratio(),
            self.independent_extractions,
            self.orchestrated_extractions,
            self.shards_derived,
            self.users_donated,
            self.shards_donated,
            self.baseline_rebuilds,
            self.baseline_cells_updated,
        )
    }
}

impl fmt::Display for E12Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E12 multi-campaign orchestration ({}, {} users, {} records, {} windows, \
             {} campaigns [{} same-config], {} threads)",
            self.label,
            self.users,
            self.records,
            self.windows,
            self.campaigns,
            self.same_config_campaigns,
            self.threads
        )?;
        let widths = [24, 16, 14, 9];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "path".into(),
                    "independent ms".into(),
                    "orchestrated ms".into(),
                    "speedup".into()
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "all campaigns".into(),
                    format!("{:.3}", self.independent_total_ms),
                    format!("{:.3}", self.orchestrated_total_ms),
                    format!("{:.2}x", self.total_speedup()),
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "per-user extractions: {} independent vs {} orchestrated; original side \
             {} -> {} ({:.1}x shared across the same-config group)",
            self.independent_user_extractions,
            self.orchestrated_user_extractions,
            self.independent_original_user_extractions,
            self.original_side_user_extractions,
            self.original_side_ratio()
        )?;
        writeln!(
            f,
            "full passes: {} independent vs {} orchestrated; {} shared sessions, \
             {} releases, {} subset shards derived",
            self.independent_extractions,
            self.orchestrated_extractions,
            self.shared_sessions,
            self.releases,
            self.shards_derived
        )?;
        write!(
            f,
            "donor sharing: {} anonymizations / {} shards adopted by followers; \
             baselines: {} rebuilds, {} cells folded",
            self.users_donated,
            self.shards_donated,
            self.baseline_rebuilds,
            self.baseline_cells_updated
        )
    }
}

/// The campaign mix of one run: K same-config full-population campaigns,
/// one commuter-subset campaign, one custom-attack campaign.
fn campaign_mix(
    config: &E12Config,
    default_attack: &PoiAttack,
    custom_attack: &PoiAttack,
) -> Vec<(u64, ParticipantFilter, PoiAttack)> {
    // The subset: the commuter cohort plus the two boundary beacons —
    // with the beacons aboard, the subset's bounding box equals the
    // population's, so its original-side shards derive from the shared
    // session instead of being re-extracted.
    let commuters = config.users / 2 + config.users % 2;
    let subset = ParticipantFilter::users(
        (0..commuters as u64)
            .map(UserId)
            .chain(beacon_users(config.users))
            .collect::<Vec<_>>(),
    );
    let mut mix: Vec<(u64, ParticipantFilter, PoiAttack)> = (0..config.same_config_campaigns)
        .map(|k| (k as u64, ParticipantFilter::All, default_attack.clone()))
        .collect();
    mix.push((100, subset, default_attack.clone()));
    mix.push((200, ParticipantFilter::All, custom_attack.clone()));
    mix
}

/// The custom attack parameters of the differing-config campaign.
fn custom_attack_config() -> PoiAttackConfig {
    PoiAttackConfig {
        match_distance: geo::Meters::new(400.0),
        ..PoiAttackConfig::default()
    }
}

/// Runs E12: replays the mixed-preset population through both deployment
/// models, asserting per-campaign winner parity on every release before
/// reporting any timing.
pub fn run(config: &E12Config) -> E12Report {
    let population = mixed_population(config.users, config.days);
    let windows = WindowedDataset::partition(&population);
    assert!(!windows.is_empty(), "population must span at least a day");
    let privacy = PrivApiConfig::default();

    // Independent model: one standalone streaming session per campaign,
    // each fed its own filtered window stream.
    let independent_default_probe = PoiAttack::default();
    let independent_custom_probe = PoiAttack::new(custom_attack_config());
    let mix = campaign_mix(
        config,
        &independent_default_probe,
        &independent_custom_probe,
    );
    let mut independent_total_ms = 0.0;
    let mut independent_releases: Vec<Vec<Option<privapi::streaming::PublishedWindow>>> =
        Vec::new();
    for (_, filter, attack) in &mix {
        let mut publisher =
            StreamingPublisher::from_privapi(PrivApi::new(privacy).with_attack(attack.clone()));
        let mut releases = Vec::with_capacity(windows.len());
        for window in &windows {
            match filter.filter_window(window) {
                Some(filtered) => {
                    let start = Instant::now();
                    let release = publisher
                        .publish_window(&filtered)
                        .expect("independent publish succeeds");
                    independent_total_ms += start.elapsed().as_secs_f64() * 1e3;
                    releases.push(Some(release));
                }
                None => releases.push(None),
            }
        }
        independent_releases.push(releases);
    }
    let independent_user_extractions = independent_default_probe.user_extractions()
        + independent_custom_probe.user_extractions();
    let independent_extractions =
        independent_default_probe.extractions() + independent_custom_probe.extractions();

    // The original-side cost of one population replay — the quantity the
    // same-config group shares under the orchestrator and pays K× when
    // independent.
    let original_probe = PoiAttack::default();
    let mut original_cache = PopulationCache::new();
    for window in &windows {
        original_cache
            .advance(&original_probe, window)
            .expect("ascending windows");
    }
    let original_side_user_extractions = original_probe.user_extractions();

    // Orchestrated model: one orchestrator running the same mix.
    let orchestrated_default_probe = PoiAttack::default();
    let orchestrated_custom_probe = PoiAttack::new(custom_attack_config());
    let mix = campaign_mix(
        config,
        &orchestrated_default_probe,
        &orchestrated_custom_probe,
    );
    let mut orchestrator = Orchestrator::new();
    for (id, filter, attack) in &mix {
        orchestrator
            .register(
                Campaign::new(*id, format!("c{id}"), privacy)
                    .with_filter(filter.clone())
                    .with_attack(attack.clone()),
            )
            .expect("distinct campaign ids");
    }
    let mut orchestrated_total_ms = 0.0;
    let mut releases = 0;
    let mut shards_derived = 0;
    let mut users_donated = 0;
    let mut shards_donated = 0;
    let mut baseline_rebuilds = 0;
    let mut baseline_cells_updated = 0;
    for (w, window) in windows.iter().enumerate() {
        let start = Instant::now();
        let report = orchestrator.advance_day(window).expect("ascending days");
        orchestrated_total_ms += start.elapsed().as_secs_f64() * 1e3;
        for (c, (id, _, _)) in mix.iter().enumerate() {
            let orchestrated = report.release_of(CampaignId(*id));
            let independent = independent_releases[c][w].as_ref();
            match (orchestrated, independent) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.published.selection, b.published.selection,
                        "campaign {id} window {w}: orchestrated winners drifted"
                    );
                    assert_eq!(a.published.dataset, b.published.dataset);
                    releases += 1;
                    shards_derived += a.delta.users_derived;
                    users_donated += a.strategies.users_donated;
                    shards_donated += a.strategies.shards_donated;
                    baseline_rebuilds += usize::from(a.baseline.rebuilt);
                    baseline_cells_updated += a.baseline.cells_updated;
                }
                (None, None) => {}
                (a, b) => panic!(
                    "campaign {id} window {w}: orchestrated {:?} vs independent {:?}",
                    a.map(|r| r.day),
                    b.map(|r| r.day)
                ),
            }
        }
    }
    let orchestrated_user_extractions = orchestrated_default_probe.user_extractions()
        + orchestrated_custom_probe.user_extractions();
    let orchestrated_extractions =
        orchestrated_default_probe.extractions() + orchestrated_custom_probe.extractions();

    E12Report {
        label: config.label.clone(),
        threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        users: config.users,
        records: population.record_count(),
        windows: windows.len(),
        campaigns: mix.len(),
        same_config_campaigns: config.same_config_campaigns,
        shared_sessions: orchestrator.shared_sessions(),
        releases,
        independent_total_ms,
        orchestrated_total_ms,
        independent_user_extractions,
        orchestrated_user_extractions,
        original_side_user_extractions,
        independent_original_user_extractions: config.same_config_campaigns
            * original_side_user_extractions,
        independent_extractions,
        orchestrated_extractions,
        shards_derived,
        users_donated,
        shards_donated,
        baseline_rebuilds,
        baseline_cells_updated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_invariants_and_renders() {
        let report = run(&E12Config::smoke());
        assert_eq!(report.windows, 3);
        assert_eq!(report.campaigns, report.same_config_campaigns + 2);
        // Two sessions: the default-attack group (+ subset donor) and the
        // custom-attack campaign.
        assert_eq!(report.shared_sessions, 2);
        assert!(report.releases > 0);
        // The orchestrated run must beat the independent replay on
        // per-user extraction work: the same-config group shares one
        // original-side pass instead of K.
        assert!(
            report.orchestrated_user_extractions < report.independent_user_extractions,
            "orchestrated {} must undercut independent {}",
            report.orchestrated_user_extractions,
            report.independent_user_extractions
        );
        // The saving is at least (K-1)× the shared original-side cost —
        // subset derivation only widens the gap.
        assert!(
            report.independent_user_extractions - report.orchestrated_user_extractions
                >= (report.same_config_campaigns - 1) * report.original_side_user_extractions,
            "{report:?}"
        );
        assert!(report.original_side_ratio() >= report.same_config_campaigns as f64 - 1e-9);
        // The beacon-pinned subset actually exercises derivation: its
        // shards are cloned from the shared session, never re-extracted.
        assert!(
            report.shards_derived > 0,
            "the subset campaign must derive shards from the shared session"
        );
        // No full passes anywhere: every campaign stays on the delta
        // paths (the default pool is fully local).
        assert_eq!(report.independent_extractions, 0);
        assert_eq!(report.orchestrated_extractions, 0);
        // K = 3 same-config campaigns means two followers per window, and
        // followers adopt the leader's protected side wholesale.
        assert!(report.users_donated > 0, "{report:?}");
        assert!(report.shards_donated > 0, "{report:?}");
        // The beacon-pinned bounding box never moves, so no baseline fold
        // is ever discarded — every window folds in place.
        assert_eq!(report.baseline_rebuilds, 0, "{report:?}");
        assert!(report.baseline_cells_updated > 0, "{report:?}");
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e12_multi_campaign\"",
            "\"independent_total_ms\"",
            "\"orchestrated_total_ms\"",
            "\"original_side_ratio\"",
            "\"independent_original_user_extractions\"",
            "\"shards_derived\"",
            "\"users_donated\"",
            "\"shards_donated\"",
            "\"baseline_rebuilds\"",
            "\"baseline_cells_updated\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("all campaigns"));
        assert!(text.contains("per-user extractions:"));
        assert!(text.contains("donor sharing:"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E12Config::smoke().users, 6);
        let medium = E12Config::from_scale(Scale::Medium);
        assert_eq!(medium.label, "medium");
        assert_eq!(medium.users, 80);
        assert_eq!(medium.days, 10);
        assert_eq!(medium.same_config_campaigns, 4);
    }

    #[test]
    fn mixed_population_blends_two_presets_deterministically() {
        let a = mixed_population(6, 2);
        assert_eq!(a, mixed_population(6, 2));
        // Both cohorts present — commuter ids 0..3, rural ids 3..6 (rural
        // users may drop sparse days but keep day 0) — plus two boundary
        // beacons past the population ids.
        assert_eq!(a.user_count(), 8);
        assert_eq!(beacon_users(6), [UserId(6), UserId(7)]);
        let commuter_records = a.iter_records().filter(|r| r.user.0 < 3).count();
        let rural_records = a
            .iter_records()
            .filter(|r| (3..6).contains(&r.user.0))
            .count();
        assert!(commuter_records > 0 && rural_records > 0);
        // Commuters sample faster and participate more.
        assert!(commuter_records > rural_records);
        // The beacons pin the bounding box: dropping them shrinks it.
        let beacons = ParticipantFilter::users(beacon_users(6));
        assert_eq!(
            a.bounding_box(),
            beacons.filter_dataset(&a).bounding_box(),
            "the two beacons must bound the merged population"
        );
    }
}
