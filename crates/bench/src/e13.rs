//! E13 — fault-injected reliable ingestion: at-least-once device→Hive
//! delivery with byte-identical published windows under chaos.
//!
//! Three fleet runs per scale, all over the same seeded population
//! ([`apisense::fleet::run_fleet`]):
//!
//! * **fault-free** — the oracle: published windows must be byte-identical
//!   to [`mobility::WindowedDataset::partition`] of the generated
//!   population, with clean [`privapi::streaming::IngestDelta`]s;
//! * **chaos** — [`simnet::FaultPlan::chaos`] bursty loss + duplication +
//!   reordering: every datum still arrives within each day's grace window,
//!   so the published windows must again be byte-identical to the oracle —
//!   the transport sweats (retries, dup absorption) so the pipeline never
//!   does;
//! * **partition** — half the fleet severed across a day-close deadline:
//!   the stragglers' data misses its window and must be quarantined into
//!   the next one, with the audit counters conserving every record.
//!
//! The report carries delivery-latency percentiles (enqueue→ack) and the
//! retry/duplicate/reorder/drop counters of each run; every invariant is
//! asserted before any number is reported. The `bench_summary` binary
//! drives [`run`] and emits `BENCH_e13.json` next to e10–e12/e14.

use crate::Scale;
use apisense::collect::window_fingerprint;
use apisense::fleet::{run_fleet, FleetConfig, FleetOutcome};
use mobility::DAY_SECONDS;
use simnet::fault::Partition;
use simnet::reliable::ReliableConfig;
use simnet::{FaultPlan, LinkModel, NodeId};
use std::fmt;
use std::time::Instant;

/// Workload shape for one E13 run.
#[derive(Debug, Clone)]
pub struct E13Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Seed for population, simulator and fault schedules.
    pub seed: u64,
    /// Fleet size (one device per user).
    pub users: usize,
    /// Days of sensing (= scheduled windows).
    pub days: i64,
    /// Sensing interval of the generated trajectories, in seconds.
    pub sampling_interval_s: i64,
}

impl E13Config {
    /// Tiny CI smoke shape: a couple of seconds end to end, still
    /// exercising chaos byte-identity and partition quarantine.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            seed: 0xE13,
            users: 6,
            days: 2,
            sampling_interval_s: 900,
        }
    }

    /// The canonical population for `scale`. `Large` is bounded below the
    /// streaming population: fault-injected ingestion replays every
    /// device's upload schedule twice (chaos + control), so the
    /// O(active-users) claim itself is measured by E11 at the full
    /// `Scale::Large` population instead.
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, interval) = crate::data::by_scale(
            scale,
            scale.population(),
            scale.population(),
            scale.population(),
            (2_000, 8, 1_200),
        );
        Self {
            label: format!("{scale:?}").to_lowercase(),
            seed: 0xE13,
            users,
            days: days as i64,
            sampling_interval_s: interval,
        }
    }

    fn fleet(&self, faults: FaultPlan) -> FleetConfig {
        FleetConfig {
            seed: self.seed,
            users: self.users,
            days: self.days,
            sampling_interval_s: self.sampling_interval_s,
            upload_every_s: 1_800,
            grace_s: 14_400,
            link: LinkModel::mobile(),
            faults,
            reliable: ReliableConfig::default(),
        }
    }
}

/// Latency percentiles plus the network/fault counters of one fleet run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunNumbers {
    /// Wall-clock time of the simulated run, ms (host time, not sim time).
    pub wall_ms: f64,
    /// Chunks acknowledged (latency samples).
    pub acked_chunks: usize,
    /// Median enqueue→ack delivery latency, sim-ms.
    pub latency_p50_ms: u64,
    /// 95th-percentile delivery latency, sim-ms.
    pub latency_p95_ms: u64,
    /// 99th-percentile delivery latency, sim-ms.
    pub latency_p99_ms: u64,
    /// Worst delivery latency, sim-ms.
    pub latency_max_ms: u64,
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by the link model.
    pub dropped: u64,
    /// Messages dropped by injected faults (burst loss, partitions,
    /// crashed destinations).
    pub dropped_by_fault: u64,
    /// Fault-injected extra copies delivered.
    pub duplicated: u64,
    /// Messages delayed out of order by fault injection.
    pub reordered: u64,
    /// Transport retransmissions.
    pub retries: u64,
    /// Duplicate frame deliveries absorbed by the ingest dedup watermark.
    pub dup_batches_absorbed: u64,
    /// Records quarantined into later windows.
    pub quarantined_records: u64,
    /// Windows published with a degraded (non-clean) delta.
    pub degraded_windows: usize,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn numbers(outcome: &FleetOutcome, wall_ms: f64) -> RunNumbers {
    let mut latencies = outcome.ack_latencies_ms.clone();
    latencies.sort_unstable();
    let stats = outcome.stats;
    RunNumbers {
        wall_ms,
        acked_chunks: latencies.len(),
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p95_ms: percentile(&latencies, 0.95),
        latency_p99_ms: percentile(&latencies, 0.99),
        latency_max_ms: percentile(&latencies, 1.0),
        sent: stats.sent,
        delivered: stats.delivered,
        dropped: stats.dropped,
        dropped_by_fault: stats.dropped_by_fault,
        duplicated: stats.duplicated,
        reordered: stats.reordered,
        retries: stats.retries,
        dup_batches_absorbed: outcome.deltas.iter().map(|d| d.batches_duplicate).sum(),
        quarantined_records: outcome.deltas.iter().map(|d| d.records_quarantined).sum(),
        degraded_windows: outcome.deltas.iter().filter(|d| !d.is_clean()).count(),
    }
}

fn json_run(name: &str, n: &RunNumbers) -> String {
    format!(
        "  \"{name}\": {{\n    \"wall_ms\": {:.3},\n    \"acked_chunks\": {},\n    \
         \"latency_p50_ms\": {},\n    \"latency_p95_ms\": {},\n    \
         \"latency_p99_ms\": {},\n    \"latency_max_ms\": {},\n    \"sent\": {},\n    \
         \"delivered\": {},\n    \"dropped\": {},\n    \"dropped_by_fault\": {},\n    \
         \"duplicated\": {},\n    \"reordered\": {},\n    \"retries\": {},\n    \
         \"dup_batches_absorbed\": {},\n    \"quarantined_records\": {},\n    \
         \"degraded_windows\": {}\n  }}",
        n.wall_ms,
        n.acked_chunks,
        n.latency_p50_ms,
        n.latency_p95_ms,
        n.latency_p99_ms,
        n.latency_max_ms,
        n.sent,
        n.delivered,
        n.dropped,
        n.dropped_by_fault,
        n.duplicated,
        n.reordered,
        n.retries,
        n.dup_batches_absorbed,
        n.quarantined_records,
        n.degraded_windows,
    )
}

/// Measured numbers of the three fleet runs plus the invariants they were
/// taken under (byte-identity and record conservation are asserted inside
/// [`run`] before the report exists).
#[derive(Debug, Clone)]
pub struct E13Report {
    /// Workload label.
    pub label: String,
    /// Fleet size.
    pub users: usize,
    /// Scheduled day windows.
    pub days: i64,
    /// Records generated (and eventually published) per run.
    pub records: u64,
    /// The oracle run (no injected faults).
    pub faultfree: RunNumbers,
    /// The chaos run (burst loss + duplication + reordering).
    pub chaos: RunNumbers,
    /// The partition run (half the fleet severed across a day close).
    pub partition: RunNumbers,
}

impl E13Report {
    /// Renders the report as a JSON object (hand-rolled: the workspace
    /// has no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e13_reliable_ingestion\",\n{}  \"scale\": \"{}\",\n  \
             \"users\": {},\n  \"days\": {},\n  \"records\": {},\n{},\n{},\n{}\n}}\n",
            crate::host_json(),
            self.label,
            self.users,
            self.days,
            self.records,
            json_run("faultfree", &self.faultfree),
            json_run("chaos", &self.chaos),
            json_run("partition", &self.partition),
        )
    }
}

impl fmt::Display for E13Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E13 reliable ingestion under chaos ({}, {} devices, {} days, {} records)",
            self.label, self.users, self.days, self.records
        )?;
        let widths = [11, 9, 9, 9, 9, 8, 8, 8, 8, 11];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "run".into(),
                    "p50 ms".into(),
                    "p95 ms".into(),
                    "p99 ms".into(),
                    "max ms".into(),
                    "retries".into(),
                    "dups".into(),
                    "reord".into(),
                    "dropped".into(),
                    "quarantined".into(),
                ],
                &widths
            )
        )?;
        for (name, n) in [
            ("fault-free", &self.faultfree),
            ("chaos", &self.chaos),
            ("partition", &self.partition),
        ] {
            writeln!(
                f,
                "{}",
                crate::row(
                    &[
                        name.into(),
                        n.latency_p50_ms.to_string(),
                        n.latency_p95_ms.to_string(),
                        n.latency_p99_ms.to_string(),
                        n.latency_max_ms.to_string(),
                        n.retries.to_string(),
                        n.duplicated.to_string(),
                        n.reordered.to_string(),
                        (n.dropped + n.dropped_by_fault).to_string(),
                        n.quarantined_records.to_string(),
                    ],
                    &widths
                )
            )?;
        }
        write!(
            f,
            "byte-identity: fault-free and chaos windows equal the partition oracle; \
             partition run quarantined {} records over {} degraded windows, all conserved",
            self.partition.quarantined_records, self.partition.degraded_windows
        )
    }
}

/// Asserts the headline invariant: every non-empty published window is
/// byte-identical to the fault-free partition oracle.
fn assert_byte_identical(outcome: &FleetOutcome, run: &str) {
    let published: Vec<_> = outcome.nonempty_windows().collect();
    assert_eq!(
        published.len(),
        outcome.baseline.len(),
        "{run}: window count drifted from the oracle"
    );
    for (got, want) in published.iter().zip(&outcome.baseline) {
        assert_eq!(
            window_fingerprint(got),
            window_fingerprint(want),
            "{run}: day {} not byte-identical to the oracle",
            want.day()
        );
    }
}

/// Runs E13: three fleet runs over one population, asserting byte-identity
/// (fault-free, chaos) and quarantine conservation (partition) before
/// reporting latency percentiles and fault counters.
pub fn run(config: &E13Config) -> E13Report {
    // Fault-free oracle run.
    obs::phase("e13.faultfree");
    let start = Instant::now();
    let faultfree = run_fleet(&config.fleet(FaultPlan::none()));
    let faultfree_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(faultfree.is_clean(), "fault-free run must be clean");
    assert_eq!(faultfree.published_records(), faultfree.generated_records);
    assert_byte_identical(&faultfree, "fault-free");

    // Chaos run: loss bursts, duplication, reordering — but no partitions
    // or crashes, so everything arrives within each day's grace window and
    // the published windows must not change by a single byte.
    obs::phase("e13.chaos");
    let start = Instant::now();
    let chaos = run_fleet(&config.fleet(FaultPlan::chaos(config.seed)));
    let chaos_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        chaos.is_clean(),
        "chaos (no partitions) must still meet every deadline: {:?}",
        chaos.deltas
    );
    assert_byte_identical(&chaos, "chaos");
    let chaos_stats = chaos.stats;
    assert!(
        chaos_stats.dropped_by_fault + chaos_stats.duplicated + chaos_stats.reordered > 0,
        "chaos must actually perturb the network: {chaos_stats}"
    );

    // Partition run: sever half the fleet across the day-0 close deadline.
    let severed: Vec<NodeId> = (0..(config.users / 2).max(1) as u32)
        .map(|i| NodeId(1 + i))
        .collect();
    let day_end = DAY_SECONDS as u64;
    let mut fleet = config.fleet(FaultPlan::none());
    fleet.faults = FaultPlan::none().with_partition(Partition {
        from_ms: day_end - 20_000,
        until_ms: day_end + fleet.grace_s + 10_000,
        nodes: severed,
    });
    obs::phase("e13.partition");
    let start = Instant::now();
    let partition = run_fleet(&fleet);
    let partition_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!partition.is_clean(), "the partition must degrade a window");
    let quarantined: u64 = partition.deltas.iter().map(|d| d.records_quarantined).sum();
    assert!(quarantined > 0, "stragglers must surface as quarantined");
    let on_time: u64 = partition.deltas.iter().map(|d| d.records).sum();
    assert_eq!(
        on_time + quarantined,
        partition.generated_records,
        "every record is published exactly once, on time or quarantined"
    );
    assert_eq!(partition.published_records(), partition.generated_records);

    E13Report {
        label: config.label.clone(),
        users: config.users,
        days: config.days,
        records: faultfree.generated_records,
        faultfree: numbers(&faultfree, faultfree_ms),
        chaos: numbers(&chaos, chaos_ms),
        partition: numbers(&partition, partition_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_invariants_and_renders() {
        let report = run(&E13Config::smoke());
        assert_eq!(report.users, 6);
        assert!(report.records > 0);
        assert!(report.faultfree.acked_chunks > 0);
        assert_eq!(report.faultfree.quarantined_records, 0);
        assert!(report.chaos.retries > 0, "chaos forces retransmission");
        assert!(report.chaos.dup_batches_absorbed > 0 || report.chaos.duplicated > 0);
        assert!(report.partition.quarantined_records > 0);
        assert!(report.partition.degraded_windows > 0);
        assert!(
            report.chaos.latency_p95_ms >= report.chaos.latency_p50_ms
                && report.chaos.latency_max_ms >= report.chaos.latency_p99_ms
        );
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e13_reliable_ingestion\"",
            "\"faultfree\"",
            "\"chaos\"",
            "\"partition\"",
            "\"latency_p95_ms\"",
            "\"dup_batches_absorbed\"",
            "\"quarantined_records\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("fault-free") && text.contains("quarantined"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E13Config::smoke().users, 6);
        let small = E13Config::from_scale(Scale::Small);
        assert_eq!(small.label, "small");
        assert_eq!(small.users, 30);
        assert_eq!(small.days, 7);
    }

    #[test]
    fn percentiles_interpolate_sanely() {
        assert_eq!(percentile(&[], 0.5), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 51);
        assert_eq!(percentile(&sorted, 1.0), 100);
    }
}
