//! E11 — streaming publication: batch re-publish vs incremental
//! day-window publish with cross-release shard and index reuse.
//!
//! This experiment is the measured counterpart of `privapi::streaming`:
//! the same dataset is released day by day twice —
//!
//! * **batch**: every day re-publishes the whole accumulated prefix from
//!   scratch through `PrivApi::publish` (the pre-streaming deployment
//!   model: one original-side extraction plus one self-attack per
//!   candidate, every day);
//! * **incremental**: a `StreamingPublisher` ingests each `DatasetWindow`,
//!   reusing yesterday's per-user shards and amended reference index, and
//!   only re-extracts users with new records.
//!
//! Winner parity is asserted per window before any number is reported, so
//! the speedup is never bought with drift. The `bench_summary` binary
//! drives [`run`] and emits the numbers as `BENCH_e11.json` next to
//! `BENCH_e10.json`.

use crate::Scale;
use mobility::WindowedDataset;
use privapi::prelude::*;
use std::fmt;
use std::time::Instant;

/// Workload shape for one E11 run.
#[derive(Debug, Clone)]
pub struct E11Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Synthetic population size.
    pub users: usize,
    /// Days of data per user (= number of windows).
    pub days: usize,
    /// Sampling interval, seconds.
    pub interval_s: i64,
    /// Percentage of users reporting on any day after the first (the
    /// generator produces everyone-every-day data; real crowd-sensing
    /// participation is sparse, and sparse days are exactly where the
    /// session cache's shard reuse pays — 100 keeps the dense shape).
    pub participation_pct: u64,
    /// Whether the batch model re-publishes *every* prefix. `false` (the
    /// `Scale::Large` stress shape) batches only the first and last
    /// prefixes — re-publishing every prefix of a five-digit population
    /// would measure patience, not the deployment model — and winner
    /// parity is asserted on exactly those windows.
    pub batch_all_windows: bool,
}

impl E11Config {
    /// Tiny CI smoke shape: seconds end to end, still exercising the
    /// parity and budget invariants (and the shard-reuse path) on every
    /// window.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            users: 6,
            days: 3,
            interval_s: 300,
            participation_pct: 50,
            batch_all_windows: true,
        }
    }

    /// The canonical population for `scale`: a realistic 40 % daily
    /// participation for the dense regression scales, 5 % for the
    /// `Scale::Large` sparse-participation stress shape.
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, interval_s) = scale.population();
        Self {
            label: format!("{scale:?}").to_lowercase(),
            users,
            days,
            interval_s,
            participation_pct: crate::data::by_scale(scale, 40, 40, 40, 5),
            batch_all_windows: crate::data::by_scale(scale, true, true, true, false),
        }
    }
}

pub use mobility::gen::thin_participation;

/// Measured streaming-vs-batch numbers plus the invariants they were
/// taken under.
#[derive(Debug, Clone)]
pub struct E11Report {
    /// Workload label.
    pub label: String,
    /// Worker threads available.
    pub threads: usize,
    /// Population size.
    pub users: usize,
    /// Records in the (participation-thinned) dataset.
    pub records: usize,
    /// Daily participation percentage the workload was thinned to.
    pub participation_pct: u64,
    /// Day windows published.
    pub windows: usize,
    /// Total wall time of publishing every prefix from scratch, ms.
    pub batch_total_ms: f64,
    /// Total wall time of the incremental window publishes, ms.
    pub incremental_total_ms: f64,
    /// Wall time of the *last* batch prefix publish, ms (the steady-state
    /// daily cost of the batch deployment model).
    pub batch_last_window_ms: f64,
    /// Wall time of the first incremental window publish, ms (the dense
    /// bootstrap: every user is active on day 0 to pin the bounding box).
    pub incremental_first_window_ms: f64,
    /// Wall time of the first *steady-participation* incremental window
    /// (window 1 — the first window published at the thinned
    /// participation rate; equals the first window when only one exists).
    pub incremental_first_steady_ms: f64,
    /// Wall time of the last incremental window publish, ms.
    pub incremental_last_window_ms: f64,
    /// Full-dataset extractions the batch replay performed.
    pub batch_extractions: usize,
    /// Full-dataset extractions the incremental replay performed.
    pub incremental_extractions: usize,
    /// Single-user extraction passes the batch replay performed.
    pub batch_user_extractions: usize,
    /// Single-user extraction passes the incremental replay performed.
    pub incremental_user_extractions: usize,
    /// Candidates in the strategy pool.
    pub pool_size: usize,
    /// Sum over windows of users whose cached shard was reused untouched.
    pub shard_reuses: usize,
    /// Sum over windows of users re-extracted via the per-user delta path.
    pub shard_refreshes: usize,
    /// Windows that widened the bounding box and forced a grid rebuild.
    pub grid_rebuilds: usize,
    /// Sum over windows and candidates of users whose cached *protected*
    /// trajectories were reused instead of re-anonymized.
    pub strategy_users_reused: usize,
    /// Sum over windows and candidates of users re-anonymized via
    /// `anonymize_user`.
    pub strategy_users_refreshed: usize,
    /// Sum over windows and candidates of protected-side shards reused.
    pub strategy_shard_reuses: usize,
    /// Sum over windows and candidates of protected-side shards
    /// re-extracted via the per-user delta path.
    pub strategy_shard_refreshes: usize,
    /// Sum over windows of candidates whose protected bounding box moved
    /// (full per-user shard refresh for that candidate).
    pub strategy_grid_rebuilds: usize,
    /// Sum over windows of candidates that fell back to the full uncached
    /// path (non-local strategies; zero for the default pool).
    pub strategy_full_fallbacks: usize,
    /// Windows whose utility baseline was extended in place by folding
    /// only the new window's trajectories.
    pub baseline_reuses: usize,
    /// Windows where a stale utility-baseline fold was discarded and
    /// rebuilt over the whole prefix (a quantized-grid move; the
    /// session's first build is not counted as a rebuild).
    pub baseline_rebuilds: usize,
    /// Distinct baseline cells (crowded) or `(cell, hour)` day-histogram
    /// entries (traffic) touched across all window folds.
    pub baseline_cells_updated: usize,
}

impl E11Report {
    /// End-to-end speedup of the incremental path over batch re-publish.
    pub fn total_speedup(&self) -> f64 {
        self.batch_total_ms / self.incremental_total_ms.max(1e-9)
    }

    /// Wall ratio of the last incremental window over the first
    /// steady-participation one — the O(active-users) acceptance number:
    /// with participation held fixed, the per-window cost must track the
    /// day's *active* users, not the accumulated prefix (≤ 1.2× at
    /// `Scale::Large`; a per-prefix cost would grow toward the window
    /// count instead).
    pub fn last_first_ratio(&self) -> f64 {
        self.incremental_last_window_ms / self.incremental_first_steady_ms.max(1e-9)
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace has
    /// no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e11_streaming_publication\",\n{}  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"users\": {},\n  \"records\": {},\n  \
             \"participation_pct\": {},\n  \"windows\": {},\n  \
             \"batch_total_ms\": {:.3},\n  \"incremental_total_ms\": {:.3},\n  \
             \"total_speedup\": {:.3},\n  \"batch_last_window_ms\": {:.3},\n  \
             \"incremental_first_window_ms\": {:.3},\n  \
             \"incremental_first_steady_ms\": {:.3},\n  \
             \"incremental_last_window_ms\": {:.3},\n  \
             \"last_first_ratio\": {:.3},\n  \"batch_extractions\": {},\n  \
             \"incremental_extractions\": {},\n  \"batch_user_extractions\": {},\n  \
             \"incremental_user_extractions\": {},\n  \"pool_size\": {},\n  \
             \"shard_reuses\": {},\n  \"shard_refreshes\": {},\n  \"grid_rebuilds\": {},\n  \
             \"strategy_users_reused\": {},\n  \"strategy_users_refreshed\": {},\n  \
             \"strategy_shard_reuses\": {},\n  \"strategy_shard_refreshes\": {},\n  \
             \"strategy_grid_rebuilds\": {},\n  \"strategy_full_fallbacks\": {},\n  \
             \"baseline_reuses\": {},\n  \"baseline_rebuilds\": {},\n  \
             \"baseline_cells_updated\": {}\n}}\n",
            crate::host_json(),
            self.label,
            self.threads,
            self.users,
            self.records,
            self.participation_pct,
            self.windows,
            self.batch_total_ms,
            self.incremental_total_ms,
            self.total_speedup(),
            self.batch_last_window_ms,
            self.incremental_first_window_ms,
            self.incremental_first_steady_ms,
            self.incremental_last_window_ms,
            self.last_first_ratio(),
            self.batch_extractions,
            self.incremental_extractions,
            self.batch_user_extractions,
            self.incremental_user_extractions,
            self.pool_size,
            self.shard_reuses,
            self.shard_refreshes,
            self.grid_rebuilds,
            self.strategy_users_reused,
            self.strategy_users_refreshed,
            self.strategy_shard_reuses,
            self.strategy_shard_refreshes,
            self.strategy_grid_rebuilds,
            self.strategy_full_fallbacks,
            self.baseline_reuses,
            self.baseline_rebuilds,
            self.baseline_cells_updated,
        )
    }
}

impl fmt::Display for E11Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E11 streaming publication ({}, {} users, {} records, {} % participation, \
             {} windows, {} threads)",
            self.label,
            self.users,
            self.records,
            self.participation_pct,
            self.windows,
            self.threads
        )?;
        let widths = [26, 14, 14, 9];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "path".into(),
                    "batch ms".into(),
                    "incremental ms".into(),
                    "speedup".into()
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "all windows".into(),
                    format!("{:.3}", self.batch_total_ms),
                    format!("{:.3}", self.incremental_total_ms),
                    format!("{:.2}x", self.total_speedup()),
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "last window".into(),
                    format!("{:.3}", self.batch_last_window_ms),
                    format!("{:.3}", self.incremental_last_window_ms),
                    format!(
                        "{:.2}x",
                        self.batch_last_window_ms / self.incremental_last_window_ms.max(1e-9)
                    ),
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "incremental windows: first {:.3} ms (dense bootstrap), first-steady {:.3} ms, \
             last {:.3} ms — last/first-steady ratio {:.2}x",
            self.incremental_first_window_ms,
            self.incremental_first_steady_ms,
            self.incremental_last_window_ms,
            self.last_first_ratio()
        )?;
        writeln!(
            f,
            "extractions: {} batch vs {} incremental full passes, {} vs {} per-user \
             (pool {}); original shards: {} reused, {} refreshed, {} grid rebuilds",
            self.batch_extractions,
            self.incremental_extractions,
            self.batch_user_extractions,
            self.incremental_user_extractions,
            self.pool_size,
            self.shard_reuses,
            self.shard_refreshes,
            self.grid_rebuilds
        )?;
        writeln!(
            f,
            "protected side: {} anonymizations reused / {} refreshed, {} shards reused / \
             {} refreshed, {} protected-grid rebuilds, {} full fallbacks",
            self.strategy_users_reused,
            self.strategy_users_refreshed,
            self.strategy_shard_reuses,
            self.strategy_shard_refreshes,
            self.strategy_grid_rebuilds,
            self.strategy_full_fallbacks
        )?;
        write!(
            f,
            "baselines: {} folded in place ({} cells touched), {} full rebuilds",
            self.baseline_reuses, self.baseline_cells_updated, self.baseline_rebuilds
        )
    }
}

/// Runs E11: replays the dataset's day windows through both deployment
/// models and asserts winner parity plus the streaming extraction budget
/// on every window before reporting any timing.
pub fn run(config: &E11Config) -> E11Report {
    let data = crate::data::dataset(config.users, config.days, config.interval_s, 0xE11);
    let dataset = thin_participation(&data.dataset, config.participation_pct);
    let windows = WindowedDataset::partition(&dataset);
    assert!(
        !windows.is_empty(),
        "generated data must span at least a day"
    );

    // Batch model: every day re-publishes the whole prefix from scratch.
    // When `batch_all_windows` is off only the first and last prefixes are
    // replayed (and parity is asserted on exactly those two windows).
    let batch_api = PrivApi::default();
    let mut batch_total_ms = 0.0;
    let mut batch_last_window_ms = 0.0;
    let mut batch_releases: Vec<Option<_>> = Vec::with_capacity(windows.len());
    for i in 0..windows.len() {
        if !config.batch_all_windows && i != 0 && i != windows.len() - 1 {
            batch_releases.push(None);
            continue;
        }
        let prefix = windows.prefix(i);
        let start = Instant::now();
        let release = batch_api.publish(&prefix).expect("batch publish succeeds");
        batch_last_window_ms = start.elapsed().as_secs_f64() * 1e3;
        batch_total_ms += batch_last_window_ms;
        batch_releases.push(Some(release));
    }
    let batch_extractions = batch_api.attack().extractions();
    let batch_user_extractions = batch_api.attack().user_extractions();

    // Incremental model: one streaming session ingesting window deltas.
    let mut publisher = StreamingPublisher::new(*batch_api.config());
    let pool_size = publisher.privapi().pool().len();
    let probe = publisher.privapi().attack().clone();
    let mut incremental_total_ms = 0.0;
    let mut incremental_first_window_ms = 0.0;
    let mut incremental_first_steady_ms = 0.0;
    let mut incremental_last_window_ms = 0.0;
    let mut shard_reuses = 0;
    let mut shard_refreshes = 0;
    let mut grid_rebuilds = 0;
    let mut baseline_reuses = 0;
    let mut baseline_rebuilds = 0;
    let mut baseline_cells_updated = 0;
    let mut strategy_totals = privapi::streaming::StrategyCacheDelta::default();
    for (i, window) in windows.iter().enumerate() {
        let before = probe.extractions();
        let start = Instant::now();
        let release = publisher
            .publish_window(window)
            .expect("incremental publish succeeds");
        incremental_last_window_ms = start.elapsed().as_secs_f64() * 1e3;
        incremental_total_ms += incremental_last_window_ms;
        if i == 0 {
            incremental_first_window_ms = incremental_last_window_ms;
        }
        if i == 1 || (i == 0 && windows.len() == 1) {
            incremental_first_steady_ms = incremental_last_window_ms;
        }
        let spent = probe.extractions() - before;
        assert!(
            spent < pool_size + 1,
            "window {i}: {spent} extractions breaks the streaming budget"
        );
        assert_eq!(
            spent, release.strategies.full_fallbacks,
            "window {i}: only non-local candidates may pay a full pass"
        );
        if let Some(batch) = &batch_releases[i] {
            assert_eq!(
                release.published.selection, batch.selection,
                "window {i}: streaming winners drifted from batch"
            );
            assert_eq!(release.published.dataset, batch.dataset, "window {i}");
        }
        shard_reuses += release.delta.users_reused;
        shard_refreshes += release.delta.users_refreshed;
        grid_rebuilds += usize::from(release.delta.grid_rebuilt);
        baseline_reuses += usize::from(release.baseline.reused);
        baseline_rebuilds += usize::from(release.baseline.rebuilt);
        baseline_cells_updated += release.baseline.cells_updated;
        strategy_totals.users_reused += release.strategies.users_reused;
        strategy_totals.users_refreshed += release.strategies.users_refreshed;
        strategy_totals.shards_reused += release.strategies.shards_reused;
        strategy_totals.shards_refreshed += release.strategies.shards_refreshed;
        strategy_totals.protected_grid_rebuilds += release.strategies.protected_grid_rebuilds;
        strategy_totals.full_fallbacks += release.strategies.full_fallbacks;
    }
    let incremental_extractions = probe.extractions();
    let incremental_user_extractions = probe.user_extractions();

    E11Report {
        label: config.label.clone(),
        threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        users: config.users,
        records: dataset.record_count(),
        participation_pct: config.participation_pct,
        windows: windows.len(),
        batch_total_ms,
        incremental_total_ms,
        batch_last_window_ms,
        incremental_first_window_ms,
        incremental_first_steady_ms,
        incremental_last_window_ms,
        batch_extractions,
        incremental_extractions,
        batch_user_extractions,
        incremental_user_extractions,
        pool_size,
        shard_reuses,
        shard_refreshes,
        grid_rebuilds,
        strategy_users_reused: strategy_totals.users_reused,
        strategy_users_refreshed: strategy_totals.users_refreshed,
        strategy_shard_reuses: strategy_totals.shards_reused,
        strategy_shard_refreshes: strategy_totals.shards_refreshed,
        strategy_grid_rebuilds: strategy_totals.protected_grid_rebuilds,
        strategy_full_fallbacks: strategy_totals.full_fallbacks,
        baseline_reuses,
        baseline_rebuilds,
        baseline_cells_updated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_invariants_and_renders() {
        let report = run(&E11Config::smoke());
        assert_eq!(report.windows, 3);
        // Batch pays pool + 1 full passes per window; incremental pays
        // none at all — both caches (original-side session, per-strategy
        // protected side) route everything through the per-user delta
        // paths, and the default pool has no non-local candidate.
        assert_eq!(
            report.batch_extractions,
            report.windows * (report.pool_size + 1)
        );
        assert_eq!(report.incremental_extractions, 0);
        assert_eq!(report.strategy_full_fallbacks, 0);
        // Sparse participation means inactive users: both the protected
        // anonymizations and the per-user extraction totals must come in
        // under batch.
        assert!(report.strategy_users_reused > 0, "{report:?}");
        assert!(
            report.incremental_user_extractions < report.batch_user_extractions,
            "per-user work {} must undercut batch {}",
            report.incremental_user_extractions,
            report.batch_user_extractions
        );
        assert_eq!(
            report.strategy_users_reused + report.strategy_users_refreshed,
            report.windows * report.pool_size * report.users
        );
        // The utility baseline is built once (not counted as a rebuild)
        // and folded in place on every later window, touching real cells;
        // the quantized anchors keep the grid still, so no fold is ever
        // discarded.
        assert_eq!(report.baseline_rebuilds, 0, "{report:?}");
        assert_eq!(report.baseline_reuses, report.windows - 1, "{report:?}");
        assert!(report.baseline_cells_updated > 0, "{report:?}");
        assert!(report.batch_total_ms > 0.0);
        assert!(report.incremental_total_ms > 0.0);
        assert!(report.incremental_first_window_ms > 0.0);
        assert!(report.incremental_first_steady_ms > 0.0);
        assert!(report.last_first_ratio() > 0.0);
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e11_streaming_publication\"",
            "\"batch_total_ms\"",
            "\"incremental_total_ms\"",
            "\"shard_reuses\"",
            "\"grid_rebuilds\"",
            "\"batch_user_extractions\"",
            "\"incremental_user_extractions\"",
            "\"strategy_users_reused\"",
            "\"strategy_shard_reuses\"",
            "\"strategy_full_fallbacks\"",
            "\"incremental_first_window_ms\"",
            "\"incremental_first_steady_ms\"",
            "\"last_first_ratio\"",
            "\"baseline_reuses\"",
            "\"baseline_rebuilds\"",
            "\"baseline_cells_updated\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("all windows"));
        assert!(text.contains("extractions:"));
        assert!(text.contains("protected side:"));
        assert!(text.contains("baselines:"));
        assert!(text.contains("last/first-steady ratio"));
    }

    #[test]
    fn sparse_batch_mode_skips_interior_prefixes_but_keeps_parity() {
        let mut config = E11Config::smoke();
        config.batch_all_windows = false;
        let report = run(&config);
        // Only the first and last prefixes are batch-replayed.
        assert_eq!(report.batch_extractions, 2 * (report.pool_size + 1));
        assert_eq!(report.incremental_extractions, 0);
        assert_eq!(report.baseline_rebuilds, 0);
        assert_eq!(report.baseline_reuses, report.windows - 1);
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E11Config::smoke().users, 6);
        let medium = E11Config::from_scale(Scale::Medium);
        assert_eq!(medium.label, "medium");
        assert_eq!(medium.users, 80);
        assert_eq!(medium.days, 10);
        assert_eq!(medium.participation_pct, 40);
        assert!(medium.batch_all_windows);
        let large = E11Config::from_scale(Scale::Large);
        assert_eq!(large.label, "large");
        assert_eq!(large.users, 10_000);
        assert_eq!(large.participation_pct, 5);
        assert!(!large.batch_all_windows);
    }
}
