//! E15 — federated release: device-local anonymization with byte-for-byte
//! central parity under hostile fleets.
//!
//! Four federated fleet runs per scale, all over the same seeded
//! population ([`apisense::federated::run_federated_fleet`]):
//!
//! * **fault-free** — the baseline: the release assembled from per-device
//!   protected uploads must be byte-identical to the central release of
//!   the same windowed raw prefix, with clean
//!   [`privapi::federated::FederationDelta`]s;
//! * **chaos** — [`simnet::FaultPlan::chaos`] bursty loss + duplication +
//!   reordering over every lane (config broadcast included): the faults
//!   must actually injure the network, and parity must hold anyway;
//! * **upgrade** — a config version bump mid-stream with one device deaf
//!   to config frames across it: the stale uploads are quarantined with
//!   exact counters, the fleet re-uploads its history under the new
//!   version, and the run converges back to parity;
//! * **poisoned** — one device substitutes fabricated far-away fixes: the
//!   plausibility gate rejects every batch whole, and the release equals
//!   the central release over the *honest* sub-fleet.
//!
//! The headline economics: **raw bytes uplinked** shrink from the whole
//! fleet (central deployment) to the opt-in calibration cohort, at the
//! cost of the protected-lane payload plus the config-broadcast overhead
//! — all three are reported, next to the per-scenario quarantine
//! counters. Every invariant is asserted before any number is reported.
//! The `bench_summary` binary drives [`run`] and emits `BENCH_e15.json`
//! next to e10–e14.

use crate::Scale;
use apisense::federated::{run_federated_fleet, FederatedFleetConfig, FederatedFleetOutcome};
use apisense::fleet::FleetConfig;
use mobility::UserId;
use privapi::federated::StrategySpec;
use simnet::fault::Crash;
use simnet::reliable::ReliableConfig;
use simnet::{FaultPlan, LinkModel, NodeId};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

/// Workload shape for one E15 run.
#[derive(Debug, Clone)]
pub struct E15Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Seed for population, simulator and fault schedules.
    pub seed: u64,
    /// Fleet size (one device per user).
    pub users: usize,
    /// Days of sensing (= scheduled windows).
    pub days: i64,
    /// Sensing interval of the generated trajectories, in seconds.
    pub sampling_interval_s: i64,
}

impl E15Config {
    /// Tiny CI smoke shape: a couple of seconds end to end, still
    /// exercising parity, the upgrade wave and the poisoning gate.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            seed: 0xE15,
            users: 6,
            days: 2,
            sampling_interval_s: 900,
        }
    }

    /// The canonical population for `scale`, bounded like E13's: the
    /// federated harness replays every device's upload schedule four
    /// times (baseline, chaos, upgrade, poisoned).
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, interval) = crate::data::by_scale(
            scale,
            scale.population(),
            scale.population(),
            scale.population(),
            (2_000, 8, 1_200),
        );
        Self {
            label: format!("{scale:?}").to_lowercase(),
            seed: 0xE15,
            users,
            days: days as i64,
            sampling_interval_s: interval,
        }
    }

    fn fleet(&self) -> FederatedFleetConfig {
        FederatedFleetConfig {
            fleet: FleetConfig {
                seed: self.seed,
                users: self.users,
                days: self.days,
                sampling_interval_s: self.sampling_interval_s,
                upload_every_s: 1_800,
                grace_s: 14_400,
                link: LinkModel::mobile(),
                faults: FaultPlan::none(),
                reliable: ReliableConfig::default(),
            },
            participation_pct: 100,
            spec: StrategySpec::SpeedSmoothing { epsilon_m: 100.0 },
            anonymization_seed: 42,
            cohort_size: (self.users / 10).max(2),
            select: false,
            deaf: Vec::new(),
            poisoned: Vec::new(),
            upgrade_at_close: None,
        }
    }
}

/// Byte economics, audit counters and transport sweat of one federated
/// fleet run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunNumbers {
    /// Wall-clock time of the simulated run, ms (host time, not sim time).
    pub wall_ms: f64,
    /// Protected payload bytes devices enqueued (incl. re-uploads).
    pub protected_bytes: u64,
    /// Config frames put on the wire (incl. retransmissions).
    pub config_frames: u64,
    /// Config bytes put on the wire — the broadcast overhead.
    pub config_bytes: u64,
    /// Transport retransmissions across all lanes.
    pub retries: u64,
    /// Whole batches quarantined for carrying an obsolete config version.
    pub stale_batches: u64,
    /// Records inside those stale batches.
    pub stale_records: u64,
    /// Records rejected whole-batch by the plausibility gate.
    pub implausible_records: u64,
    /// Devices flagged by the gate.
    pub poisoned_devices: u64,
    /// Records superseding already-closed windows (catch-up re-uploads).
    pub reuploaded_records: u64,
    /// Windows published with a degraded (non-clean) federation delta.
    pub degraded_windows: usize,
    /// Whether the release was byte-identical to the full central
    /// counterfactual (the poisoned run is *expected* to say `false` —
    /// its parity target is the honest sub-fleet).
    pub full_parity: bool,
}

fn numbers(outcome: &FederatedFleetOutcome, wall_ms: f64) -> RunNumbers {
    RunNumbers {
        wall_ms,
        protected_bytes: outcome.protected_bytes_uplinked,
        config_frames: outcome.config_frames_broadcast,
        config_bytes: outcome.config_bytes_broadcast,
        retries: outcome.stats.retries,
        stale_batches: outcome.deltas.iter().map(|d| d.stale_batches).sum(),
        stale_records: outcome.deltas.iter().map(|d| d.stale_records).sum(),
        implausible_records: outcome.deltas.iter().map(|d| d.implausible_records).sum(),
        poisoned_devices: outcome.poisoned_devices.len() as u64,
        reuploaded_records: outcome.deltas.iter().map(|d| d.reuploaded_records).sum(),
        degraded_windows: outcome.deltas.iter().filter(|d| !d.is_clean()).count(),
        full_parity: outcome.parity(),
    }
}

fn json_run(name: &str, n: &RunNumbers) -> String {
    format!(
        "  \"{name}\": {{\n    \"wall_ms\": {:.3},\n    \"protected_bytes\": {},\n    \
         \"config_frames\": {},\n    \"config_bytes\": {},\n    \"retries\": {},\n    \
         \"stale_batches\": {},\n    \"stale_records\": {},\n    \
         \"implausible_records\": {},\n    \"poisoned_devices\": {},\n    \
         \"reuploaded_records\": {},\n    \"degraded_windows\": {},\n    \
         \"full_parity\": {}\n  }}",
        n.wall_ms,
        n.protected_bytes,
        n.config_frames,
        n.config_bytes,
        n.retries,
        n.stale_batches,
        n.stale_records,
        n.implausible_records,
        n.poisoned_devices,
        n.reuploaded_records,
        n.degraded_windows,
        n.full_parity,
    )
}

/// Measured numbers of the four federated runs plus the raw-exposure
/// economics they share (parity and quarantine exactness are asserted
/// inside [`run`] before the report exists).
#[derive(Debug, Clone)]
pub struct E15Report {
    /// Workload label.
    pub label: String,
    /// Fleet size.
    pub users: usize,
    /// Scheduled day windows.
    pub days: i64,
    /// Records generated per run.
    pub records: u64,
    /// Devices in the opt-in calibration cohort (raw uploads).
    pub cohort: usize,
    /// Raw payload bytes the federated deployment uplinks (cohort only).
    pub raw_bytes_uplinked: u64,
    /// Raw payload bytes a central deployment would uplink (everyone).
    pub central_raw_bytes: u64,
    /// The fault-free baseline run.
    pub faultfree: RunNumbers,
    /// The chaos run (burst loss + duplication + reordering + a crash).
    pub chaos: RunNumbers,
    /// The upgrade-wave run (version bump with one config-deaf device).
    pub upgrade: RunNumbers,
    /// The poisoning run (one device fabricating far-away fixes).
    pub poisoned: RunNumbers,
}

impl E15Report {
    /// Share of central raw exposure the federated deployment still
    /// uplinks (the calibration cohort), in percent.
    pub fn raw_exposure_pct(&self) -> f64 {
        if self.central_raw_bytes == 0 {
            return 0.0;
        }
        self.raw_bytes_uplinked as f64 / self.central_raw_bytes as f64 * 100.0
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace
    /// has no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e15_federated_release\",\n{}  \"scale\": \"{}\",\n  \
             \"users\": {},\n  \"days\": {},\n  \"records\": {},\n  \"cohort\": {},\n  \
             \"raw_bytes_uplinked\": {},\n  \"central_raw_bytes\": {},\n  \
             \"raw_exposure_pct\": {:.2},\n{},\n{},\n{},\n{}\n}}\n",
            crate::host_json(),
            self.label,
            self.users,
            self.days,
            self.records,
            self.cohort,
            self.raw_bytes_uplinked,
            self.central_raw_bytes,
            self.raw_exposure_pct(),
            json_run("faultfree", &self.faultfree),
            json_run("chaos", &self.chaos),
            json_run("upgrade", &self.upgrade),
            json_run("poisoned", &self.poisoned),
        )
    }
}

impl fmt::Display for E15Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E15 federated release ({}, {} devices, {} days, {} records, cohort {})",
            self.label, self.users, self.days, self.records, self.cohort
        )?;
        writeln!(
            f,
            "raw exposure: {} of {} central bytes uplinked raw ({:.1} %); \
             protected lane {} B, config broadcast {} B over {} frames",
            self.raw_bytes_uplinked,
            self.central_raw_bytes,
            self.raw_exposure_pct(),
            self.faultfree.protected_bytes,
            self.faultfree.config_bytes,
            self.faultfree.config_frames,
        )?;
        let widths = [10, 8, 7, 7, 9, 11, 9, 8, 7];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "run".into(),
                    "retries".into(),
                    "stale".into(),
                    "reupl".into(),
                    "poisoned".into(),
                    "implausible".into(),
                    "degraded".into(),
                    "cfg fr".into(),
                    "parity".into(),
                ],
                &widths
            )
        )?;
        for (name, n) in [
            ("fault-free", &self.faultfree),
            ("chaos", &self.chaos),
            ("upgrade", &self.upgrade),
            ("poisoned", &self.poisoned),
        ] {
            writeln!(
                f,
                "{}",
                crate::row(
                    &[
                        name.into(),
                        n.retries.to_string(),
                        n.stale_records.to_string(),
                        n.reuploaded_records.to_string(),
                        n.poisoned_devices.to_string(),
                        n.implausible_records.to_string(),
                        n.degraded_windows.to_string(),
                        n.config_frames.to_string(),
                        n.full_parity.to_string(),
                    ],
                    &widths
                )
            )?;
        }
        write!(
            f,
            "parity: fault-free, chaos and upgrade releases byte-identical to central; \
             poisoned release byte-identical to the honest sub-fleet's central release"
        )
    }
}

/// Runs E15: four federated fleet runs over one population, asserting
/// parity (fault-free, chaos, post-upgrade), quarantine exactness (stale
/// and poisoned) and raw-exposure reduction before reporting the byte
/// economics and audit counters.
pub fn run(config: &E15Config) -> E15Report {
    // Fault-free baseline.
    obs::phase("e15.faultfree");
    let start = Instant::now();
    let faultfree = run_federated_fleet(&config.fleet());
    let faultfree_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(faultfree.is_clean(), "baseline must be clean");
    assert!(faultfree.parity(), "baseline must reach central parity");
    assert!(
        faultfree.raw_bytes_uplinked < faultfree.central_raw_bytes,
        "the cohort must uplink strictly less raw data than a central fleet"
    );

    // Chaos: loss, duplication, reordering plus a mid-day crash/restart —
    // over every lane, the config broadcast included.
    let mut chaos_config = config.fleet();
    chaos_config.fleet.faults = FaultPlan::chaos(config.seed).with_crash(Crash {
        node: NodeId(2),
        at_ms: 10_000,
        restart_ms: 45_000,
    });
    obs::phase("e15.chaos");
    let start = Instant::now();
    let chaos = run_federated_fleet(&chaos_config);
    let chaos_ms = start.elapsed().as_secs_f64() * 1e3;
    let chaos_stats = chaos.stats;
    assert!(
        chaos_stats.dropped_by_fault + chaos_stats.duplicated + chaos_stats.reordered > 0,
        "chaos must actually perturb the network: {chaos_stats}"
    );
    assert!(chaos.is_clean(), "absorbed chaos leaves clean deltas");
    assert!(chaos.parity(), "chaos must never change released bytes");

    // Upgrade wave: bump the config after the first close while device 3
    // is deaf to config frames — its next upload goes out stale, is
    // quarantined, and the fleet converges under the new version.
    let mut upgrade_config = config.fleet();
    upgrade_config.upgrade_at_close =
        Some((0, StrategySpec::GaussianPerturbation { sigma_m: 50.0 }));
    upgrade_config.deaf = vec![(3, 100_000, 176_000)];
    obs::phase("e15.upgrade");
    let start = Instant::now();
    let upgrade = run_federated_fleet(&upgrade_config);
    let upgrade_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(upgrade.final_config.version, 2);
    let stale: u64 = upgrade.deltas.iter().map(|d| d.stale_records).sum();
    assert!(stale > 0, "the deaf device must surface as stale");
    assert_eq!(
        upgrade.session_totals.stale_records, stale,
        "collect- and session-layer stale ledgers must agree"
    );
    assert!(upgrade.parity(), "the upgrade wave must converge to parity");

    // Poisoning: device 4 substitutes fabricated fixes; the gate rejects
    // them whole and the release equals the honest central counterfactual.
    let mut poisoned_config = config.fleet();
    poisoned_config.poisoned = vec![4];
    obs::phase("e15.poisoned");
    let start = Instant::now();
    let poisoned = run_federated_fleet(&poisoned_config);
    let poisoned_ms = start.elapsed().as_secs_f64() * 1e3;
    let rejected: u64 = poisoned.deltas.iter().map(|d| d.implausible_records).sum();
    assert!(rejected > 0, "the fabricated fixes must be rejected");
    assert_eq!(poisoned.session_totals.implausible_records, rejected);
    assert_eq!(
        poisoned.release,
        poisoned.central_excluding(&BTreeSet::from([UserId(4)])),
        "the poisoned release must equal the honest sub-fleet's central release"
    );
    assert!(!poisoned.parity(), "the poisoned user's data is excluded");

    E15Report {
        label: config.label.clone(),
        users: config.users,
        days: config.days,
        records: faultfree.generated_records,
        cohort: faultfree.cohort.len(),
        raw_bytes_uplinked: faultfree.raw_bytes_uplinked,
        central_raw_bytes: faultfree.central_raw_bytes,
        faultfree: numbers(&faultfree, faultfree_ms),
        chaos: numbers(&chaos, chaos_ms),
        upgrade: numbers(&upgrade, upgrade_ms),
        poisoned: numbers(&poisoned, poisoned_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_invariants_and_renders() {
        let report = run(&E15Config::smoke());
        assert_eq!(report.users, 6);
        assert!(report.records > 0);
        assert!(report.raw_bytes_uplinked < report.central_raw_bytes);
        assert!(report.raw_exposure_pct() < 100.0);
        assert!(report.faultfree.full_parity && report.faultfree.degraded_windows == 0);
        assert!(report.chaos.full_parity && report.chaos.retries > 0);
        assert!(report.upgrade.full_parity && report.upgrade.stale_records > 0);
        assert!(report.upgrade.reuploaded_records > 0);
        assert!(!report.poisoned.full_parity);
        assert_eq!(report.poisoned.poisoned_devices, 1);
        assert!(report.poisoned.implausible_records > 0);
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e15_federated_release\"",
            "\"raw_bytes_uplinked\"",
            "\"central_raw_bytes\"",
            "\"raw_exposure_pct\"",
            "\"config_frames\"",
            "\"faultfree\"",
            "\"chaos\"",
            "\"upgrade\"",
            "\"poisoned\"",
            "\"stale_records\"",
            "\"implausible_records\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("raw exposure") && text.contains("poisoned"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E15Config::smoke().users, 6);
        let small = E15Config::from_scale(Scale::Small);
        assert_eq!(small.label, "small");
        assert_eq!(small.users, 30);
        assert_eq!(small.days, 7);
    }
}
