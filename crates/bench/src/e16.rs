//! E16 — observability overhead and trace completeness.
//!
//! The unified observability layer (`crates/obs`) promises two things the
//! rest of the workspace leans on: the **disabled** fast path costs next
//! to nothing on instrumented hot paths, and **enabling** it never
//! changes published bytes. This experiment measures and asserts both:
//!
//! * **no-op cost** — a tight loop over the four instrument entry points
//!   (counter, histogram, span, event) with recording off, reported as
//!   nanoseconds per call;
//! * **steady-window overhead** — the E11 incremental streaming workload
//!   run twice, recording off then on. The recorder-off overhead of the
//!   instrumented steady window is bounded by `(instrumented ops per
//!   window) × (no-op cost)` over the off-run steady-window wall — the
//!   op count taken from the recording run's own instruments, as an
//!   upper bound (one `count(by)` call may add many to a counter) — and
//!   asserted ≤ 2 %;
//! * **recording parity** — both runs' releases compared window by
//!   window: selection and dataset must be byte-identical (the proptest
//!   in `crates/core/tests/observability.rs` covers the chaos path);
//! * **trace completeness** — a fault-injected smoke fleet and a scripted
//!   VM fleet run with recording on, asserting the `ingest`, `reliable`,
//!   `net`, `streaming` and `vm` instrument families all accumulated.
//!
//! The `bench_summary` binary drives [`run`] and emits `BENCH_e16.json`;
//! its `--trace` flag keeps recording on across every experiment and
//! exports the combined JSONL trace for `obs_report`.

use crate::e11::thin_participation;
use crate::e14::SENSING_SCRIPT;
use crate::e7::build_fleet;
use crate::Scale;
use apisense::fleet::{run_fleet, FleetConfig};
use apisense::hive::TaskId;
use apisense::script::{Script, Vm};
use apisense::virtual_sensor::{SelectionStrategy, VirtualSensor};
use mobility::{Dataset, Timestamp, WindowedDataset};
use privapi::prelude::*;
use simnet::reliable::ReliableConfig;
use simnet::{FaultPlan, LinkModel};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Workload shape for one E16 run (the streaming parity leg; the fleet
/// and VM completeness legs always run at smoke shape — they check that
/// families accumulate, not how fast).
#[derive(Debug, Clone)]
pub struct E16Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Streaming population size.
    pub users: usize,
    /// Days of data per user (= number of windows).
    pub days: usize,
    /// Sampling interval, seconds.
    pub interval_s: i64,
    /// Daily participation percentage after day 0.
    pub participation_pct: u64,
}

impl E16Config {
    /// Tiny CI smoke shape: the E11 smoke population.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            users: 6,
            days: 3,
            interval_s: 300,
            participation_pct: 50,
        }
    }

    /// The canonical population for `scale`, bounded at `Large` like
    /// E13's: the overhead bound is a per-window property, already
    /// visible well below the full streaming stress population.
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, interval_s) = crate::data::by_scale(
            scale,
            scale.population(),
            scale.population(),
            scale.population(),
            (2_000, 8, 1_200),
        );
        Self {
            label: format!("{scale:?}").to_lowercase(),
            users,
            days,
            interval_s,
            participation_pct: crate::data::by_scale(scale, 40, 40, 40, 5),
        }
    }
}

/// The instrument families whose presence the completeness legs assert.
pub const REQUIRED_FAMILIES: [&str; 5] = ["ingest", "reliable", "net", "streaming", "vm"];

/// Measured no-op cost, steady-window overhead and per-family instrument
/// activity of one E16 run.
#[derive(Debug, Clone)]
pub struct E16Report {
    /// Workload label.
    pub label: String,
    /// Streaming population size.
    pub users: usize,
    /// Day windows published per streaming leg.
    pub windows: usize,
    /// Candidates in the strategy pool.
    pub pool_size: usize,
    /// Nanoseconds per disabled instrument call (counter + histogram +
    /// span + event averaged).
    pub noop_ns_per_op: f64,
    /// Upper bound on instrumented calls per steady window (taken from
    /// the recording run's counter/span/event accumulation).
    pub instrumented_ops_per_window: f64,
    /// Steady-state (post-bootstrap) window wall with recording off, ms.
    pub off_steady_window_ms: f64,
    /// Steady-state window wall with recording on, ms.
    pub on_steady_window_ms: f64,
    /// Total streaming wall with recording off, ms.
    pub off_total_ms: f64,
    /// Total streaming wall with recording on, ms.
    pub on_total_ms: f64,
    /// Estimated recorder-off overhead on the steady window, percent:
    /// `instrumented_ops_per_window × noop_ns_per_op` over the off-run
    /// steady-window wall. Asserted ≤ 2 in [`run`].
    pub noop_overhead_pct: f64,
    /// Whether both streaming runs released byte-identical windows
    /// (asserted in [`run`]; recorded so the artifact carries it).
    pub parity_ok: bool,
    /// Counter activity per instrument family while recording was on
    /// (family = name up to the first `.`), summed over counter deltas.
    pub families: BTreeMap<String, u64>,
}

impl E16Report {
    /// Renders the report as a JSON object (hand-rolled: the workspace
    /// has no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        let families = self
            .families
            .iter()
            .map(|(name, total)| format!("    \"{name}\": {total}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"experiment\": \"e16_observability\",\n{}  \"scale\": \"{}\",\n  \
             \"users\": {},\n  \"windows\": {},\n  \"pool_size\": {},\n  \
             \"noop_ns_per_op\": {:.3},\n  \"instrumented_ops_per_window\": {:.1},\n  \
             \"off_steady_window_ms\": {:.3},\n  \"on_steady_window_ms\": {:.3},\n  \
             \"off_total_ms\": {:.3},\n  \"on_total_ms\": {:.3},\n  \
             \"noop_overhead_pct\": {:.4},\n  \"parity_ok\": {},\n  \
             \"families\": {{\n{}\n  }}\n}}\n",
            crate::host_json(),
            self.label,
            self.users,
            self.windows,
            self.pool_size,
            self.noop_ns_per_op,
            self.instrumented_ops_per_window,
            self.off_steady_window_ms,
            self.on_steady_window_ms,
            self.off_total_ms,
            self.on_total_ms,
            self.noop_overhead_pct,
            self.parity_ok,
            families,
        )
    }
}

impl fmt::Display for E16Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E16 observability ({}, {} users, {} windows, pool {})",
            self.label, self.users, self.windows, self.pool_size
        )?;
        writeln!(
            f,
            "no-op cost {:.2} ns/call; ≤{:.1} instrumented ops per window → \
             recorder-off steady-window overhead {:.4} % (bound 2 %)",
            self.noop_ns_per_op, self.instrumented_ops_per_window, self.noop_overhead_pct
        )?;
        writeln!(
            f,
            "steady window: {:.3} ms off, {:.3} ms on; totals {:.3} / {:.3} ms; parity {}",
            self.off_steady_window_ms,
            self.on_steady_window_ms,
            self.off_total_ms,
            self.on_total_ms,
            self.parity_ok
        )?;
        let families = self
            .families
            .iter()
            .map(|(name, total)| format!("{name}={total}"))
            .collect::<Vec<_>>()
            .join(" ");
        write!(f, "instrument families while recording: {families}")
    }
}

/// Counter totals per family (prefix up to the first `.`) in a snapshot.
fn family_totals(snap: &obs::metrics::MetricsSnapshot) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for (name, value) in &snap.counters {
        let family = name.split('.').next().unwrap_or(name).to_string();
        *totals.entry(family).or_insert(0) += value;
    }
    totals
}

/// `after - before`, dropping families that did not move.
fn family_deltas(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> BTreeMap<String, u64> {
    after
        .iter()
        .filter_map(|(name, total)| {
            let delta = total - before.get(name).copied().unwrap_or(0);
            (delta > 0).then(|| (name.clone(), delta))
        })
        .collect()
}

/// One pass of the incremental streaming workload; returns the releases
/// (for parity), the total wall and the steady-state window wall (the
/// minimum post-bootstrap window — the run least disturbed by the
/// scheduler).
fn stream_once(
    windows: &WindowedDataset,
    config: &PrivApiConfig,
) -> (Vec<(SelectionReport, Dataset)>, f64, f64) {
    let mut publisher = StreamingPublisher::new(*config);
    let mut total_ms = 0.0;
    let mut steady_ms = f64::MAX;
    let mut releases = Vec::with_capacity(windows.len());
    for (i, window) in windows.iter().enumerate() {
        let start = Instant::now();
        let release = publisher
            .publish_window(window)
            .expect("incremental publish succeeds");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        total_ms += wall_ms;
        if i > 0 || windows.len() == 1 {
            steady_ms = steady_ms.min(wall_ms);
        }
        releases.push((release.published.selection, release.published.dataset));
    }
    (releases, total_ms, steady_ms)
}

/// Runs E16: measures the disabled fast-path cost, bounds the recorder-off
/// steady-window overhead at 2 %, asserts recording parity on the
/// streaming workload, and asserts the required instrument families all
/// accumulate under a fault-injected fleet plus a scripted VM fleet.
pub fn run(config: &E16Config) -> E16Report {
    let was_enabled = obs::enabled();

    // Leg A — disabled fast-path cost. Recording must be off.
    obs::disable();
    const NOOP_ITERS: u64 = 500_000;
    let start = Instant::now();
    for i in 0..NOOP_ITERS {
        obs::count("e16.noop", std::hint::black_box(i));
        obs::observe(
            "e16.noop_hist",
            obs::Buckets::LatencyMs,
            std::hint::black_box(i),
        );
        let span = obs::span("e16.noop_span");
        drop(std::hint::black_box(span));
        obs::event("e16.noop_event", &[]);
    }
    let noop_ns_per_op = start.elapsed().as_secs_f64() * 1e9 / (NOOP_ITERS as f64 * 4.0);

    // Leg B — streaming off vs on, with parity.
    let data = crate::data::dataset(config.users, config.days, config.interval_s, 0xE16);
    let dataset = thin_participation(&data.dataset, config.participation_pct);
    let windows = WindowedDataset::partition(&dataset);
    assert!(
        !windows.is_empty(),
        "generated data must span at least a day"
    );
    let privapi_config = PrivApiConfig::default();
    let pool_size = PrivApi::new(privapi_config).pool().len();

    let (off_releases, off_total_ms, off_steady_window_ms) =
        stream_once(&windows, &privapi_config);

    obs::enable();
    obs::phase("e16.stream");
    let counters_before = family_totals(&obs::metrics::snapshot());
    let (spans_before, events_before, _) = obs::trace::snapshot();
    let (on_releases, on_total_ms, on_steady_window_ms) =
        stream_once(&windows, &privapi_config);
    let counters_after = family_totals(&obs::metrics::snapshot());
    let (spans_after, events_after, _) = obs::trace::snapshot();

    let parity_ok = off_releases == on_releases;
    assert!(
        parity_ok,
        "recording on must not change a single released byte"
    );

    // Upper bound on instrumented calls per window: every span and event
    // is one call; each counter *increment* is counted as one call even
    // though one call may add many.
    let streaming_deltas = family_deltas(&counters_before, &counters_after);
    let counter_ops: u64 = streaming_deltas.values().sum();
    let trace_ops =
        (spans_after.len() - spans_before.len()) + (events_after.len() - events_before.len());
    let instrumented_ops_per_window =
        (counter_ops as f64 + trace_ops as f64) / windows.len() as f64;
    let noop_overhead_pct =
        instrumented_ops_per_window * noop_ns_per_op / (off_steady_window_ms * 1e6) * 100.0;
    assert!(
        noop_overhead_pct <= 2.0,
        "recorder-off overhead bound breached: {instrumented_ops_per_window:.1} ops × \
         {noop_ns_per_op:.2} ns over a {off_steady_window_ms:.3} ms steady window \
         = {noop_overhead_pct:.4} % > 2 %"
    );

    // Leg C — fault-injected smoke fleet: ingest/reliable/net families.
    obs::phase("e16.fleet");
    let fleet_before = family_totals(&obs::metrics::snapshot());
    let outcome = run_fleet(&FleetConfig {
        seed: 0xE16,
        users: 6,
        days: 2,
        sampling_interval_s: 900,
        upload_every_s: 1_800,
        grace_s: 14_400,
        link: LinkModel::mobile(),
        faults: FaultPlan::chaos(0xE16),
        reliable: ReliableConfig::default(),
    });
    assert!(outcome.published_records() > 0, "smoke fleet must publish");

    // Leg D — scripted VM fleet: the vm family.
    let script = Script::compile(SENSING_SCRIPT).expect("sensing script compiles");
    let mut vm = Vm::new();
    let mut fleet = build_fleet(4, 2, 0xE16);
    let mut sensor = VirtualSensor::new(SelectionStrategy::RoundRobin, 2);
    let task = TaskId(16);
    let start_at = Timestamp::from_day_time(0, 8, 0, 0);
    let mut vm_records = 0;
    for q in 0..4 {
        let now = start_at + (q as i64) * 60;
        for idx in sensor.select(&fleet, now) {
            vm_records += fleet[idx]
                .sample_scripted(task, &script, &mut vm, now)
                .len();
        }
    }
    assert!(vm_records > 0, "the VM leg must execute the sensing script");
    let completeness_deltas =
        family_deltas(&fleet_before, &family_totals(&obs::metrics::snapshot()));

    let mut families = streaming_deltas;
    for (name, delta) in completeness_deltas {
        *families.entry(name).or_insert(0) += delta;
    }
    for family in REQUIRED_FAMILIES {
        assert!(
            families.get(family).copied().unwrap_or(0) > 0,
            "instrument family {family:?} recorded nothing: {families:?}"
        );
    }

    if was_enabled {
        obs::enable();
    } else {
        obs::disable();
    }

    E16Report {
        label: config.label.clone(),
        users: config.users,
        windows: windows.len(),
        pool_size,
        noop_ns_per_op,
        instrumented_ops_per_window,
        off_steady_window_ms,
        on_steady_window_ms,
        off_total_ms,
        on_total_ms,
        noop_overhead_pct,
        parity_ok,
        families,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_bounds_overhead_and_covers_families() {
        let report = run(&E16Config::smoke());
        assert!(!obs::enabled(), "run must restore the disabled state");
        assert!(report.parity_ok);
        assert!(report.noop_overhead_pct <= 2.0);
        assert!(report.noop_ns_per_op > 0.0);
        assert!(report.instrumented_ops_per_window > 0.0);
        for family in REQUIRED_FAMILIES {
            assert!(report.families.contains_key(family), "missing {family}");
        }
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e16_observability\"",
            "\"host\"",
            "\"noop_ns_per_op\"",
            "\"noop_overhead_pct\"",
            "\"parity_ok\": true",
            "\"families\"",
            "\"vm\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("no-op cost") && text.contains("parity"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E16Config::smoke().users, 6);
        let small = E16Config::from_scale(Scale::Small);
        assert_eq!(small.label, "small");
        assert_eq!(small.users, 30);
        let large = E16Config::from_scale(Scale::Large);
        assert_eq!(large.users, 2_000);
    }
}
