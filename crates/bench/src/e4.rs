//! E4 — platform scalability over the simulated network (Figure 1 at work).
//!
//! Paper anchor (§2): "dynamic deployment of crowdsourcing tasks across a
//! population of mobile phones". The table sweeps the population size and
//! reports deployment latency and collection throughput.

use apisense::deploy::{run_campaign, CampaignConfig, CampaignReport};
use apisense::device::SensorKind;
use apisense::honeycomb::ExperimentBuilder;
use apisense::honeycomb::SensingTask;
use simnet::LinkModel;
use std::fmt;

/// One row of the E4 table.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Population size.
    pub devices: usize,
    /// The campaign outcome.
    pub report: CampaignReport,
}

/// The E4 result table.
#[derive(Debug, Clone)]
pub struct E4Table {
    /// Rows per population size.
    pub rows: Vec<E4Row>,
    /// Campaign duration, seconds.
    pub duration_s: u64,
}

impl fmt::Display for E4Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E4 — deployment & collection vs. population ({} h campaign, mobile links)",
            self.duration_s / 3_600
        )?;
        writeln!(
            f,
            "{:>8} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "devices", "acked", "deploy p50", "deploy p95", "records", "rec/s", "delivery"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>7} {:>9} ms {:>9} ms {:>10} {:>10.2} {:>9.1}%",
                r.devices,
                r.report.acked_devices,
                r.report.deploy_latency_p50_ms,
                r.report.deploy_latency_p95_ms,
                r.report.records_received,
                r.report.throughput_rps,
                r.report.delivery_ratio * 100.0
            )?;
        }
        Ok(())
    }
}

/// The network-quality task used by the sweep.
pub fn task() -> SensingTask {
    ExperimentBuilder::new("network-quality-map")
        .require_sensor(SensorKind::Gps)
        .require_sensor(SensorKind::NetworkQuality)
        .sampling_interval_s(300)
        .build()
}

/// Runs E4 over the given population sizes.
pub fn run_sweep(populations: &[usize], duration_s: u64) -> E4Table {
    let task = task();
    let rows = populations
        .iter()
        .map(|&devices| E4Row {
            devices,
            report: run_campaign(
                &task,
                &CampaignConfig {
                    devices,
                    duration_s,
                    device_link: LinkModel::mobile(),
                    backbone_link: LinkModel::wan(),
                    seed: 0xE4,
                    sampling_interval_s: 300,
                },
            ),
        })
        .collect();
    E4Table { rows, duration_s }
}

/// Runs E4 at the default sweep for the chosen scale.
pub fn run(scale: crate::Scale) -> E4Table {
    let (fleets, duration_s): (&[usize], u64) = crate::data::by_scale(
        scale,
        (&[10, 25, 50], 2 * 3_600),
        (&[10, 50, 100, 250], 4 * 3_600),
        (&[10, 50, 100, 250, 500], 6 * 3_600),
        (&[10, 100, 500, 1_000], 6 * 3_600),
    );
    run_sweep(fleets, duration_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_scales_linearly_in_collected_records() {
        let table = run_sweep(&[5, 20], 2 * 3_600);
        let small = &table.rows[0].report;
        let large = &table.rows[1].report;
        assert!(large.records_received > small.records_received * 2);
        // Deployment latency stays bounded as the fleet grows (the Hive
        // fans out in parallel).
        assert!(large.deploy_latency_p95_ms < 5_000);
        assert!(small.delivery_ratio > 0.9);
    }
}
