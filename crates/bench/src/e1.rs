//! E1 — POI retrieval & re-identification vs. protection mechanism.
//!
//! Paper anchor (§3): "even a recent state-of-the-art protection mechanism
//! still allows to re-identify at least 60 % of the points of interest from
//! a real-life dataset." The reference POI set is what the attack extracts
//! from the *raw* dataset (the companion study's definition).

use crate::data::standard_dataset;
use crate::Scale;
use privapi::attack::{PoiAttack, ReidentificationAttack};
use privapi::strategy::AnonymizationStrategy;
use std::fmt;

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Mechanism description.
    pub mechanism: String,
    /// POI recall against the raw-extraction reference.
    pub poi_recall: f64,
    /// Extraction precision.
    pub poi_precision: f64,
    /// Re-identification accuracy.
    pub reident_accuracy: f64,
}

/// The E1 result table.
#[derive(Debug, Clone)]
pub struct E1Table {
    /// Rows, in mechanism order.
    pub rows: Vec<E1Row>,
    /// Number of reference POIs.
    pub reference_pois: usize,
}

impl E1Table {
    /// The geo-indistinguishability row at the practical setting
    /// (ε = ln 4 / 200 m), carrying the paper's headline number.
    pub fn headline_geo_i_recall(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.mechanism.contains("0.0069"))
            .map(|r| r.poi_recall)
    }

    /// The strongest (lowest-recall) speed-smoothing row.
    pub fn best_smoothing_recall(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.mechanism.starts_with("speed-smoothing"))
            .map(|r| r.poi_recall)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }
}

impl fmt::Display for E1Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E1 — POI retrieval & re-identification ({} reference POIs)",
            self.reference_pois
        )?;
        writeln!(
            f,
            "{:<48} {:>8} {:>10} {:>9}",
            "mechanism", "recall", "precision", "reident"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<48} {:>7.1}% {:>9.1}% {:>8.1}%",
                r.mechanism,
                r.poi_recall * 100.0,
                r.poi_precision * 100.0,
                r.reident_accuracy * 100.0
            )?;
        }
        Ok(())
    }
}

/// The mechanism grid of E1 — the shared measurement pool
/// ([`privapi::pool::StrategyPool::evaluation_grid`]), so experiments and
/// middleware draw candidates from one definition.
pub fn mechanisms() -> Vec<Box<dyn AnonymizationStrategy>> {
    privapi::pool::StrategyPool::evaluation_grid().into_candidates()
}

/// Runs E1.
pub fn run(scale: Scale) -> E1Table {
    let data = standard_dataset(scale);
    let attack = PoiAttack::default();
    let reident = ReidentificationAttack::default();
    let reference = attack.extract(&data.dataset);
    let reference_pois = reference.values().map(Vec::len).sum();
    let rows = mechanisms()
        .iter()
        .map(|mechanism| {
            let protected = mechanism.anonymize(&data.dataset, 0xE1);
            let poi = attack.evaluate_reference(&protected, &reference);
            let link = reident.evaluate(&protected, &data.dataset);
            E1Row {
                mechanism: mechanism.info().to_string(),
                poi_recall: poi.recall,
                poi_precision: poi.precision,
                reident_accuracy: link.accuracy,
            }
        })
        .collect();
    E1Table {
        rows,
        reference_pois,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_headline_shape() {
        let table = run(Scale::Small);
        // Identity leaks everything.
        assert!(table.rows[0].poi_recall > 0.99);
        // Geo-I at the practical setting leaks ≥ 60 % (the paper's claim).
        let geo_i = table.headline_geo_i_recall().expect("geo-i row");
        assert!(geo_i >= 0.6, "geo-I recall {geo_i}");
        // Speed smoothing leaks drastically less.
        let smoothing = table.best_smoothing_recall().expect("smoothing rows");
        assert!(
            smoothing < geo_i / 2.0,
            "smoothing {smoothing} vs geo-I {geo_i}"
        );
    }
}
