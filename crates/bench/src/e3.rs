//! E3 — utility of the protected datasets.
//!
//! Paper anchor (§3): "under such a protection utility of our anonymized
//! dataset remains high for useful data mining tasks such as finding out
//! crowded places (E3a) or predicting traffic (E3b)".

use crate::data::standard_dataset;
use crate::e1::mechanisms;
use crate::Scale;
use privapi::metrics::{crowded_places_utility, spatial_distortion, traffic_utility};
use std::fmt;

/// One row of the E3 table.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Mechanism description.
    pub mechanism: String,
    /// Crowded-places precision@k (E3a).
    pub crowded_precision: f64,
    /// Crowded-places Jaccard (E3a).
    pub crowded_jaccard: f64,
    /// Traffic forecast utility score (E3b).
    pub traffic_utility: f64,
    /// Mean spatial distortion, metres.
    pub distortion_m: f64,
}

/// The E3 result table.
#[derive(Debug, Clone)]
pub struct E3Table {
    /// Rows per mechanism.
    pub rows: Vec<E3Row>,
    /// Top-k used for crowded places.
    pub k: usize,
}

impl E3Table {
    /// Finds a row by mechanism prefix.
    pub fn row(&self, prefix: &str) -> Option<&E3Row> {
        self.rows.iter().find(|r| r.mechanism.starts_with(prefix))
    }
}

impl fmt::Display for E3Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E3 — utility: crowded places (top-{}) and traffic forecasting",
            self.k
        )?;
        writeln!(
            f,
            "{:<48} {:>8} {:>8} {:>9} {:>11}",
            "mechanism", "P@k", "Jaccard", "traffic", "distortion"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<48} {:>7.1}% {:>7.2} {:>9.2} {:>9.0} m",
                r.mechanism,
                r.crowded_precision * 100.0,
                r.crowded_jaccard,
                r.traffic_utility,
                r.distortion_m
            )?;
        }
        Ok(())
    }
}

/// Runs E3 (both E3a crowded places and E3b traffic).
pub fn run(scale: Scale) -> E3Table {
    let data = standard_dataset(scale);
    let k = 20;
    let cell = geo::Meters::new(250.0);
    let traffic_cell = geo::Meters::new(500.0);
    let rows = mechanisms()
        .iter()
        .map(|mechanism| {
            let protected = mechanism.anonymize(&data.dataset, 0xE3);
            let crowded = crowded_places_utility(&data.dataset, &protected, cell, k)
                .map(|r| (r.precision_at_k, r.jaccard))
                .unwrap_or((0.0, 0.0));
            let traffic = traffic_utility(&data.dataset, &protected, traffic_cell)
                .map(|r| r.utility_score())
                .unwrap_or(0.0);
            let distortion = spatial_distortion(&data.dataset, &protected)
                .map(|r| r.mean_m)
                .unwrap_or(f64::NAN);
            E3Row {
                mechanism: mechanism.info().to_string(),
                crowded_precision: crowded.0,
                crowded_jaccard: crowded.1,
                traffic_utility: traffic,
                distortion_m: distortion,
            }
        })
        .collect();
    E3Table { rows, k }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_smoothing_keeps_crowded_places_useful() {
        let table = run(Scale::Small);
        let identity = table.row("identity").expect("identity row");
        assert!(identity.crowded_precision > 0.99);
        assert!(identity.distortion_m < 1.0);
        // Smoothing keeps a substantial share of the crowded cells while
        // the noise level needed to stop the attack (geo-I ε=0.001 → ~2 km
        // mean noise) destroys them.
        let best_smoothing = table
            .rows
            .iter()
            .filter(|r| r.mechanism.starts_with("speed-smoothing"))
            .map(|r| r.crowded_precision)
            .fold(0.0, f64::max);
        let strong_noise = table
            .row("geo-indistinguishability(epsilon=0.0010")
            .expect("strong geo-i row");
        assert!(best_smoothing > 0.4, "best smoothing P@k {best_smoothing}");
        assert!(
            best_smoothing > strong_noise.crowded_precision + 0.1,
            "smoothing {} vs strong noise {}",
            best_smoothing,
            strong_noise.crowded_precision
        );
    }
}
