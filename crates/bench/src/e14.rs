//! E14 — script execution tiers: tree-walking interpreter vs bytecode VM.
//!
//! The client runtime executes every deployed sensing script once per
//! reading, so script execution sits on the hottest per-device path. This
//! experiment drives the E7 virtual-sensor workload through both tiers —
//! [`Device::sample_interpreted`] (the tree-walker baseline) and
//! [`Device::sample_scripted`] (compile-once bytecode VM with a reused
//! executor) — over two identical fleets, asserts record-for-record parity
//! before reporting any number, and emits throughput plus speedup.
//!
//! The `bench_summary` binary drives [`run`] and writes the numbers as
//! `BENCH_e14.json`; the `e14_script` Criterion bench measures the same
//! two paths per reading.

use crate::e7::build_fleet;
use crate::Scale;
use apisense::device::{Device, SensedRecord};
use apisense::hive::TaskId;
use apisense::script::{Script, Vm};
use apisense::virtual_sensor::{SelectionStrategy, VirtualSensor};
use mobility::Timestamp;
use std::fmt;
use std::time::Instant;

/// The sensing script both tiers execute: a few sensor reads feeding a
/// compute-heavy smoothing + activity-classification loop, the shape the
/// paper's continuous-sensing tasks take (sample, filter locally, emit one
/// compact record).
pub const SENSING_SCRIPT: &str = r#"
    fn smooth(prev, sample, alpha) {
        return prev + alpha * (sample - prev);
    }

    fn classify(energy) {
        if (energy > 3) { return "vehicle"; }
        if (energy > 0.8) { return "walking"; }
        return "still";
    }

    let level = sensor.accelerometer();
    let gps = sensor.gps();
    let battery = sensor.battery();
    if (level == null) { level = 9.81; }
    let energy = 0;
    let i = 0;
    while (i < 48) {
        let s = sensor.accelerometer();
        if (s == null) { s = level; }
        level = smooth(level, s, 0.3);
        let d = s - level;
        energy = energy + d * d;
        i = i + 1;
    }
    let lat = null;
    let lon = null;
    if (gps != null) {
        lat = gps.lat;
        lon = gps.lon;
    }
    emit({
        "activity": classify(energy),
        "energy": energy,
        "level": level,
        "battery": battery,
        "lat": lat,
        "lon": lon
    });
"#;

/// Workload shape for one E14 run.
#[derive(Debug, Clone)]
pub struct E14Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Fleet size.
    pub devices: usize,
    /// Virtual-sensor queries issued per tier.
    pub queries: usize,
    /// Devices answering each query.
    pub per_query: usize,
}

impl E14Config {
    /// Tiny CI smoke shape: sub-second end to end, still asserting parity
    /// on every record.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            devices: 6,
            queries: 8,
            per_query: 3,
        }
    }

    /// The canonical fleet for `scale`.
    pub fn from_scale(scale: Scale) -> Self {
        let (devices, queries) =
            crate::data::by_scale(scale, (40, 60), (70, 120), (100, 240), (150, 360));
        Self {
            label: format!("{scale:?}").to_lowercase(),
            devices,
            queries,
            per_query: 5,
        }
    }
}

/// Measured interpreter-vs-VM numbers plus the parity they were taken
/// under.
#[derive(Debug, Clone)]
pub struct E14Report {
    /// Workload label.
    pub label: String,
    /// Fleet size.
    pub devices: usize,
    /// Queries issued per tier.
    pub queries: usize,
    /// Devices answering each query.
    pub per_query: usize,
    /// Script executions per tier.
    pub executions: usize,
    /// Records produced per tier (identical across tiers by assertion).
    pub records: usize,
    /// Total wall time of the interpreter tier, ms.
    pub interp_total_ms: f64,
    /// Total wall time of the VM tier, ms.
    pub vm_total_ms: f64,
    /// Whether both tiers produced identical record streams (asserted in
    /// [`run`]; recorded so the JSON artifact carries the invariant).
    pub parity_ok: bool,
}

impl E14Report {
    /// Throughput speedup of the VM tier over the interpreter.
    pub fn speedup(&self) -> f64 {
        self.interp_total_ms / self.vm_total_ms.max(1e-9)
    }

    /// Interpreter script executions per second.
    pub fn interp_execs_per_sec(&self) -> f64 {
        self.executions as f64 / (self.interp_total_ms.max(1e-9) / 1e3)
    }

    /// VM script executions per second.
    pub fn vm_execs_per_sec(&self) -> f64 {
        self.executions as f64 / (self.vm_total_ms.max(1e-9) / 1e3)
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace has
    /// no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e14_script_vm\",\n{}  \"scale\": \"{}\",\n  \
             \"devices\": {},\n  \"queries\": {},\n  \"per_query\": {},\n  \
             \"executions\": {},\n  \"records\": {},\n  \
             \"interp_total_ms\": {:.3},\n  \"vm_total_ms\": {:.3},\n  \
             \"interp_execs_per_sec\": {:.1},\n  \"vm_execs_per_sec\": {:.1},\n  \
             \"speedup\": {:.3},\n  \"parity_ok\": {}\n}}\n",
            crate::host_json(),
            self.label,
            self.devices,
            self.queries,
            self.per_query,
            self.executions,
            self.records,
            self.interp_total_ms,
            self.vm_total_ms,
            self.interp_execs_per_sec(),
            self.vm_execs_per_sec(),
            self.speedup(),
            self.parity_ok,
        )
    }
}

impl fmt::Display for E14Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E14 script tiers ({}, {} devices, {} queries x {} per query, \
             {} executions, {} records, parity {})",
            self.label,
            self.devices,
            self.queries,
            self.per_query,
            self.executions,
            self.records,
            if self.parity_ok { "ok" } else { "FAILED" }
        )?;
        let widths = [14, 12, 14, 9];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "tier".into(),
                    "total ms".into(),
                    "execs/sec".into(),
                    "speedup".into()
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "interpreter".into(),
                    format!("{:.3}", self.interp_total_ms),
                    format!("{:.0}", self.interp_execs_per_sec()),
                    "1.00x".into(),
                ],
                &widths
            )
        )?;
        write!(
            f,
            "{}",
            crate::row(
                &[
                    "bytecode vm".into(),
                    format!("{:.3}", self.vm_total_ms),
                    format!("{:.0}", self.vm_execs_per_sec()),
                    format!("{:.2}x", self.speedup()),
                ],
                &widths
            )
        )
    }
}

/// Advances every device's battery by one idle minute.
fn idle_drain(fleet: &mut [Device], now: Timestamp) {
    let charging = now.is_night();
    for device in fleet.iter_mut() {
        device.battery_mut().advance(60, charging);
    }
}

/// Timing repetitions per [`run`]: the workload is deterministic, so each
/// repetition redoes identical work and the per-tier minimum is the run
/// least disturbed by the scheduler (same estimator criterion uses).
const REPS: usize = 5;

/// One timed pass of the full workload: fresh fleets, interleaved per-query
/// timing of both tiers, selection parity asserted on every query.
fn run_once(
    config: &E14Config,
    script: &Script,
    vm: &mut Vm,
) -> (f64, f64, usize, Vec<SensedRecord>) {
    let mut interp_fleet = build_fleet(config.devices, 2, 0xE14);
    let mut vm_fleet = build_fleet(config.devices, 2, 0xE14);
    let mut vs_interp = VirtualSensor::new(SelectionStrategy::RoundRobin, config.per_query);
    let mut vs_vm = VirtualSensor::new(SelectionStrategy::RoundRobin, config.per_query);
    let task = TaskId(14);
    let start = Timestamp::from_day_time(0, 8, 0, 0);
    let mut interp_total_ms = 0.0;
    let mut vm_total_ms = 0.0;
    let mut executions = 0;
    let mut interp_records = Vec::new();
    let mut vm_records = Vec::new();
    for q in 0..config.queries {
        let now = start + (q as i64) * 60;
        let selected = vs_interp.select(&interp_fleet, now);
        let selected_vm = vs_vm.select(&vm_fleet, now);
        assert_eq!(
            selected, selected_vm,
            "query {q}: tier fleets diverged in selection"
        );
        executions += selected.len();

        let timer = Instant::now();
        for &idx in &selected {
            interp_records.extend(interp_fleet[idx].sample_interpreted(task, script, now));
        }
        interp_total_ms += timer.elapsed().as_secs_f64() * 1e3;

        let timer = Instant::now();
        for &idx in &selected {
            vm_records.extend(vm_fleet[idx].sample_scripted(task, script, vm, now));
        }
        vm_total_ms += timer.elapsed().as_secs_f64() * 1e3;

        idle_drain(&mut interp_fleet, now);
        idle_drain(&mut vm_fleet, now);
    }
    assert_eq!(
        interp_records,
        vm_records,
        "tiers produced different record streams ({} vs {} records)",
        interp_records.len(),
        vm_records.len()
    );
    (interp_total_ms, vm_total_ms, executions, interp_records)
}

/// Runs E14: executes the sensing workload through both tiers over two
/// identical fleets, asserting selection and record parity on every query
/// before reporting any timing. The whole workload is repeated `REPS`
/// times (fleets rebuilt from the same seed each time, parity re-asserted)
/// and each tier reports its minimum total, which discards scheduler
/// preemptions instead of averaging them in.
pub fn run(config: &E14Config) -> E14Report {
    let script = Script::compile(SENSING_SCRIPT).expect("sensing script compiles");
    let mut vm = Vm::new();
    let mut interp_total_ms = f64::MAX;
    let mut vm_total_ms = f64::MAX;
    let mut executions = 0;
    let mut records = 0;
    let mut first_records: Option<Vec<SensedRecord>> = None;
    for _ in 0..REPS {
        let (interp_ms, vm_ms, execs, recs) = run_once(config, &script, &mut vm);
        interp_total_ms = interp_total_ms.min(interp_ms);
        vm_total_ms = vm_total_ms.min(vm_ms);
        executions = execs;
        records = recs.len();
        match &first_records {
            None => first_records = Some(recs),
            Some(first) => assert_eq!(
                first, &recs,
                "deterministic workload diverged across repetitions"
            ),
        }
    }
    E14Report {
        label: config.label.clone(),
        devices: config.devices,
        queries: config.queries,
        per_query: config.per_query,
        executions,
        records,
        interp_total_ms,
        vm_total_ms,
        parity_ok: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_parity_and_renders() {
        let report = run(&E14Config::smoke());
        assert!(report.parity_ok);
        assert_eq!(report.executions, report.queries * report.per_query);
        assert!(report.records > 0, "{report:?}");
        assert!(report.interp_total_ms > 0.0);
        assert!(report.vm_total_ms > 0.0);
        assert!(
            report.speedup() > 1.0,
            "vm must outrun the interpreter: {report}"
        );
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e14_script_vm\"",
            "\"interp_total_ms\"",
            "\"vm_total_ms\"",
            "\"interp_execs_per_sec\"",
            "\"vm_execs_per_sec\"",
            "\"speedup\"",
            "\"parity_ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("interpreter"));
        assert!(text.contains("bytecode vm"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E14Config::smoke().devices, 6);
        let medium = E14Config::from_scale(Scale::Medium);
        assert_eq!(medium.label, "medium");
        assert_eq!(medium.devices, 70);
        assert_eq!(medium.queries, 120);
        assert_eq!(medium.per_query, 5);
    }
}
