//! E6 — incentive strategies vs. sustained participation.
//!
//! Paper anchor (§2): "user feedback, user ranking, user rewarding and
//! win-win services. The selection of incentive strategies carefully depends
//! on the nature of the crowdsourcing experiments."

use apisense::incentives::{
    simulate_campaign, CampaignConfig, IncentiveReport, IncentiveStrategy,
};
use std::fmt;

/// The E6 result table.
#[derive(Debug, Clone)]
pub struct E6Table {
    /// Reports per strategy.
    pub rows: Vec<IncentiveReport>,
    /// Community size.
    pub users: usize,
    /// Campaign length, days.
    pub days: usize,
}

impl fmt::Display for E6Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E6 — incentives over a {}-day campaign, {}-user community",
            self.days, self.users
        )?;
        writeln!(
            f,
            "{:<36} {:>12} {:>10} {:>10} {:>10}",
            "strategy", "mean active", "records", "cost", "retention"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<36} {:>12.1} {:>10} {:>10.0} {:>10.2}",
                r.strategy, r.mean_active, r.total_records, r.cost, r.retention
            )?;
        }
        Ok(())
    }
}

/// Runs E6.
pub fn run(scale: crate::Scale) -> E6Table {
    let (users, days) =
        crate::data::by_scale(scale, (150, 21), (200, 21), (300, 28), (400, 28));
    let config = CampaignConfig {
        users,
        days,
        records_per_active_day: 48,
        seed: 0xE6,
    };
    let strategies = [
        IncentiveStrategy::None,
        IncentiveStrategy::Feedback,
        IncentiveStrategy::Ranking,
        IncentiveStrategy::Rewarding {
            credits_per_record: 0.05,
            budget: 10_000.0,
        },
        IncentiveStrategy::WinWin,
    ];
    let rows = strategies
        .iter()
        .map(|s| simulate_campaign(s, &config))
        .collect();
    E6Table {
        rows,
        users: config.users,
        days: config.days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_no_incentive_is_the_floor_and_winwin_retains() {
        let table = run(crate::Scale::Small);
        let none = &table.rows[0];
        for r in &table.rows[1..] {
            assert!(
                r.mean_active >= none.mean_active,
                "{} below the no-incentive floor",
                r.strategy
            );
        }
        let winwin = table.rows.last().expect("win-win row");
        assert!(winwin.retention > none.retention);
    }
}
