//! E5 — utility-driven optimal strategy selection.
//!
//! Paper anchor (§3): "there is not one unique anonymization strategy that
//! always performs well but many from which we can choose the one that fits
//! the best to the usage that will be done with the anonymized dataset."

use crate::data::standard_dataset;
use crate::Scale;
use privapi::attack::PoiAttack;
use privapi::pool::StrategyPool;
use privapi::selection::{Objective, SelectionReport, StrategySelector};
use std::fmt;

/// One row of the E5 table.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// The analyst's objective.
    pub objective: String,
    /// The privacy floor.
    pub floor: f64,
    /// The winning strategy, or the failure reason.
    pub winner: String,
    /// The winner's utility score.
    pub utility: f64,
    /// The winner's residual POI recall.
    pub recall: f64,
}

/// The E5 result table.
#[derive(Debug, Clone)]
pub struct E5Table {
    /// Rows per (objective, floor).
    pub rows: Vec<E5Row>,
    /// Full per-candidate reports (for the appendix print-out).
    pub reports: Vec<SelectionReport>,
}

impl fmt::Display for E5Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E5 — utility-driven strategy selection")?;
        writeln!(
            f,
            "{:<34} {:>6} {:<46} {:>8} {:>8}",
            "objective", "floor", "selected strategy", "utility", "recall"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<34} {:>6.2} {:<46} {:>8.3} {:>7.1}%",
                r.objective,
                r.floor,
                r.winner,
                r.utility,
                r.recall * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs E5: three objectives × two privacy floors.
pub fn run(scale: Scale) -> E5Table {
    let data = standard_dataset(scale);
    let attack = PoiAttack::default();
    let reference = attack.extract(&data.dataset);
    let objectives = [
        Objective::CrowdedPlaces {
            cell: geo::Meters::new(250.0),
            k: 20,
        },
        Objective::Traffic {
            cell: geo::Meters::new(500.0),
        },
        Objective::Distortion,
    ];
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for floor in [0.25, 0.10] {
        for objective in objectives {
            let selector = StrategySelector::new(objective, floor, 0xE5)
                .with_pool(StrategyPool::default_pool());
            match selector.select(&data.dataset, &reference) {
                Ok((winner, report)) => {
                    let row = report.winner().expect("chosen row exists").clone();
                    rows.push(E5Row {
                        objective: objective.to_string(),
                        floor,
                        winner: winner.info().to_string(),
                        utility: row.utility,
                        recall: row.poi_recall,
                    });
                    reports.push(report);
                }
                Err(e) => rows.push(E5Row {
                    objective: objective.to_string(),
                    floor,
                    winner: format!("<{e}>"),
                    utility: 0.0,
                    recall: f64::NAN,
                }),
            }
        }
    }
    E5Table { rows, reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_selection_respects_floors() {
        let table = run(Scale::Small);
        assert_eq!(table.rows.len(), 6);
        // The loose floor must always be satisfiable.
        for row in table.rows.iter().filter(|r| r.floor > 0.2) {
            assert!(
                !row.winner.starts_with('<'),
                "{} at floor {} failed: {}",
                row.objective,
                row.floor,
                row.winner
            );
            assert!(row.recall <= row.floor + 1e-9);
        }
        // The tight floor either succeeds (respecting it) or reports
        // infeasibility explicitly — "a minimum level of privacy must be
        // enforced" even at the cost of refusing publication.
        for row in table.rows.iter().filter(|r| r.floor <= 0.2) {
            if row.winner.starts_with('<') {
                assert!(row.winner.contains("privacy floor"), "{}", row.winner);
            } else {
                assert!(row.recall <= row.floor + 1e-9);
            }
        }
        // Tightening the floor can only keep or lower achievable utility.
        for objective_idx in 0..3 {
            let loose = &table.rows[objective_idx];
            let tight = &table.rows[objective_idx + 3];
            if !tight.winner.starts_with('<') {
                assert!(tight.utility <= loose.utility + 1e-9);
            }
        }
    }
}
