//! Experiment harness regenerating every table/figure of the paper.
//!
//! The poster's evaluation claims are indexed in `DESIGN.md` §4 (E1–E8 plus
//! the Figure 1 architecture F1). Each experiment lives in its own module
//! with a `run(scale)` entry point returning a printable table; the
//! `experiments` binary drives them, and the Criterion benches under
//! `benches/` measure the hot paths of each experiment.

pub mod data;
pub mod e1;
pub mod e10;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod f1;

/// Experiment scale: `Small` keeps every experiment under a few seconds,
/// `Medium` is the attack-path regression point (large enough for the
/// indexed-vs-scan and parallel-vs-serial gaps to be visible), and `Full`
/// approaches the population sizes a real deployment would see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: tens of users, a week of data.
    Small,
    /// Attack-path regression scale: most of a hundred users, ten days.
    Medium,
    /// Paper-scale: hundreds of users, two weeks of data.
    Full,
}

impl Scale {
    /// (users, days, sampling interval seconds) for dataset-driven
    /// experiments.
    pub fn population(&self) -> (usize, usize, i64) {
        match self {
            Scale::Small => (30, 7, 120),
            Scale::Medium => (80, 10, 90),
            Scale::Full => (200, 14, 60),
        }
    }
}

/// Renders a markdown-style table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!(" {cell:<width$} |"));
    }
    out
}
