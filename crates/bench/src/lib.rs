//! Experiment harness regenerating every table/figure of the paper.
//!
//! The poster's evaluation claims are indexed in `DESIGN.md` §4 (E1–E8 plus
//! the Figure 1 architecture F1). Each experiment lives in its own module
//! with a `run(scale)` entry point returning a printable table; the
//! `experiments` binary drives them, and the Criterion benches under
//! `benches/` measure the hot paths of each experiment.

pub mod data;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod f1;

/// Experiment scale: `Small` keeps every experiment under a few seconds,
/// `Medium` is the attack-path regression point (large enough for the
/// indexed-vs-scan and parallel-vs-serial gaps to be visible), `Full`
/// approaches the population sizes a real deployment would see, and
/// `Large` is the streaming stress shape — a five-digit population with
/// sparse daily participation, where per-window cost must track *active*
/// users, not the accumulated prefix (E11's last/first-window wall ratio
/// is the headline number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: tens of users, a week of data.
    Small,
    /// Attack-path regression scale: most of a hundred users, ten days.
    Medium,
    /// Paper-scale: hundreds of users, two weeks of data.
    Full,
    /// Streaming stress scale: ten thousand users, sparse participation.
    Large,
}

impl Scale {
    /// (users, days, sampling interval seconds) for dataset-driven
    /// experiments.
    pub fn population(&self) -> (usize, usize, i64) {
        data::by_scale(
            *self,
            (30, 7, 120),
            (80, 10, 90),
            (200, 14, 60),
            (10_000, 8, 1_200),
        )
    }

    /// Parses a `--scale` argument. Unknown values are an *error*, never a
    /// silent fallback — a typo like `--scale mediun` must not quietly run
    /// the default scale and masquerade as a regression data point.
    pub fn parse(value: &str) -> Result<Scale, String> {
        match value {
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "full" => Ok(Scale::Full),
            "large" => Ok(Scale::Large),
            other => Err(format!(
                "unknown --scale {other:?}; use small|medium|full|large"
            )),
        }
    }
}

/// Renders the `"host"` block every `BENCH_*.json` report embeds: the
/// machine and build-flag context a regression number is meaningless
/// without. The block is a full line (trailing `,\n`) so experiment
/// `to_json` renderers splice it right after their `"experiment"` key.
pub fn host_json() -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "  \"host\": {{\n    \"cores\": {cores},\n    \"arch\": \"{}\",\n    \
         \"os\": \"{}\",\n    \"profile\": \"{profile}\",\n    \
         \"debug_assertions\": {}\n  }},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        cfg!(debug_assertions),
    )
}

/// Renders a markdown-style table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::from("|");
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!(" {cell:<width$} |"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_accepts_known_and_rejects_unknown() {
        assert_eq!(Scale::parse("small"), Ok(Scale::Small));
        assert_eq!(Scale::parse("medium"), Ok(Scale::Medium));
        assert_eq!(Scale::parse("full"), Ok(Scale::Full));
        assert_eq!(Scale::parse("large"), Ok(Scale::Large));
        for bad in ["smoke", "mediun", "MEDIUM", "", "LARGE", "huge"] {
            let err = Scale::parse(bad).unwrap_err();
            assert!(err.contains("unknown --scale"), "{err}");
            assert!(err.contains("small|medium|full|large"), "{err}");
        }
    }

    #[test]
    fn host_json_names_cores_and_build_flags() {
        let host = host_json();
        assert!(host.starts_with("  \"host\": {"));
        assert!(host.ends_with("},\n"));
        for key in [
            "\"cores\"",
            "\"arch\"",
            "\"os\"",
            "\"profile\"",
            "\"debug_assertions\"",
        ] {
            assert!(host.contains(key), "missing {key} in {host}");
        }
    }

    #[test]
    fn population_matches_by_scale_helper() {
        assert_eq!(Scale::Small.population(), (30, 7, 120));
        assert_eq!(Scale::Medium.population(), (80, 10, 90));
        assert_eq!(Scale::Full.population(), (200, 14, 60));
        assert_eq!(Scale::Large.population(), (10_000, 8, 1_200));
        assert_eq!(data::by_scale(Scale::Medium, 1, 2, 3, 4), 2);
        assert_eq!(data::by_scale(Scale::Large, 1, 2, 3, 4), 4);
    }
}
