//! E7 — virtual-sensor orchestration strategies.
//!
//! Paper anchor (§2): "self-organize a group of mobile devices to
//! orchestrate the retrieval of datasets according to different strategies
//! (e.g., round robin, energy-aware)."

use crate::data::dataset;
use apisense::device::{Battery, Device, DeviceId};
use apisense::hive::TaskId;
use apisense::virtual_sensor::{dispersion, SelectionStrategy, VirtualSensor};
use mobility::{Timestamp, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One row of the E7 table.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Strategy name.
    pub strategy: String,
    /// Devices that ran out of battery during the experiment.
    pub dead_devices: usize,
    /// Minimum battery level across the fleet at the end.
    pub min_battery: f64,
    /// Mean battery level at the end.
    pub mean_battery: f64,
    /// Total readings returned.
    pub readings: usize,
    /// Mean spatial dispersion of each query's readings, metres.
    pub mean_dispersion_m: f64,
}

/// The E7 result table.
#[derive(Debug, Clone)]
pub struct E7Table {
    /// Rows per strategy.
    pub rows: Vec<E7Row>,
    /// Fleet size.
    pub fleet: usize,
    /// Number of queries issued.
    pub queries: usize,
}

impl fmt::Display for E7Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E7 — virtual sensor strategies ({} devices, {} queries)",
            self.fleet, self.queries
        )?;
        writeln!(
            f,
            "{:<16} {:>6} {:>10} {:>11} {:>10} {:>12}",
            "strategy", "dead", "min batt", "mean batt", "readings", "dispersion"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>6} {:>9.2}% {:>10.2}% {:>10} {:>10.0} m",
                r.strategy,
                r.dead_devices,
                r.min_battery * 100.0,
                r.mean_battery * 100.0,
                r.readings,
                r.mean_dispersion_m
            )?;
        }
        Ok(())
    }
}

/// Builds a fleet of `n` devices over `days` of synthetic mobility, with
/// heterogeneous starting charge (shared with E14, which compares script
/// execution tiers over the same fleet shape).
pub fn build_fleet(n: usize, days: usize, seed: u64) -> Vec<Device> {
    let data = dataset(n, days, 120, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
    data.dataset
        .users()
        .into_iter()
        .enumerate()
        .map(|(i, user)| {
            let trajectory = Trajectory::new(user, data.dataset.records_of(user));
            // Heterogeneous starting charge, as in a real fleet.
            let level = rng.gen_range(0.25..1.0);
            Device::new(DeviceId(i as u64), user, trajectory)
                .with_battery(Battery::at_level(level))
        })
        .collect()
}

/// Runs one strategy over a fresh fleet.
pub fn run_strategy(
    strategy: SelectionStrategy,
    fleet_size: usize,
    queries: usize,
    per_query: usize,
    seed: u64,
) -> E7Row {
    let mut fleet = build_fleet(fleet_size, 2, seed);
    let mut vs = VirtualSensor::new(strategy, per_query);
    let start = Timestamp::from_day_time(0, 8, 0, 0);
    let mut readings_total = 0;
    let mut dispersion_sum = 0.0;
    let mut dispersion_count = 0;
    for q in 0..queries {
        let now = start + (q as i64) * 60;
        let readings = vs.query(&mut fleet, TaskId(1), now);
        readings_total += readings.len();
        let d = dispersion(&readings).get();
        if readings.len() >= 2 {
            dispersion_sum += d;
            dispersion_count += 1;
        }
        // Idle drain between queries: one minute of uptime for everyone.
        for device in fleet.iter_mut() {
            let charging = now.is_night();
            device.battery_mut().advance(60, charging);
        }
    }
    let levels: Vec<f64> = fleet.iter().map(|d| d.battery().level()).collect();
    E7Row {
        strategy: strategy.to_string(),
        dead_devices: levels.iter().filter(|l| **l <= 0.0).count(),
        min_battery: levels.iter().cloned().fold(f64::INFINITY, f64::min),
        mean_battery: levels.iter().sum::<f64>() / levels.len().max(1) as f64,
        readings: readings_total,
        mean_dispersion_m: if dispersion_count == 0 {
            0.0
        } else {
            dispersion_sum / dispersion_count as f64
        },
    }
}

/// Runs E7 across all strategies.
pub fn run(scale: crate::Scale) -> E7Table {
    let (fleet, queries) =
        crate::data::by_scale(scale, (40, 480), (70, 1_440), (100, 2_880), (150, 2_880));
    let per_query = 5;
    let rows = [
        SelectionStrategy::RoundRobin,
        SelectionStrategy::EnergyAware,
        SelectionStrategy::CoverageAware,
        SelectionStrategy::Broadcast,
    ]
    .into_iter()
    .map(|s| run_strategy(s, fleet, queries, per_query, 0xE7))
    .collect();
    E7Table {
        rows,
        fleet,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_energy_aware_protects_the_weak_and_broadcast_burns() {
        let table = run(crate::Scale::Small);
        let round_robin = &table.rows[0];
        let energy = &table.rows[1];
        let coverage = &table.rows[2];
        let broadcast = &table.rows[3];
        // Broadcast drains the fleet hardest.
        assert!(broadcast.mean_battery <= round_robin.mean_battery);
        assert!(broadcast.readings > round_robin.readings);
        // Energy-aware never drains the weakest device below round-robin's
        // weakest (it samples the fullest devices instead).
        assert!(
            energy.min_battery >= round_robin.min_battery - 1e-9,
            "energy {} vs rr {}",
            energy.min_battery,
            round_robin.min_battery
        );
        // Coverage-aware spreads its readings wider than energy-aware.
        assert!(
            coverage.mean_dispersion_m >= energy.mean_dispersion_m,
            "coverage {} vs energy {}",
            coverage.mean_dispersion_m,
            energy.mean_dispersion_m
        );
    }
}
