//! E2 — the speed-constancy invariant of speed smoothing.
//!
//! Paper anchor (§3): the algorithm "smoothes speed along a trajectory
//! (typically one day of data) to guarantee that speed is constant […]
//! prevents to find out places where he stopped during his day."

use crate::data::standard_dataset;
use crate::Scale;
use mobility::staypoint::{detect, StayPointConfig};
use privapi::prelude::*;
use std::fmt;

/// One row of the E2 table (per smoothing setting).
///
/// `max_dwell_min` applies the Li et al. stay detector *blindly*: on
/// constant-speed data it reports "pseudo-stays" (slow uniform motion inside
/// the detector radius) that are spread along the path rather than located
/// at real stops — the informative privacy measure is E1's concentration-
/// gated attack. The column is kept to show the detector's raw output.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Setting description.
    pub setting: String,
    /// Mean speed coefficient-of-variation across trajectories.
    pub mean_speed_cv: f64,
    /// Maximum dwell reported by the (ungated) stay detector, minutes.
    pub max_dwell_min: f64,
    /// Trajectories published as empty (fully-stationary days).
    pub withheld_days: usize,
    /// Mean points per published trajectory.
    pub mean_points: f64,
}

/// The E2 result table.
#[derive(Debug, Clone)]
pub struct E2Table {
    /// Raw-data baseline row.
    pub raw: E2Row,
    /// Rows per epsilon.
    pub rows: Vec<E2Row>,
}

impl fmt::Display for E2Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E2 — speed constancy and dwell erasure")?;
        writeln!(
            f,
            "{:<36} {:>9} {:>14} {:>10} {:>11}",
            "setting", "speed cv", "max dwell", "withheld", "pts/traj"
        )?;
        for r in std::iter::once(&self.raw).chain(self.rows.iter()) {
            writeln!(
                f,
                "{:<36} {:>9.3} {:>10.0} min {:>10} {:>11.1}",
                r.setting, r.mean_speed_cv, r.max_dwell_min, r.withheld_days, r.mean_points
            )?;
        }
        Ok(())
    }
}

fn analyze(setting: &str, dataset: &mobility::Dataset) -> E2Row {
    let mut cvs = Vec::new();
    let mut max_dwell_s: i64 = 0;
    let mut withheld = 0;
    let mut total_points = 0usize;
    let mut published = 0usize;
    for t in dataset.trajectories() {
        if t.is_empty() {
            withheld += 1;
            continue;
        }
        published += 1;
        total_points += t.len();
        if let Some(cv) = t.speed_cv() {
            cvs.push(cv);
        }
        for stay in detect(t, &StayPointConfig::default()) {
            max_dwell_s = max_dwell_s.max(stay.duration_s());
        }
    }
    E2Row {
        setting: setting.to_string(),
        mean_speed_cv: if cvs.is_empty() {
            0.0
        } else {
            cvs.iter().sum::<f64>() / cvs.len() as f64
        },
        max_dwell_min: max_dwell_s as f64 / 60.0,
        withheld_days: withheld,
        mean_points: if published == 0 {
            0.0
        } else {
            total_points as f64 / published as f64
        },
    }
}

/// Runs E2.
pub fn run(scale: Scale) -> E2Table {
    let data = standard_dataset(scale);
    let raw = analyze("raw data", &data.dataset);
    let rows = [50.0, 100.0, 200.0, 500.0]
        .into_iter()
        .map(|eps| {
            let strategy = SpeedSmoothing::new(geo::Meters::new(eps)).expect("static");
            let protected = strategy.anonymize(&data.dataset, 0xE2);
            analyze(&strategy.info().to_string(), &protected)
        })
        .collect();
    E2Table { raw, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_smoothing_flattens_speed() {
        let table = run(Scale::Small);
        // Raw commuter data has highly variable speed and half-day dwells.
        assert!(
            table.raw.mean_speed_cv > 1.0,
            "raw cv {}",
            table.raw.mean_speed_cv
        );
        assert!(table.raw.max_dwell_min > 300.0);
        for row in &table.rows {
            // The paper's guarantee: speed is constant.
            assert!(
                row.mean_speed_cv < 0.25,
                "{}: cv {}",
                row.setting,
                row.mean_speed_cv
            );
        }
        // Larger epsilon publishes fewer points.
        assert!(table.rows[0].mean_points > table.rows[3].mean_points);
        // Stationary days are withheld entirely rather than pinned.
        assert!(
            table.rows.iter().any(|r| r.withheld_days > 0),
            "some weekend days should be withheld"
        );
        // And the *informative* dwell measure: the concentration-gated
        // attack of E1 extracts (nearly) nothing — asserted there.
    }
}
