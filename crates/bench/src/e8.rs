//! E8 — the device-side privacy layer.
//!
//! Paper anchor (§2): "a first layer is deployed on the mobile device and
//! implements several algorithms to filter out and blur sensitive
//! information (e.g., address book, location) depending on user
//! preferences."

use crate::data::dataset;
use apisense::device::{Device, DeviceId};
use apisense::hive::TaskId;
use apisense::privacy::{ExclusionZone, PrivacyPreferences, TimeWindow};
use apisense::script::Script;
use mobility::poi::PoiKind;
use mobility::{Dataset, Timestamp, Trajectory};
use privapi::attack::PoiAttack;
use std::fmt;

/// One row of the E8 table.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Preference profile description.
    pub profile: String,
    /// Records produced by scripts.
    pub produced: u64,
    /// Records actually published after filtering.
    pub published: u64,
    /// Suppression rate.
    pub suppression: f64,
    /// POI recall of the attack on the published device data.
    pub residual_recall: f64,
}

/// The E8 result table.
#[derive(Debug, Clone)]
pub struct E8Table {
    /// Rows per profile.
    pub rows: Vec<E8Row>,
}

impl fmt::Display for E8Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E8 — device-side privacy filters")?;
        writeln!(
            f,
            "{:<42} {:>9} {:>10} {:>11} {:>12}",
            "preference profile", "produced", "published", "suppressed", "POI recall"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<42} {:>9} {:>10} {:>10.1}% {:>11.1}%",
                r.profile,
                r.produced,
                r.published,
                r.suppression * 100.0,
                r.residual_recall * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs E8: a population of devices replays its mobility under different
/// preference profiles; the published stream is attacked.
pub fn run(scale: crate::Scale) -> E8Table {
    let (users, days) = crate::data::by_scale(scale, (8, 3), (15, 5), (25, 7), (30, 8));
    let data = dataset(users, days, 60, 0xE8);
    let script = Script::compile(
        r#"let fix = sensor.gps(); if (fix != null) { emit({ "lat": fix.lat, "lon": fix.lon }); }"#,
    )
    .expect("script compiles");

    // Build per-user profiles keyed on their real home (the realistic use
    // of an exclusion zone).
    let homes: Vec<(mobility::UserId, geo::GeoPoint)> = data
        .dataset
        .users()
        .into_iter()
        .filter_map(|u| {
            data.truth
                .pois_of(u)
                .iter()
                .find(|p| p.kind == PoiKind::Home)
                .map(|p| (u, p.site))
        })
        .collect();

    /// A named builder of per-user preferences from the user's home site.
    type PreferenceProfile = (String, Box<dyn Fn(geo::GeoPoint) -> PrivacyPreferences>);
    let profiles: Vec<PreferenceProfile> = vec![
        (
            "share everything".to_string(),
            Box::new(|_| PrivacyPreferences::default()),
        ),
        (
            "home exclusion 250 m".to_string(),
            Box::new(|home| {
                PrivacyPreferences::default()
                    .with_exclusion_zone(ExclusionZone::new(home, geo::Meters::new(250.0)))
            }),
        ),
        (
            "blur sigma 50 m".to_string(),
            Box::new(|_| PrivacyPreferences::default().with_blur(geo::Meters::new(50.0))),
        ),
        (
            "blur sigma 100 m".to_string(),
            Box::new(|_| PrivacyPreferences::default().with_blur(geo::Meters::new(100.0))),
        ),
        (
            "daytime only + home exclusion".to_string(),
            Box::new(|home| {
                PrivacyPreferences::default()
                    .with_time_window(TimeWindow::new(7, 21))
                    .with_exclusion_zone(ExclusionZone::new(home, geo::Meters::new(250.0)))
            }),
        ),
    ];

    let attack = PoiAttack::default();
    let mut rows = Vec::new();
    for (label, make_prefs) in &profiles {
        let mut produced = 0;
        let mut published_records = Vec::new();
        for (i, (user, home)) in homes.iter().enumerate() {
            let trajectory = Trajectory::new(*user, data.dataset.records_of(*user));
            let mut device = Device::new(DeviceId(i as u64), *user, trajectory)
                .with_preferences(make_prefs(*home));
            let start = Timestamp::from_day_time(0, 0, 0, 0);
            device.install(TaskId(1), script.clone(), 300, 0.0, start);
            let end_minute = (days * 24 * 60) as i64;
            let mut minute = 0;
            while minute < end_minute {
                device.tick(start + minute * 60);
                minute += 5;
            }
            produced += device.records_produced();
            published_records.extend(
                device
                    .drain_outbox()
                    .iter()
                    .filter_map(|r| r.to_location_record()),
            );
        }
        let published = published_records.len() as u64;
        let device_dataset = Dataset::from_records(published_records);
        let report = attack.evaluate(&device_dataset, &data.truth);
        rows.push(E8Row {
            profile: label.clone(),
            produced,
            published,
            suppression: if produced == 0 {
                0.0
            } else {
                1.0 - published as f64 / produced as f64
            },
            residual_recall: report.recall,
        });
    }
    E8Table { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_filters_trade_data_for_privacy() {
        let table = run(crate::Scale::Small);
        let open = &table.rows[0];
        let home_zone = &table.rows[1];
        assert_eq!(open.suppression, 0.0);
        assert!(open.residual_recall > 0.4);
        // Home exclusion suppresses a large share of records (the night is
        // spent at home) and hides the home POI.
        assert!(
            home_zone.suppression > 0.3,
            "suppression {}",
            home_zone.suppression
        );
        assert!(
            home_zone.residual_recall < open.residual_recall,
            "home zone {} vs open {}",
            home_zone.residual_recall,
            open.residual_recall
        );
    }
}
