//! E10 — attack-path scaling: per-user sharded extraction, spatial-indexed
//! matching, and the single-attack publish path.
//!
//! This experiment is the measured counterpart of the attack-layer
//! restructuring in `privapi::attack`:
//!
//! * `extract_serial` vs `extract` (the rayon per-user fan-out) — parity is
//!   asserted before timing, so the speedup is never bought with drift;
//! * `match_extracted_scan` (pairwise O(R·E)) vs `match_extracted` (probing
//!   a pre-built `ReferenceIndex`, the shape the evaluation engine uses
//!   across all candidates) — reports asserted bit-identical;
//! * `PrivApi::publish` end to end, with the extraction counter asserting
//!   the single-original-extraction invariant (`pool size + 1` full
//!   extractions per publish).
//!
//! The `bench_summary` binary drives [`run`] and emits the numbers as
//! `BENCH_e10.json`, so every CI run leaves a machine-readable data point
//! of the attack-path perf trajectory.

use crate::Scale;
use privapi::prelude::*;
use std::fmt;
use std::time::Instant;

/// Workload shape for one E10 run.
#[derive(Debug, Clone)]
pub struct E10Config {
    /// Label recorded in the report (`smoke`, `small`, `medium`, `full`).
    pub label: String,
    /// Synthetic population size.
    pub users: usize,
    /// Days of data per user.
    pub days: usize,
    /// Sampling interval, seconds.
    pub interval_s: i64,
    /// Timing repetitions (best-of); 1 in smoke mode.
    pub reps: usize,
}

impl E10Config {
    /// Tiny CI smoke shape: seconds end to end, still exercising every
    /// asserted invariant.
    pub fn smoke() -> Self {
        Self {
            label: "smoke".into(),
            users: 6,
            days: 2,
            interval_s: 300,
            reps: 1,
        }
    }

    /// The canonical population for `scale`. `Large` is bounded below the
    /// streaming population: this experiment re-runs full-dataset
    /// extractions `reps` times, so the O(active-users) claim itself is
    /// measured by E11 at the full `Scale::Large` population instead.
    pub fn from_scale(scale: Scale) -> Self {
        let (users, days, interval_s) = crate::data::by_scale(
            scale,
            scale.population(),
            scale.population(),
            scale.population(),
            (1_000, 8, 1_200),
        );
        Self {
            label: format!("{scale:?}").to_lowercase(),
            users,
            days,
            interval_s,
            reps: 3,
        }
    }
}

/// Measured attack-path numbers plus the invariants they were taken under.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// Workload label.
    pub label: String,
    /// Worker threads available to the parallel extract.
    pub threads: usize,
    /// Population size.
    pub users: usize,
    /// Records in the generated dataset.
    pub records: usize,
    /// Sequential whole-dataset extraction, milliseconds (best of reps).
    pub extract_serial_ms: f64,
    /// Parallel per-user-shard extraction, milliseconds (best of reps).
    pub extract_parallel_ms: f64,
    /// Pairwise scan matching of one candidate, milliseconds.
    pub match_scan_ms: f64,
    /// Indexed matching against a pre-built `ReferenceIndex`, milliseconds.
    pub match_indexed_ms: f64,
    /// One `PrivApi::publish` end to end, milliseconds.
    pub publish_ms: f64,
    /// Candidates in the publish pool.
    pub pool_size: usize,
    /// Full-dataset extractions one publish performed (must be pool + 1).
    pub extractions_per_publish: usize,
}

impl E10Report {
    /// Parallel-extract speedup over the serial reference.
    pub fn extract_speedup(&self) -> f64 {
        self.extract_serial_ms / self.extract_parallel_ms.max(1e-9)
    }

    /// Indexed-matching speedup over the pairwise scan.
    pub fn match_speedup(&self) -> f64 {
        self.match_scan_ms / self.match_indexed_ms.max(1e-9)
    }

    /// Renders the report as a JSON object (hand-rolled: the workspace has
    /// no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"e10_attack_pipeline\",\n{}  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"users\": {},\n  \"records\": {},\n  \
             \"extract_serial_ms\": {:.3},\n  \"extract_parallel_ms\": {:.3},\n  \
             \"extract_speedup\": {:.3},\n  \"match_scan_ms\": {:.4},\n  \
             \"match_indexed_ms\": {:.4},\n  \"match_speedup\": {:.3},\n  \
             \"publish_ms\": {:.3},\n  \"pool_size\": {},\n  \
             \"extractions_per_publish\": {}\n}}\n",
            crate::host_json(),
            self.label,
            self.threads,
            self.users,
            self.records,
            self.extract_serial_ms,
            self.extract_parallel_ms,
            self.extract_speedup(),
            self.match_scan_ms,
            self.match_indexed_ms,
            self.match_speedup(),
            self.publish_ms,
            self.pool_size,
            self.extractions_per_publish,
        )
    }
}

impl fmt::Display for E10Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E10 attack pipeline ({}, {} users, {} records, {} threads)",
            self.label, self.users, self.records, self.threads
        )?;
        let widths = [28, 12, 12, 9];
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "path".into(),
                    "baseline ms".into(),
                    "new ms".into(),
                    "speedup".into()
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "extract (serial → shards)".into(),
                    format!("{:.3}", self.extract_serial_ms),
                    format!("{:.3}", self.extract_parallel_ms),
                    format!("{:.2}x", self.extract_speedup()),
                ],
                &widths
            )
        )?;
        writeln!(
            f,
            "{}",
            crate::row(
                &[
                    "match (scan → indexed)".into(),
                    format!("{:.4}", self.match_scan_ms),
                    format!("{:.4}", self.match_indexed_ms),
                    format!("{:.2}x", self.match_speedup()),
                ],
                &widths
            )
        )?;
        write!(
            f,
            "publish: {:.3} ms end-to-end, {} extractions for a {}-candidate pool",
            self.publish_ms, self.extractions_per_publish, self.pool_size
        )
    }
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Best-of-`reps` per-call time of a sub-millisecond `f`, amortized over
/// enough inner iterations for the clock to resolve it.
fn time_best_amortized_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // Calibrate the inner loop to ~2 ms of work.
    let start = Instant::now();
    f();
    let once_s = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((2e-3 / once_s).ceil() as usize).clamp(1, 20_000);
    time_best_ms(reps, || {
        for _ in 0..iters {
            f();
        }
    }) / iters as f64
}

/// Runs E10: measures the attack hot paths and asserts every parity and
/// accounting invariant the restructuring claims.
pub fn run(config: &E10Config) -> E10Report {
    let data = crate::data::dataset(config.users, config.days, config.interval_s, 0xE10);
    let attack = PoiAttack::default();

    // Parity before timing: the fan-out must be byte-identical to the
    // sequential reference path.
    let serial = attack.extract_serial(&data.dataset);
    let reference = attack.extract(&data.dataset);
    assert_eq!(serial, reference, "parallel extract drifted from serial");

    let extract_serial_ms = time_best_ms(config.reps, || {
        std::hint::black_box(attack.extract_serial(&data.dataset));
    });
    let extract_parallel_ms = time_best_ms(config.reps, || {
        std::hint::black_box(attack.extract(&data.dataset));
    });

    // Matching: one protected candidate against the original's reference,
    // scan vs pre-built index (the engine amortizes the build across the
    // whole pool, so the build is outside the indexed timing).
    let protected = GaussianPerturbation::new(geo::Meters::new(120.0))
        .expect("valid sigma")
        .anonymize(&data.dataset, 0xE10);
    let extracted = attack.extract(&protected);
    let index = attack.index_reference(&reference);
    assert_eq!(
        attack.match_extracted(&extracted, &index),
        attack.match_extracted_scan(&extracted, &reference),
        "indexed matcher drifted from scan matcher"
    );
    let match_scan_ms = time_best_amortized_ms(config.reps, || {
        std::hint::black_box(attack.match_extracted_scan(&extracted, &reference));
    });
    let match_indexed_ms = time_best_amortized_ms(config.reps, || {
        std::hint::black_box(attack.match_extracted(&extracted, &index));
    });

    // End-to-end publish, with the single-original-extraction invariant.
    let privapi = PrivApi::default();
    let before = privapi.attack().extractions();
    let start = Instant::now();
    let published = privapi.publish(&data.dataset).expect("publish succeeds");
    let publish_ms = start.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(&published);
    let extractions_per_publish = privapi.attack().extractions() - before;
    assert_eq!(
        extractions_per_publish,
        privapi.pool().len() + 1,
        "publish must extract the original exactly once"
    );

    E10Report {
        label: config.label.clone(),
        threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        users: config.users,
        records: data.dataset.record_count(),
        extract_serial_ms,
        extract_parallel_ms,
        match_scan_ms,
        match_indexed_ms,
        publish_ms,
        pool_size: privapi.pool().len(),
        extractions_per_publish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_invariants_and_renders() {
        let report = run(&E10Config::smoke());
        assert_eq!(report.extractions_per_publish, report.pool_size + 1);
        assert!(report.extract_serial_ms > 0.0);
        assert!(report.match_scan_ms > 0.0);
        let json = report.to_json();
        for key in [
            "\"experiment\": \"e10_attack_pipeline\"",
            "\"extract_serial_ms\"",
            "\"match_indexed_ms\"",
            "\"extractions_per_publish\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = report.to_string();
        assert!(text.contains("extract (serial"));
        assert!(text.contains("publish:"));
    }

    #[test]
    fn config_constructors_cover_scales() {
        assert_eq!(E10Config::smoke().users, 6);
        let medium = E10Config::from_scale(Scale::Medium);
        assert_eq!(medium.label, "medium");
        assert_eq!(medium.users, 80);
    }
}
