//! F1 — the platform architecture of the paper's Figure 1, reproduced as a
//! running topology.

use crate::e4;
use apisense::deploy::{run_campaign, CampaignConfig};
use std::fmt;

/// The instantiated architecture description.
#[derive(Debug, Clone)]
pub struct F1Figure {
    /// Number of devices in the demonstration topology.
    pub devices: usize,
    /// Records collected during the demonstration run.
    pub records: usize,
    /// Devices that acknowledged deployment.
    pub acked: usize,
}

impl fmt::Display for F1Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "F1 — architecture of the data collection platform (Figure 1)"
        )?;
        writeln!(f)?;
        writeln!(f, "   Honeycomb (experimenter)")?;
        writeln!(f, "       │  1. upload task script          ▲")?;
        writeln!(
            f,
            "       ▼                                 │ 4. forward dataset"
        )?;
        writeln!(f, "     Hive (community management, task publishing)")?;
        writeln!(f, "       │  2. offload script              ▲")?;
        writeln!(
            f,
            "       ▼                                 │ 3. stream records"
        )?;
        writeln!(
            f,
            "     {} mobile devices (scripts + device-side privacy layer)",
            self.devices
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "demonstration run: {}/{} devices deployed, {} records collected",
            self.acked, self.devices, self.records
        )
    }
}

/// Runs the demonstration topology.
pub fn run(scale: crate::Scale) -> F1Figure {
    let devices = crate::data::by_scale(scale, 10, 25, 50, 75);
    let report = run_campaign(
        &e4::task(),
        &CampaignConfig {
            devices,
            duration_s: 3_600,
            seed: 0xF1,
            ..CampaignConfig::default()
        },
    );
    F1Figure {
        devices,
        records: report.records_received,
        acked: report.acked_devices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_topology_runs() {
        let fig = run(crate::Scale::Small);
        assert_eq!(fig.devices, 10);
        assert!(fig.acked >= 9);
        assert!(fig.records > 0);
        let text = fig.to_string();
        assert!(text.contains("Honeycomb"));
        assert!(text.contains("Hive"));
    }
}
