//! Shared dataset construction for the experiment suite.

use crate::Scale;
use mobility::gen::{CityModel, GeneratedData, PopulationConfig};

/// Picks the per-experiment parameter set for `scale` — the one place the
/// `Small`/`Medium`/`Full`/`Large` fan-out lives, so adding a scale (or an
/// experiment) never grows another multi-armed `match`.
pub fn by_scale<T>(scale: Scale, small: T, medium: T, full: T, large: T) -> T {
    match scale {
        Scale::Small => small,
        Scale::Medium => medium,
        Scale::Full => full,
        Scale::Large => large,
    }
}

/// The canonical synthetic dataset of the experiment suite (deterministic).
pub fn standard_dataset(scale: Scale) -> GeneratedData {
    let (users, days, interval) = scale.population();
    dataset(users, days, interval, 0x2014)
}

/// A dataset with explicit parameters.
pub fn dataset(users: usize, days: usize, interval_s: i64, seed: u64) -> GeneratedData {
    CityModel::builder()
        .seed(seed)
        .build()
        .generate_with_truth(&PopulationConfig {
            users,
            days,
            sampling_interval_s: interval_s,
            gps_noise_m: 5.0,
            leisure_probability: 0.35,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_dataset_is_deterministic() {
        let a = standard_dataset(Scale::Small);
        let b = standard_dataset(Scale::Small);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.dataset.user_count(), 30);
    }
}
