//! Regenerates every table/figure of the paper's evaluation.
//!
//! ```bash
//! cargo run -p bench --bin experiments --release              # all, small scale
//! cargo run -p bench --bin experiments --release -- e1 e3     # selected ids
//! cargo run -p bench --bin experiments --release -- --medium  # regression scale
//! cargo run -p bench --bin experiments --release -- --full    # paper scale
//! ```
//!
//! The attack-path experiment E10 has its own driver (`bench_summary`),
//! which also emits `BENCH_e10.json`.

use bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else if args.iter().any(|a| a == "--medium") {
        Scale::Medium
    } else {
        Scale::Small
    };
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!(
        "== crowdsense experiment suite (scale: {scale:?}) ==\n\
         ids: e1 e2 e3 e4 e5 e6 e7 e8 f1; pass --medium or --full to scale up\n"
    );

    if want("f1") {
        println!("{}\n", bench::f1::run(scale));
    }
    if want("e1") {
        println!("{}", bench::e1::run(scale));
        println!(
            "paper check: geo-I (practical ε) must leak ≥ 60 % of POIs — \
             see the epsilon=0.0069/m row.\n"
        );
    }
    if want("e2") {
        println!("{}\n", bench::e2::run(scale));
    }
    if want("e3") {
        println!("{}\n", bench::e3::run(scale));
    }
    if want("e4") {
        println!("{}\n", bench::e4::run(scale));
    }
    if want("e5") {
        let table = bench::e5::run(scale);
        println!("{table}");
        println!("full candidate evaluations:");
        for report in &table.reports {
            println!("{report}");
        }
    }
    if want("e6") {
        println!("{}\n", bench::e6::run(scale));
    }
    if want("e7") {
        println!("{}\n", bench::e7::run(scale));
    }
    if want("e8") {
        println!("{}\n", bench::e8::run(scale));
    }
}
