//! Regenerates every table/figure of the paper's evaluation.
//!
//! ```bash
//! cargo run -p bench --bin experiments --release              # all, small scale
//! cargo run -p bench --bin experiments --release -- e1 e3     # selected ids
//! cargo run -p bench --bin experiments --release -- --scale medium
//! cargo run -p bench --bin experiments --release -- --full    # paper scale
//! ```
//!
//! Unknown flags and unknown `--scale` values are rejected with an error —
//! a typo must never silently fall back to the default scale.
//!
//! The attack-path experiment E10 and the streaming-publication experiment
//! E11 have their own driver (`bench_summary`), which also emits
//! `BENCH_e10.json` / `BENCH_e11.json`.

use bench::Scale;

/// The experiment ids this driver knows how to run.
const KNOWN_IDS: [&str; 9] = ["f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scale requires a value: small|medium|full|large");
                    std::process::exit(2);
                };
                scale = Scale::parse(value).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--small" => scale = Scale::Small,
            "--medium" => scale = Scale::Medium,
            "--full" => scale = Scale::Full,
            "--large" => scale = Scale::Large,
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag:?}; use --scale small|medium|full|large \
                     (or the shorthands --small/--medium/--full/--large)"
                );
                std::process::exit(2);
            }
            id => {
                let id = id.to_lowercase();
                // An unknown id (or a scale typed without --scale) would
                // match nothing and the run would silently do no work.
                if !KNOWN_IDS.contains(&id.as_str()) {
                    eprintln!(
                        "unknown experiment id {id:?}; known ids: {}",
                        KNOWN_IDS.join(" ")
                    );
                    std::process::exit(2);
                }
                selected.push(id);
            }
        }
    }
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    println!(
        "== crowdsense experiment suite (scale: {scale:?}) ==\n\
         ids: e1 e2 e3 e4 e5 e6 e7 e8 f1; pass --scale medium|full|large to scale up\n"
    );

    if want("f1") {
        println!("{}\n", bench::f1::run(scale));
    }
    if want("e1") {
        println!("{}", bench::e1::run(scale));
        println!(
            "paper check: geo-I (practical ε) must leak ≥ 60 % of POIs — \
             see the epsilon=0.0069/m row.\n"
        );
    }
    if want("e2") {
        println!("{}\n", bench::e2::run(scale));
    }
    if want("e3") {
        println!("{}\n", bench::e3::run(scale));
    }
    if want("e4") {
        println!("{}\n", bench::e4::run(scale));
    }
    if want("e5") {
        let table = bench::e5::run(scale);
        println!("{table}");
        println!("full candidate evaluations:");
        for report in &table.reports {
            println!("{report}");
        }
    }
    if want("e6") {
        println!("{}\n", bench::e6::run(scale));
    }
    if want("e7") {
        println!("{}\n", bench::e7::run(scale));
    }
    if want("e8") {
        println!("{}\n", bench::e8::run(scale));
    }
}
