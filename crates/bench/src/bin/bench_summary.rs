//! Attack-path, streaming-publication, multi-campaign, reliable-ingestion,
//! script-tier, federated-release and observability perf summary: runs
//! E10–E16 and emits `BENCH_e10.json` + `BENCH_e11.json` +
//! `BENCH_e12.json` + `BENCH_e13.json` + `BENCH_e14.json` +
//! `BENCH_e15.json` + `BENCH_e16.json`.
//!
//! ```bash
//! cargo run -p bench --bin bench_summary --release -- --scale smoke
//! cargo run -p bench --bin bench_summary --release -- --scale medium \
//!     --out BENCH_e10.json --out-e11 BENCH_e11.json --out-e12 BENCH_e12.json \
//!     --out-e13 BENCH_e13.json --out-e14 BENCH_e14.json --out-e15 BENCH_e15.json \
//!     --out-e16 BENCH_e16.json
//! # the 10k-user sparse-participation streaming stress shape
//! cargo run -p bench --bin bench_summary --release -- --scale large
//! # participation sensitivity sweep (overrides E11's daily percentage)
//! cargo run -p bench --bin bench_summary --release -- --scale large --participation 10
//! # record the obs trace across every experiment and export it for
//! # obs_report (spans, counters, histograms, events as JSON lines)
//! cargo run -p bench --bin bench_summary --release -- --scale smoke --trace trace.jsonl
//! ```
//!
//! CI runs the smoke shape on every PR and uploads the JSON files as
//! artifacts, so the perf trajectories of the attack pipeline (serial vs
//! sharded extraction, scan vs indexed matching, publish end to end), of
//! streaming publication (batch re-publish vs incremental day windows)
//! of multi-campaign orchestration (N independent sessions vs one
//! shared-population orchestrator), of reliable device→Hive ingestion
//! under injected faults (delivery-latency percentiles, retry/dup/drop
//! counters, byte-identical chaos windows), of script execution
//! (tree-walking interpreter vs bytecode VM) and of federated release
//! (device-local anonymization with central byte-parity, raw-exposure
//! reduction, config-broadcast overhead) accumulate data points
//! instead of
//! anecdotes. Every run also asserts the pipelines' invariants —
//! extraction parity, matcher parity, the
//! single-original-extraction-per-publish budget, streaming winner
//! parity, per-campaign orchestration parity, chaos byte-identity with
//! quarantine conservation, interpreter/VM record parity, and federated
//! parity with exact stale/poisoned quarantine accounting — and fails
//! loudly if any regresses. Unknown `--scale` values (and unknown flags) are
//! rejected, never silently defaulted.

use bench::e10::{self, E10Config};
use bench::e11::{self, E11Config};
use bench::e12::{self, E12Config};
use bench::e13::{self, E13Config};
use bench::e14::{self, E14Config};
use bench::e15::{self, E15Config};
use bench::e16::{self, E16Config};
use bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Every argument must be a known flag or the value right after one —
    // a stray positional (`bench_summary medium`, missing the `--scale`)
    // must not silently run the default scale.
    let mut expects_value = false;
    for arg in &args {
        if std::mem::take(&mut expects_value) {
            continue;
        }
        match arg.as_str() {
            "--scale" | "--participation" | "--out" | "--out-e11" | "--out-e12"
            | "--out-e13" | "--out-e14" | "--out-e15" | "--out-e16" | "--trace" => {
                expects_value = true
            }
            other => {
                eprintln!(
                    "unexpected argument {other:?}; use --scale, --participation, --out, \
                     --out-e11, --out-e12, --out-e13, --out-e14, --out-e15, --out-e16, --trace"
                );
                std::process::exit(2);
            }
        }
    }
    let value_of = |flag: &str| {
        let position = args.iter().position(|a| a == flag)?;
        match args.get(position + 1) {
            // A trailing flag or a flag followed by another flag has no
            // value — erroring beats silently running the default scale.
            Some(value) if !value.starts_with("--") => Some(value.clone()),
            _ => {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            }
        }
    };
    let scale = value_of("--scale").unwrap_or_else(|| "smoke".into());
    let out_e10 = value_of("--out").unwrap_or_else(|| "BENCH_e10.json".into());
    let out_e11 = value_of("--out-e11").unwrap_or_else(|| "BENCH_e11.json".into());
    let out_e12 = value_of("--out-e12").unwrap_or_else(|| "BENCH_e12.json".into());
    let out_e13 = value_of("--out-e13").unwrap_or_else(|| "BENCH_e13.json".into());
    let out_e14 = value_of("--out-e14").unwrap_or_else(|| "BENCH_e14.json".into());
    let out_e15 = value_of("--out-e15").unwrap_or_else(|| "BENCH_e15.json".into());
    let out_e16 = value_of("--out-e16").unwrap_or_else(|| "BENCH_e16.json".into());
    let trace_path = value_of("--trace");
    #[allow(clippy::type_complexity)]
    let (
        e10_config,
        mut e11_config,
        e12_config,
        e13_config,
        e14_config,
        e15_config,
        e16_config,
    ) = match scale.as_str() {
        "smoke" => (
            E10Config::smoke(),
            E11Config::smoke(),
            E12Config::smoke(),
            E13Config::smoke(),
            E14Config::smoke(),
            E15Config::smoke(),
            E16Config::smoke(),
        ),
        other => match Scale::parse(other) {
            Ok(scale) => (
                E10Config::from_scale(scale),
                E11Config::from_scale(scale),
                E12Config::from_scale(scale),
                E13Config::from_scale(scale),
                E14Config::from_scale(scale),
                E15Config::from_scale(scale),
                E16Config::from_scale(scale),
            ),
            Err(_) => {
                eprintln!("unknown --scale {other:?}; use smoke|small|medium|full|large");
                std::process::exit(2);
            }
        },
    };
    if let Some(pct) = value_of("--participation") {
        // Overrides E11's daily participation (percent of users reporting
        // on any day after the first) for sensitivity sweeps at any scale.
        match pct.parse::<u64>() {
            Ok(pct @ 1..=100) => e11_config.participation_pct = pct,
            _ => {
                eprintln!("--participation must be an integer in 1..=100, got {pct:?}");
                std::process::exit(2);
            }
        }
    }

    if trace_path.is_some() {
        // Record the whole summary run: every experiment's spans, counters,
        // histograms and events accumulate into one exported trace. E16
        // briefly toggles recording for its off-leg and restores it.
        obs::enable();
    }

    let write = |path: &str, json: String| {
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    };

    eprintln!(
        "e10 attack-path summary: scale={}, {} users x {} days @ {} s",
        e10_config.label, e10_config.users, e10_config.days, e10_config.interval_s
    );
    let e10_report = e10::run(&e10_config);
    println!("{e10_report}");
    write(&out_e10, e10_report.to_json());

    eprintln!(
        "e11 streaming summary: scale={}, {} users x {} days @ {} s, {} % participation",
        e11_config.label,
        e11_config.users,
        e11_config.days,
        e11_config.interval_s,
        e11_config.participation_pct
    );
    let e11_report = e11::run(&e11_config);
    println!("{e11_report}");
    write(&out_e11, e11_report.to_json());

    eprintln!(
        "e12 multi-campaign summary: scale={}, {} users x {} days, {} same-config campaigns",
        e12_config.label, e12_config.users, e12_config.days, e12_config.same_config_campaigns
    );
    let e12_report = e12::run(&e12_config);
    println!("{e12_report}");
    write(&out_e12, e12_report.to_json());

    eprintln!(
        "e13 reliable-ingestion summary: scale={}, {} devices x {} days @ {} s",
        e13_config.label, e13_config.users, e13_config.days, e13_config.sampling_interval_s
    );
    let e13_report = e13::run(&e13_config);
    println!("{e13_report}");
    write(&out_e13, e13_report.to_json());

    eprintln!(
        "e14 script-tier summary: scale={}, {} devices, {} queries x {} per query",
        e14_config.label, e14_config.devices, e14_config.queries, e14_config.per_query
    );
    let e14_report = e14::run(&e14_config);
    println!("{e14_report}");
    write(&out_e14, e14_report.to_json());

    eprintln!(
        "e15 federated-release summary: scale={}, {} devices x {} days @ {} s",
        e15_config.label, e15_config.users, e15_config.days, e15_config.sampling_interval_s
    );
    let e15_report = e15::run(&e15_config);
    println!("{e15_report}");
    write(&out_e15, e15_report.to_json());

    eprintln!(
        "e16 observability summary: scale={}, {} users x {} days @ {} s",
        e16_config.label, e16_config.users, e16_config.days, e16_config.interval_s
    );
    let e16_report = e16::run(&e16_config);
    println!("{e16_report}");
    write(&out_e16, e16_report.to_json());

    if let Some(path) = trace_path {
        obs::disable();
        obs::export::write_jsonl(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}
