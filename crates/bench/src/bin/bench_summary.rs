//! Attack-path perf summary: runs E10 and emits `BENCH_e10.json`.
//!
//! ```bash
//! cargo run -p bench --bin bench_summary --release -- --scale smoke
//! cargo run -p bench --bin bench_summary --release -- --scale medium --out BENCH_e10.json
//! ```
//!
//! CI runs the smoke shape on every PR and uploads the JSON as an
//! artifact, so the perf trajectory of the attack pipeline (serial vs
//! sharded extraction, scan vs indexed matching, publish end to end)
//! accumulates data points instead of anecdotes. Every run also asserts
//! the pipeline's invariants — extraction parity, matcher parity, and the
//! single-original-extraction-per-publish budget — and fails loudly if any
//! regresses.

use bench::e10::{run, E10Config};
use bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale = value_of("--scale").unwrap_or_else(|| "smoke".into());
    let out = value_of("--out").unwrap_or_else(|| "BENCH_e10.json".into());
    let config = match scale.as_str() {
        "smoke" => E10Config::smoke(),
        "small" => E10Config::from_scale(Scale::Small),
        "medium" => E10Config::from_scale(Scale::Medium),
        "full" => E10Config::from_scale(Scale::Full),
        other => {
            eprintln!("unknown --scale {other:?}; use smoke|small|medium|full");
            std::process::exit(2);
        }
    };

    eprintln!(
        "e10 attack-path summary: scale={}, {} users x {} days @ {} s",
        config.label, config.users, config.days, config.interval_s
    );
    let report = run(&config);
    println!("{report}");
    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
