//! The message envelope shared by the simulated and real transports.

use bytes::Bytes;
use std::fmt;

/// A network message: an application-defined kind, an optional RPC
/// correlation id, and an opaque payload.
///
/// `request_id == 0` denotes a one-way event; RPC requests and their
/// responses carry the same non-zero id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Application-defined message kind (dispatch tag).
    pub kind: u16,
    /// RPC correlation id; `0` for fire-and-forget events.
    pub request_id: u64,
    /// Serialized payload (see [`crate::wire`]).
    pub payload: Bytes,
}

impl Message {
    /// Creates a fire-and-forget event message.
    pub fn event(kind: u16, payload: Vec<u8>) -> Self {
        Self {
            kind,
            request_id: 0,
            payload: Bytes::from(payload),
        }
    }

    /// Creates an RPC request with a non-zero correlation id.
    ///
    /// # Panics
    ///
    /// Panics if `request_id` is zero (reserved for events).
    pub fn request(kind: u16, request_id: u64, payload: Vec<u8>) -> Self {
        assert!(request_id != 0, "request_id 0 is reserved for events");
        Self {
            kind,
            request_id,
            payload: Bytes::from(payload),
        }
    }

    /// Creates the response to a request, echoing its correlation id.
    pub fn response_to(request: &Message, kind: u16, payload: Vec<u8>) -> Self {
        Self {
            kind,
            request_id: request.request_id,
            payload: Bytes::from(payload),
        }
    }

    /// Whether this message is an RPC request/response (vs. an event).
    pub fn is_rpc(&self) -> bool {
        self.request_id != 0
    }

    /// Total size on the wire, in bytes (header + payload).
    pub fn wire_size(&self) -> usize {
        // 4-byte length prefix + 2-byte kind + 8-byte request id + payload.
        4 + 2 + 8 + self.payload.len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msg(kind={}, rid={}, {}B)",
            self.kind,
            self.request_id,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_has_zero_request_id() {
        let m = Message::event(3, vec![1, 2, 3]);
        assert!(!m.is_rpc());
        assert_eq!(m.kind, 3);
        assert_eq!(m.payload.as_ref(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn request_rejects_zero_id() {
        let _ = Message::request(1, 0, vec![]);
    }

    #[test]
    fn response_echoes_correlation_id() {
        let req = Message::request(1, 42, vec![]);
        let resp = Message::response_to(&req, 2, vec![9]);
        assert_eq!(resp.request_id, 42);
        assert_eq!(resp.kind, 2);
        assert!(resp.is_rpc());
    }

    #[test]
    fn wire_size_accounts_for_header() {
        let m = Message::event(1, vec![0; 100]);
        assert_eq!(m.wire_size(), 114);
    }

    #[test]
    fn display_is_compact() {
        let m = Message::request(7, 9, vec![0; 5]);
        assert_eq!(m.to_string(), "msg(kind=7, rid=9, 5B)");
    }
}
