//! Deterministic discrete-event network simulator.
//!
//! APISENSE is a distributed middleware (Honeycomb endpoints ↔ central Hive ↔
//! mobile devices). To evaluate deployment latency, collection throughput and
//! robustness (experiment E4), this crate provides:
//!
//! * [`Simulation`] — an actor-style discrete-event simulator with a virtual
//!   clock, per-link latency/jitter/loss models and deterministic seeded
//!   randomness;
//! * [`Message`] / [`wire`] — a compact framed binary codec (over [`bytes`])
//!   shared by the simulated and the real transport;
//! * [`fault`] — seeded, deterministic fault injection on top of the link
//!   models: bursty loss, duplication, reordering, scheduled partitions and
//!   device crash/restart windows;
//! * [`reliable`] — sequenced, acknowledged, at-least-once frame delivery
//!   (bounded in-flight window, per-peer retry queues, exponential backoff)
//!   that survives everything [`fault`] injects;
//! * [`tcp`] — a real `std::net` TCP loopback transport speaking the same
//!   frames, proving the stack runs over real sockets;
//! * [`NetworkStats`] — counters for sent/delivered/dropped traffic and the
//!   injected-fault/retry pressure.
//!
//! # Example
//!
//! ```
//! use simnet::{Actor, Context, LinkModel, Message, NodeId, Simulation};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
//!         ctx.send(from, msg); // bounce it back
//!     }
//! }
//!
//! struct Counter(u32);
//! impl Actor for Counter {
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! sim.set_default_link(LinkModel::lan());
//! let echo = sim.add_node("echo", Box::new(Echo));
//! let counter = sim.add_node("counter", Box::new(Counter(0)));
//! sim.post(counter, echo, Message::event(1, Vec::new()));
//! sim.run();
//! assert!(sim.stats().delivered >= 2); // request + echo
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod link;
mod message;
mod sim;
mod stats;

pub mod fault;
pub mod reliable;
pub mod tcp;
pub mod wire;

pub use event::SimTime;
pub use fault::FaultPlan;
pub use link::LinkModel;
pub use message::Message;
pub use sim::{Actor, Context, NodeId, Simulation};
pub use stats::NetworkStats;
pub use wire::{Decode, Encode, WireError};
