//! Virtual time and the simulator's event queue.

use crate::message::Message;
use crate::sim::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::Add;

/// A point in simulated time, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference between two times, in milliseconds.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances the time by a number of milliseconds.
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1_000, self.0 % 1_000)
    }
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver a message to a node.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// Fire a timer on a node.
    Timer {
        /// The node owning the timer.
        node: NodeId,
        /// Application-chosen timer identifier.
        timer_id: u64,
    },
    /// End a scheduled crash window: notify the node it restarted.
    Restart {
        /// The node coming back up.
        node: NodeId,
    },
}

/// A scheduled event. Ordered by `(time, seq)` so that simultaneous events
/// fire in scheduling order — which keeps runs fully deterministic.
#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with a deterministic tie-break.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node as u32),
            timer_id: 0,
        }
    }

    #[test]
    fn sim_time_arithmetic_and_display() {
        let t = SimTime::from_secs(2) + 250;
        assert_eq!(t.as_millis(), 2_250);
        assert_eq!(t.to_string(), "2.250s");
        assert!((t.as_secs_f64() - 2.25).abs() < 1e-12);
        assert_eq!(t.saturating_since(SimTime::from_millis(3_000)), 0);
        assert_eq!(t.saturating_since(SimTime::from_millis(1_000)), 1_250);
    }

    #[test]
    fn queue_pops_earliest_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(300), timer(1));
        q.push(SimTime::from_millis(100), timer(2));
        q.push(SimTime::from_millis(200), timer(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_millis())
            .collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_millis(50), timer(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), timer(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
    }
}
