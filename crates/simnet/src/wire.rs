//! Compact binary wire codec.
//!
//! A small, dependency-free serialization layer over [`bytes`], shared by the
//! simulated transport and the real TCP transport. All integers are
//! big-endian; strings and sequences are length-prefixed with `u32`.
//!
//! # Example
//!
//! ```
//! use simnet::wire::{Decode, Encode};
//! use bytes::{Bytes, BytesMut};
//!
//! let mut buf = BytesMut::new();
//! ("hello".to_string(), 42u32).encode(&mut buf);
//! let mut bytes: Bytes = buf.freeze();
//! let (s, n) = <(String, u32)>::decode(&mut bytes).unwrap();
//! assert_eq!(s, "hello");
//! assert_eq!(n, 42);
//! ```

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete (recoverable with
    /// more bytes when decoding a stream; fatal for a fixed slice).
    Truncated,
    /// The bytes are structurally impossible — no suffix can complete them
    /// into a valid value (e.g. a frame whose length prefix is smaller than
    /// the fixed frame header).
    Corrupt(&'static str),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An enum tag byte was not recognised (context, value).
    InvalidTag(&'static str, u8),
    /// A length prefix exceeded the sanity limit.
    LengthOverflow(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated before value was complete"),
            WireError::Corrupt(what) => write!(f, "corrupt wire data: {what}"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::InvalidTag(ctx, v) => write!(f, "invalid tag {v} for {ctx}"),
            WireError::LengthOverflow(n) => write!(f, "length prefix {n} too large"),
        }
    }
}

impl Error for WireError {}

/// Sanity cap on any single length prefix (16 MiB).
const MAX_LEN: u64 = 16 * 1024 * 1024;

/// Types that can serialize themselves onto a buffer.
pub trait Encode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Convenience: encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }
}

/// Types that can deserialize themselves from a buffer.
pub trait Decode: Sized {
    /// Consumes this value's encoding from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the buffer is truncated or malformed.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Convenience: decodes from a byte slice, requiring full consumption is
    /// *not* enforced (trailing bytes are ignored).
    fn decode_from_slice(slice: &[u8]) -> Result<Self, WireError> {
        let mut bytes = Bytes::copy_from_slice(slice);
        Self::decode(&mut bytes)
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

macro_rules! impl_int {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, $size)?;
                Ok(buf.$get())
            }
        }
    };
}

impl_int!(u8, put_u8, get_u8, 1);
impl_int!(u16, put_u16, get_u16, 2);
impl_int!(u32, put_u32, get_u32, 4);
impl_int!(u64, put_u64, get_u64, 8);
impl_int!(i64, put_i64, get_i64, 8);
impl_int!(f64, put_f64, get_f64, 8);

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::InvalidTag("bool", v)),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        need(buf, len as usize)?;
        let raw = buf.copy_to_bytes(len as usize);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity(len.min(1024) as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            v => Err(WireError::InvalidTag("option", v)),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// Encodes a [`Message`] into a length-prefixed frame:
/// `len:u32 | kind:u16 | request_id:u64 | payload`.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let body_len = 2 + 8 + msg.payload.len();
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32(body_len as u32);
    buf.put_u16(msg.kind);
    buf.put_u64(msg.request_id);
    buf.put_slice(&msg.payload);
    buf.to_vec()
}

/// Decodes one frame from the front of `buf`, if complete.
///
/// Returns `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// Returns [`WireError::LengthOverflow`] for frames above the 16 MiB cap
/// and [`WireError::Corrupt`] for frames whose length prefix is smaller
/// than the fixed `kind + request_id` header — no further bytes can ever
/// complete such a frame, so the connection must be torn down rather than
/// waited on.
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as u64;
    if body_len > MAX_LEN {
        return Err(WireError::LengthOverflow(body_len));
    }
    if body_len < 10 {
        return Err(WireError::Corrupt("frame body shorter than header"));
    }
    if (buf.len() as u64) < 4 + body_len {
        return Ok(None);
    }
    buf.advance(4);
    let mut body = buf.split_to(body_len as usize).freeze();
    let kind = u16::decode(&mut body)?;
    let request_id = u64::decode(&mut body)?;
    Ok(Some(Message {
        kind,
        request_id,
        payload: body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: T) {
        let encoded = value.encode_to_vec();
        let decoded = T::decode_from_slice(&encoded).unwrap();
        assert_eq!(decoded, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(65_535u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(std::f64::consts::PI);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(String::new());
        roundtrip("héllo wörld — ünïcode".to_string());
    }

    #[test]
    fn collection_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some("x".to_string()));
        roundtrip(Option::<u32>::None);
        roundtrip(("pair".to_string(), 7u64));
        roundtrip(("triple".to_string(), 7u64, true));
        roundtrip(vec![Some(1u8), None, Some(3)]);
    }

    #[test]
    fn truncated_buffer_errors() {
        let encoded = 12345u64.encode_to_vec();
        let r = u64::decode_from_slice(&encoded[..4]);
        assert_eq!(r, Err(WireError::Truncated));
    }

    #[test]
    fn undersized_frame_body_is_corrupt_not_truncated() {
        // A length prefix of 3 can never hold the 10-byte frame header:
        // waiting for more bytes would hang forever.
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(&[0, 0, 0]);
        assert!(matches!(decode_frame(&mut buf), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_tag() {
        assert_eq!(
            bool::decode_from_slice(&[7]),
            Err(WireError::InvalidTag("bool", 7))
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert_eq!(
            String::decode(&mut buf.freeze()),
            Err(WireError::InvalidUtf8)
        );
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let r = String::decode(&mut buf.freeze());
        assert!(matches!(r, Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn frame_roundtrip() {
        let msg = Message::request(9, 1234, vec![1, 2, 3, 4]);
        let framed = encode_frame(&msg);
        let mut buf = BytesMut::from(framed.as_slice());
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frame_waits_for_more() {
        let msg = Message::event(1, vec![0; 32]);
        let framed = encode_frame(&msg);
        let mut buf = BytesMut::from(&framed[..10]);
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
        buf.extend_from_slice(&framed[10..]);
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(msg));
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Message::event(1, vec![1]);
        let b = Message::event(2, vec![2, 2]);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(&a));
        buf.extend_from_slice(&encode_frame(&b));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(a));
        assert_eq!(decode_frame(&mut buf).unwrap(), Some(b));
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::Corrupt("frame").to_string().contains("frame"));
        assert!(WireError::InvalidTag("bool", 9)
            .to_string()
            .contains("bool"));
    }
}
