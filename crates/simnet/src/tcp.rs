//! Real TCP loopback transport speaking the same frames as the simulator.
//!
//! The paper's platform is deployed over the Internet; the simulator covers
//! scalability experiments, while this module demonstrates the identical
//! protocol stack over real `std::net` sockets. Servers spawn one thread per
//! connection; clients issue blocking RPC calls with timeouts.

use crate::message::Message;
use crate::wire::{decode_frame, encode_frame};
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler invoked for every inbound message; returning `Some` sends a
/// response frame back on the same connection.
pub type Handler = dyn Fn(Message) -> Option<Message> + Send + Sync + 'static;

/// A framed TCP server.
///
/// # Example
///
/// ```
/// use simnet::tcp::{TcpRpcServer, TcpRpcClient};
/// use simnet::Message;
/// use std::time::Duration;
///
/// let server = TcpRpcServer::bind("127.0.0.1:0", |msg| {
///     Some(Message::response_to(&msg, 100, msg.payload.to_vec()))
/// }).unwrap();
/// let addr = server.local_addr();
///
/// let mut client = TcpRpcClient::connect(addr).unwrap();
/// let reply = client
///     .call(Message::request(1, 7, vec![1, 2, 3]), Duration::from_secs(2))
///     .unwrap();
/// assert_eq!(reply.kind, 100);
/// assert_eq!(reply.payload.as_ref(), &[1, 2, 3]);
/// server.shutdown();
/// ```
pub struct TcpRpcServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpRpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRpcServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl TcpRpcServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, dispatching every inbound message to `handler`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A, F>(addr: A, handler: F) -> io::Result<Self>
    where
        A: std::net::ToSocketAddrs,
        F: Fn(Message) -> Option<Message> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let handler: Arc<Handler> = Arc::new(handler);

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_handler = Arc::clone(&handler);
                        let conn_shutdown = Arc::clone(&accept_shutdown);
                        let handle = std::thread::spawn(move || {
                            let _ = serve_connection(stream, conn_handler, conn_shutdown);
                        });
                        accept_connections.lock().push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(Self {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TcpRpcServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: Arc<Handler>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut buf = BytesMut::with_capacity(4 * 1024);
    let mut scratch = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                buf.extend_from_slice(&scratch[..n]);
                while let Some(msg) = decode_frame(&mut buf)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                {
                    if let Some(response) = handler(msg) {
                        stream.write_all(&encode_frame(&response))?;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A framed TCP client issuing blocking RPC calls.
pub struct TcpRpcClient {
    stream: TcpStream,
    buf: BytesMut,
    next_request_id: AtomicU64,
}

impl std::fmt::Debug for TcpRpcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRpcClient")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl TcpRpcClient {
    /// Connects to a [`TcpRpcServer`].
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: BytesMut::with_capacity(4 * 1024),
            next_request_id: AtomicU64::new(1),
        })
    }

    /// Allocates a fresh non-zero request id.
    pub fn next_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends a one-way message without waiting for a response.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, msg: Message) -> io::Result<()> {
        self.stream.write_all(&encode_frame(&msg))
    }

    /// Sends a request and blocks until its response arrives (matching
    /// `request_id`) or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no matching response arrives in time, and
    /// propagates socket errors. Responses to other request ids received in
    /// the meantime are discarded.
    pub fn call(&mut self, msg: Message, timeout: Duration) -> io::Result<Message> {
        let expected_id = msg.request_id;
        self.stream.write_all(&encode_frame(&msg))?;
        self.stream
            .set_read_timeout(Some(Duration::from_millis(20)))?;
        let deadline = std::time::Instant::now() + timeout;
        let mut scratch = [0u8; 4096];
        loop {
            // Check buffered frames first.
            while let Some(frame) = decode_frame(&mut self.buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                if frame.request_id == expected_id {
                    return Ok(frame);
                }
            }
            if std::time::Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "rpc response timed out",
                ));
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> TcpRpcServer {
        TcpRpcServer::bind("127.0.0.1:0", |msg| {
            Some(Message::response_to(
                &msg,
                msg.kind + 1,
                msg.payload.to_vec(),
            ))
        })
        .expect("bind")
    }

    #[test]
    fn rpc_roundtrip() {
        let server = echo_server();
        let mut client = TcpRpcClient::connect(server.local_addr()).unwrap();
        let id = client.next_request_id();
        let reply = client
            .call(
                Message::request(10, id, b"ping".to_vec()),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.kind, 11);
        assert_eq!(reply.payload.as_ref(), b"ping");
        server.shutdown();
    }

    #[test]
    fn sequential_calls_on_one_connection() {
        let server = echo_server();
        let mut client = TcpRpcClient::connect(server.local_addr()).unwrap();
        for i in 0..20u8 {
            let id = client.next_request_id();
            let reply = client
                .call(Message::request(1, id, vec![i]), Duration::from_secs(2))
                .unwrap();
            assert_eq!(reply.payload.as_ref(), &[i]);
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = echo_server();
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..4u8 {
            handles.push(std::thread::spawn(move || {
                let mut client = TcpRpcClient::connect(addr).unwrap();
                for i in 0..10u8 {
                    let id = client.next_request_id();
                    let reply = client
                        .call(Message::request(1, id, vec![t, i]), Duration::from_secs(2))
                        .unwrap();
                    assert_eq!(reply.payload.as_ref(), &[t, i]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn one_way_messages_are_accepted() {
        let received = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&received);
        let server = TcpRpcServer::bind("127.0.0.1:0", move |_msg| {
            counter.fetch_add(1, Ordering::Relaxed);
            None
        })
        .unwrap();
        let mut client = TcpRpcClient::connect(server.local_addr()).unwrap();
        for _ in 0..5 {
            client.send(Message::event(3, vec![1])).unwrap();
        }
        // Wait for the handler to see all 5.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while received.load(Ordering::Relaxed) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(received.load(Ordering::Relaxed), 5);
        server.shutdown();
    }

    #[test]
    fn call_times_out_without_response() {
        // Server that never responds.
        let server = TcpRpcServer::bind("127.0.0.1:0", |_msg| None).unwrap();
        let mut client = TcpRpcClient::connect(server.local_addr()).unwrap();
        let err = client
            .call(Message::request(1, 1, vec![]), Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        server.shutdown();
    }
}
