//! The actor-style discrete-event simulation driver.

use crate::event::{EventKind, EventQueue, SimTime};
use crate::fault::{FaultPlan, FaultState, FaultVerdict};
use crate::link::LinkModel;
use crate::message::Message;
use crate::stats::NetworkStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Behaviour of a simulated node.
///
/// Actors react to messages and timers through a [`Context`] that lets them
/// send messages and arm timers; they never block. The [`std::any::Any`]
/// supertrait lets test and experiment harnesses downcast actors back to
/// their concrete type after a run (see [`Simulation::actor_as`]).
pub trait Actor: std::any::Any {
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer_id: u64) {
        let _ = (ctx, timer_id);
    }

    /// Called when the node comes back up after a scheduled
    /// [`crate::fault::Crash`] window.
    ///
    /// Deliveries and timers addressed to the node while it was down were
    /// suppressed; this hook is where the actor discards volatile state and
    /// resumes from whatever it persisted (e.g. re-arms its driving timer
    /// and re-offers an outbox).
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }
}

/// Deferred side effects an actor requests during a callback.
#[derive(Debug)]
enum Action {
    Send { to: NodeId, msg: Message },
    Timer { delay_ms: u64, timer_id: u64 },
    Retry,
}

/// Execution context handed to actors during callbacks.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    actions: &'a mut Vec<Action>,
}

impl Context<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback runs on.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` (scheduled when the callback returns).
    pub fn send(&mut self, to: NodeId, msg: Message) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a timer that fires on this node after `delay_ms` milliseconds.
    pub fn set_timer(&mut self, delay_ms: u64, timer_id: u64) {
        self.actions.push(Action::Timer { delay_ms, timer_id });
    }

    /// Records one retransmission in [`NetworkStats::retries`].
    ///
    /// Reliable-delivery endpoints (see [`crate::reliable`]) call this for
    /// every frame they send again, so a run's retry pressure shows up in
    /// the simulation-wide counters.
    pub fn note_retry(&mut self) {
        self.actions.push(Action::Retry);
    }
}

struct NodeSlot {
    name: String,
    actor: Option<Box<dyn Actor>>,
}

/// A deterministic discrete-event network simulation.
///
/// Nodes are [`Actor`]s; links between them follow [`LinkModel`]s. Runs with
/// the same seed, topology and inputs replay identically.
pub struct Simulation {
    clock: SimTime,
    queue: EventQueue,
    nodes: Vec<NodeSlot>,
    links: HashMap<(NodeId, NodeId), LinkModel>,
    default_link: LinkModel,
    rng: StdRng,
    stats: NetworkStats,
    inflight: Vec<Action>,
    fault: Option<FaultState>,
    /// Injected sim-time clock for the obs layer: advanced with the
    /// event-loop clock so components downstream of this simulation
    /// (reliable endpoints, collectors) stamp sim-time events without
    /// threading `now` through every call.
    obs_clock: Arc<obs::SimClock>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            default_link: LinkModel::perfect(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetworkStats::default(),
            inflight: Vec::new(),
            fault: None,
            obs_clock: Arc::new(obs::SimClock::new()),
        }
    }

    /// The sim-time [`obs::SimClock`] this simulation advances; share it
    /// with actors that record sim-domain spans or events.
    pub fn obs_clock(&self) -> Arc<obs::SimClock> {
        Arc::clone(&self.obs_clock)
    }

    /// Registers a node with its behaviour; returns its id.
    pub fn add_node(&mut self, name: &str, actor: Box<dyn Actor>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            name: name.to_string(),
            actor: Some(actor),
        });
        id
    }

    /// Human-readable name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the link model used when no per-pair link is configured.
    pub fn set_default_link(&mut self, link: LinkModel) {
        self.default_link = link;
    }

    /// Sets the link model for the directed pair `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkModel) {
        self.links.insert((from, to), link);
    }

    /// Sets the link model in both directions between two nodes.
    pub fn set_link_bidirectional(&mut self, a: NodeId, b: NodeId, link: LinkModel) {
        self.links.insert((a, b), link);
        self.links.insert((b, a), link);
    }

    fn link_for(&self, from: NodeId, to: NodeId) -> LinkModel {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Installs a [`FaultPlan`] and schedules its restart notifications.
    ///
    /// Must be called before the run starts (restart events are scheduled
    /// relative to the current clock). Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for crash in &plan.crashes {
            self.queue.push(
                SimTime::from_millis(crash.restart_ms),
                EventKind::Restart { node: crash.node },
            );
        }
        self.fault = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(FaultState::plan)
    }

    /// Injects a message from `from` to `to` at the current time (external
    /// stimulus, e.g. a Honeycomb uploading a task).
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.stats.sent += 1;
        self.stats.bytes_sent += msg.wire_size() as u64;
        obs::count("net.sent", 1);
        obs::count("net.bytes_sent", msg.wire_size() as u64);
        obs::observe(
            "net.frame_bytes",
            obs::Buckets::Bytes,
            msg.wire_size() as u64,
        );
        let link = self.link_for(from, to);
        let Some(delay) = link.sample_delay(msg.wire_size(), &mut self.rng) else {
            self.stats.dropped += 1;
            obs::count("net.dropped", 1);
            return;
        };
        let verdict = match self.fault.as_mut() {
            Some(state) => state.judge(from, to, self.clock),
            None => FaultVerdict::Deliver {
                duplicate_after_ms: None,
                extra_delay_ms: 0,
            },
        };
        match verdict {
            FaultVerdict::Drop => {
                self.stats.dropped_by_fault += 1;
                obs::count("net.dropped_by_fault", 1);
            }
            FaultVerdict::Deliver {
                duplicate_after_ms,
                extra_delay_ms,
            } => {
                if extra_delay_ms > 0 {
                    self.stats.reordered += 1;
                    obs::count("net.reordered", 1);
                }
                if let Some(dup_after) = duplicate_after_ms {
                    self.stats.duplicated += 1;
                    obs::count("net.duplicated", 1);
                    self.queue.push(
                        self.clock + delay + dup_after,
                        EventKind::Deliver {
                            from,
                            to,
                            message: msg.clone(),
                        },
                    );
                }
                self.queue.push(
                    self.clock + delay + extra_delay_ms,
                    EventKind::Deliver {
                        from,
                        to,
                        message: msg,
                    },
                );
            }
        }
    }

    /// Arms a timer on `node` after `delay_ms` (external stimulus).
    pub fn post_timer(&mut self, node: NodeId, delay_ms: u64, timer_id: u64) {
        self.queue
            .push(self.clock + delay_ms, EventKind::Timer { node, timer_id });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.clock, "time went backwards");
        self.clock = event.time;
        self.obs_clock.set_ms(self.clock.0);
        match event.kind {
            EventKind::Deliver { from, to, message } => {
                if self.node_down(to) {
                    // The destination is inside a crash window: the message
                    // is lost, exactly like a packet arriving at a dead host.
                    self.stats.dropped_by_fault += 1;
                    obs::count("net.dropped_by_fault", 1);
                } else {
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += message.wire_size() as u64;
                    obs::count("net.delivered", 1);
                    obs::count("net.bytes_delivered", message.wire_size() as u64);
                    self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, message));
                }
            }
            EventKind::Timer { node, timer_id } => {
                // Timers firing during an outage are suppressed (a crashed
                // process runs nothing); timers that out-survive the outage
                // still fire after restart.
                if !self.node_down(node) {
                    self.stats.timers_fired += 1;
                    obs::count("net.timers_fired", 1);
                    self.dispatch(node, |actor, ctx| actor.on_timer(ctx, timer_id));
                }
            }
            EventKind::Restart { node } => {
                self.dispatch(node, |actor, ctx| actor.on_restart(ctx));
            }
        }
        true
    }

    fn node_down(&self, node: NodeId) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.plan().node_down(node, self.clock))
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor, &mut Context<'_>),
    {
        let idx = node.0 as usize;
        if idx >= self.nodes.len() {
            return; // message to an unknown node: dropped silently
        }
        // Temporarily take the actor out so it can borrow the simulation's
        // action buffer without aliasing.
        let Some(mut actor) = self.nodes[idx].actor.take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.inflight);
        {
            let mut ctx = Context {
                now: self.clock,
                self_id: node,
                actions: &mut actions,
            };
            f(actor.as_mut(), &mut ctx);
        }
        self.nodes[idx].actor = Some(actor);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.post(node, to, msg),
                Action::Timer { delay_ms, timer_id } => {
                    self.queue
                        .push(self.clock + delay_ms, EventKind::Timer { node, timer_id });
                }
                Action::Retry => {
                    self.stats.retries += 1;
                    obs::count("reliable.retries", 1);
                }
            }
        }
        self.inflight = actions;
    }

    /// Runs until the event queue drains. Returns the number of events
    /// processed.
    ///
    /// A safety valve aborts after 50 million events to protect against
    /// actors that endlessly re-arm timers.
    pub fn run(&mut self) -> u64 {
        let mut processed = 0;
        while self.step() {
            processed += 1;
            if processed >= 50_000_000 {
                break;
            }
        }
        processed
    }

    /// Runs until simulated time reaches `deadline` (or the queue drains).
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            processed += 1;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
        processed
    }

    /// Borrows a node's actor for inspection after (or between) runs.
    ///
    /// Returns `None` for unknown nodes or while the actor is executing.
    pub fn actor(&self, id: NodeId) -> Option<&dyn Actor> {
        self.nodes
            .get(id.0 as usize)
            .and_then(|slot| slot.actor.as_deref())
    }

    /// Mutably borrows a node's actor (e.g. to extract collected results).
    pub fn actor_mut(&mut self, id: NodeId) -> Option<&mut (dyn Actor + 'static)> {
        self.nodes
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.actor.as_deref_mut())
    }

    /// Borrows a node's actor downcast to its concrete type.
    ///
    /// ```
    /// # use simnet::{Actor, Context, Message, NodeId, Simulation};
    /// struct Probe(u32);
    /// impl Actor for Probe {
    ///     fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Message) { self.0 += 1; }
    /// }
    /// let mut sim = Simulation::new(0);
    /// let id = sim.add_node("probe", Box::new(Probe(0)));
    /// assert_eq!(sim.actor_as::<Probe>(id).unwrap().0, 0);
    /// ```
    pub fn actor_as<T: Actor>(&self, id: NodeId) -> Option<&T> {
        self.actor(id)
            .and_then(|a| (a as &dyn std::any::Any).downcast_ref::<T>())
    }

    /// Mutably borrows a node's actor downcast to its concrete type.
    pub fn actor_as_mut<T: Actor>(&mut self, id: NodeId) -> Option<&mut T> {
        self.actor_mut(id)
            .and_then(|a| (a as &mut dyn std::any::Any).downcast_mut::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts received messages; replies to the first `replies` of them.
    struct Responder {
        received: u32,
        replies: u32,
    }

    impl Actor for Responder {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
            self.received += 1;
            if self.received <= self.replies {
                ctx.send(from, Message::event(msg.kind + 1, vec![]));
            }
        }
    }

    /// Records everything it sees.
    #[derive(Default)]
    struct Sink {
        received: Vec<(NodeId, u16)>,
        timers: Vec<u64>,
    }

    impl Actor for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_>, from: NodeId, msg: Message) {
            self.received.push((from, msg.kind));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, timer_id: u64) {
            self.timers.push(timer_id);
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut sim = Simulation::new(1);
        sim.set_default_link(LinkModel::lan());
        let responder = sim.add_node(
            "responder",
            Box::new(Responder {
                received: 0,
                replies: 1,
            }),
        );
        let sink = sim.add_node("sink", Box::new(Sink::default()));
        sim.post(sink, responder, Message::event(10, vec![]));
        sim.run();
        assert_eq!(sim.stats().sent, 2);
        assert_eq!(sim.stats().delivered, 2);
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("sink", Box::new(Sink::default()));
        sim.post_timer(node, 300, 3);
        sim.post_timer(node, 100, 1);
        sim.post_timer(node, 200, 2);
        sim.run();
        assert_eq!(sim.stats().timers_fired, 3);
        assert_eq!(sim.now(), SimTime::from_millis(300));
    }

    #[test]
    fn clock_advances_with_latency() {
        let mut sim = Simulation::new(1);
        sim.set_default_link(LinkModel {
            latency_ms: 50,
            jitter_ms: 0,
            loss: 0.0,
            bandwidth_kbps: 0,
        });
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.post(a, b, Message::event(1, vec![]));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn lossy_link_drops() {
        let mut sim = Simulation::new(7);
        sim.set_default_link(LinkModel::perfect().with_loss(1.0));
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        for _ in 0..10 {
            sim.post(a, b, Message::event(1, vec![]));
        }
        sim.run();
        assert_eq!(sim.stats().dropped, 10);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn per_pair_link_overrides_default() {
        let mut sim = Simulation::new(3);
        sim.set_default_link(LinkModel::perfect());
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.set_link(a, b, LinkModel::perfect().with_latency_ms(500));
        sim.post(a, b, Message::event(1, vec![]));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_millis(500));
        // Reverse direction still uses the default (instant).
        sim.post(b, a, Message::event(1, vec![]));
        sim.run();
        assert_eq!(sim.now(), SimTime::from_millis(500));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (u64, u64, u64) {
            let mut sim = Simulation::new(seed);
            sim.set_default_link(LinkModel::mobile());
            let a = sim.add_node("a", Box::new(Sink::default()));
            let b = sim.add_node(
                "b",
                Box::new(Responder {
                    received: 0,
                    replies: 50,
                }),
            );
            for _ in 0..100 {
                sim.post(a, b, Message::event(1, vec![0; 64]));
            }
            sim.run();
            let s = sim.stats();
            (s.delivered, s.dropped, sim.now().as_millis())
        }
        assert_eq!(run_once(99), run_once(99));
        // Different seeds almost surely differ in at least the clock.
        let x = run_once(1);
        let y = run_once(2);
        assert!(x != y, "expected different traces, got {x:?} / {y:?}");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("sink", Box::new(Sink::default()));
        sim.post_timer(node, 100, 1);
        sim.post_timer(node, 10_000, 2);
        let processed = sim.run_until(SimTime::from_millis(1_000));
        assert_eq!(processed, 1);
        assert_eq!(sim.now(), SimTime::from_millis(1_000));
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn message_to_unknown_node_is_ignored() {
        let mut sim = Simulation::new(1);
        let a = sim.add_node("a", Box::new(Sink::default()));
        sim.post(a, NodeId(999), Message::event(1, vec![]));
        sim.run(); // must not panic
        assert_eq!(sim.stats().delivered, 1); // counted as delivered to the void
    }

    #[test]
    fn node_metadata() {
        let mut sim = Simulation::new(1);
        let a = sim.add_node("alpha", Box::new(Sink::default()));
        assert_eq!(sim.node_name(a), "alpha");
        assert_eq!(sim.node_count(), 1);
        assert!(sim.actor(a).is_some());
        assert!(sim.actor(NodeId(42)).is_none());
    }

    #[test]
    fn partition_drops_crossing_traffic_and_counts_it() {
        use crate::fault::{FaultPlan, Partition};
        let mut sim = Simulation::new(1);
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.set_fault_plan(FaultPlan::none().with_partition(Partition {
            from_ms: 0,
            until_ms: 1_000,
            nodes: vec![a],
        }));
        for _ in 0..5 {
            sim.post(a, b, Message::event(1, vec![]));
        }
        sim.run();
        assert_eq!(sim.stats().dropped_by_fault, 5);
        assert_eq!(sim.stats().delivered, 0);
        // After the partition heals, traffic flows again.
        sim.run_until(SimTime::from_millis(1_000));
        sim.post(a, b, Message::event(1, vec![]));
        sim.run();
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn duplication_injects_extra_copies() {
        use crate::fault::FaultPlan;
        let mut sim = Simulation::new(2);
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.set_fault_plan(FaultPlan {
            seed: 9,
            ..FaultPlan::none().with_duplication(1.0)
        });
        for _ in 0..10 {
            sim.post(a, b, Message::event(1, vec![]));
        }
        sim.run();
        assert_eq!(sim.stats().duplicated, 10);
        assert_eq!(sim.stats().delivered, 20);
        assert_eq!(sim.actor_as::<Sink>(b).unwrap().received.len(), 20);
    }

    #[test]
    fn reordering_counts_and_still_delivers() {
        use crate::fault::FaultPlan;
        let mut sim = Simulation::new(3);
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.set_fault_plan(FaultPlan {
            seed: 4,
            ..FaultPlan::none().with_reordering(1.0, 100)
        });
        for _ in 0..10 {
            sim.post(a, b, Message::event(1, vec![]));
        }
        sim.run();
        assert_eq!(sim.stats().reordered, 10);
        assert_eq!(sim.stats().delivered, 10);
    }

    #[test]
    fn crash_window_suppresses_then_restarts() {
        use crate::fault::{Crash, FaultPlan};

        /// Remembers whether it was restarted; counts deliveries.
        #[derive(Default)]
        struct Phoenix {
            received: u32,
            restarts: u32,
        }
        impl Actor for Phoenix {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {
                self.received += 1;
            }
            fn on_restart(&mut self, ctx: &mut Context<'_>) {
                self.restarts += 1;
                // Typical recovery: re-arm the driving timer.
                ctx.set_timer(1, 42);
            }
        }

        let mut sim = Simulation::new(4);
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Phoenix::default()));
        sim.set_fault_plan(FaultPlan::none().with_crash(Crash {
            node: b,
            at_ms: 0,
            restart_ms: 500,
        }));
        // Sent while b is down: lost at delivery time.
        sim.post(a, b, Message::event(1, vec![]));
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(sim.stats().dropped_by_fault, 1);
        // After restart the node receives again and saw the restart hook.
        sim.run();
        sim.post(a, b, Message::event(1, vec![]));
        sim.run();
        let phoenix = sim.actor_as::<Phoenix>(b).unwrap();
        assert_eq!(phoenix.restarts, 1);
        assert_eq!(phoenix.received, 1);
        assert_eq!(sim.stats().timers_fired, 1);
    }

    #[test]
    fn note_retry_reaches_stats() {
        /// Reports a retry for every timer firing.
        struct Retrier;
        impl Actor for Retrier {
            fn on_message(&mut self, _: &mut Context<'_>, _: NodeId, _: Message) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _: u64) {
                ctx.note_retry();
            }
        }
        let mut sim = Simulation::new(5);
        let a = sim.add_node("a", Box::new(Retrier));
        sim.post_timer(a, 1, 0);
        sim.post_timer(a, 2, 0);
        sim.run();
        assert_eq!(sim.stats().retries, 2);
    }

    #[test]
    fn fault_runs_replay_identically() {
        use crate::fault::FaultPlan;
        fn run_once(seed: u64) -> (NetworkStats, u64) {
            let mut sim = Simulation::new(7);
            sim.set_default_link(LinkModel::mobile());
            sim.set_fault_plan(FaultPlan::chaos(seed));
            let a = sim.add_node("a", Box::new(Sink::default()));
            let b = sim.add_node(
                "b",
                Box::new(Responder {
                    received: 0,
                    replies: 100,
                }),
            );
            for _ in 0..200 {
                sim.post(a, b, Message::event(1, vec![0; 48]));
            }
            sim.run();
            (sim.stats(), sim.now().as_millis())
        }
        assert_eq!(run_once(31), run_once(31));
    }

    #[test]
    fn actor_downcast_roundtrip() {
        let mut sim = Simulation::new(1);
        let a = sim.add_node("a", Box::new(Sink::default()));
        let b = sim.add_node("b", Box::new(Sink::default()));
        sim.post(a, b, Message::event(9, vec![]));
        sim.post_timer(b, 5, 77);
        sim.run();
        let sink = sim.actor_as::<Sink>(b).expect("downcast");
        assert_eq!(sink.received, vec![(a, 9)]);
        assert_eq!(sink.timers, vec![77]);
        // Wrong type yields None.
        assert!(sim.actor_as::<Responder>(b).is_none());
        // Mutable access works too.
        sim.actor_as_mut::<Sink>(b).unwrap().timers.clear();
        assert!(sim.actor_as::<Sink>(b).unwrap().timers.is_empty());
    }
}
