//! Link models: latency, jitter, loss and bandwidth.

use rand::rngs::StdRng;
use rand::Rng;

/// The quality model of a (directed) network link.
///
/// Delivery delay is `latency ± U(0, jitter)` plus serialization time at the
/// configured bandwidth; each message is independently dropped with
/// probability `loss`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Base one-way latency, in milliseconds.
    pub latency_ms: u64,
    /// Maximum uniform jitter added to the latency, in milliseconds.
    pub jitter_ms: u64,
    /// Independent drop probability in `[0, 1]`.
    pub loss: f64,
    /// Link bandwidth in kilobits per second; `0` means infinite.
    pub bandwidth_kbps: u64,
}

impl LinkModel {
    /// A perfect link: zero latency, no jitter, no loss, infinite bandwidth.
    pub fn perfect() -> Self {
        Self {
            latency_ms: 0,
            jitter_ms: 0,
            loss: 0.0,
            bandwidth_kbps: 0,
        }
    }

    /// A local-area link: 1 ms ± 1 ms, lossless.
    pub fn lan() -> Self {
        Self {
            latency_ms: 1,
            jitter_ms: 1,
            loss: 0.0,
            bandwidth_kbps: 0,
        }
    }

    /// A wide-area link: 40 ms ± 20 ms, 0.1 % loss.
    pub fn wan() -> Self {
        Self {
            latency_ms: 40,
            jitter_ms: 20,
            loss: 0.001,
            bandwidth_kbps: 0,
        }
    }

    /// A 3G-class mobile link: 80 ms ± 60 ms, 1 % loss, 2 Mbit/s.
    ///
    /// This is the default device↔Hive model in experiment E4: the paper's
    /// population is smartphone-based.
    pub fn mobile() -> Self {
        Self {
            latency_ms: 80,
            jitter_ms: 60,
            loss: 0.01,
            bandwidth_kbps: 2_000,
        }
    }

    /// Returns a copy with the loss probability replaced.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with the base latency replaced.
    pub fn with_latency_ms(mut self, latency_ms: u64) -> Self {
        self.latency_ms = latency_ms;
        self
    }

    /// Samples the delivery delay for a message of `size_bytes`, or `None`
    /// if the message is dropped.
    pub fn sample_delay(&self, size_bytes: usize, rng: &mut StdRng) -> Option<u64> {
        if self.loss > 0.0 && rng.gen_bool(self.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let jitter = if self.jitter_ms > 0 {
            rng.gen_range(0..=self.jitter_ms)
        } else {
            0
        };
        let serialization_ms = if self.bandwidth_kbps > 0 {
            // bits / (kbit/s) = ms
            (size_bytes as u64 * 8)
                .div_euclid(self.bandwidth_kbps)
                .max(1)
        } else {
            0
        };
        Some(self.latency_ms + jitter + serialization_ms)
    }
}

impl Default for LinkModel {
    /// Defaults to [`LinkModel::lan`].
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn perfect_link_is_instant_and_lossless() {
        let mut r = rng();
        let link = LinkModel::perfect();
        for _ in 0..100 {
            assert_eq!(link.sample_delay(1_000, &mut r), Some(0));
        }
    }

    #[test]
    fn latency_and_jitter_bounds() {
        let mut r = rng();
        let link = LinkModel {
            latency_ms: 50,
            jitter_ms: 10,
            loss: 0.0,
            bandwidth_kbps: 0,
        };
        for _ in 0..200 {
            let d = link.sample_delay(100, &mut r).unwrap();
            assert!((50..=60).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut r = rng();
        let link = LinkModel::lan().with_loss(1.0);
        for _ in 0..50 {
            assert_eq!(link.sample_delay(10, &mut r), None);
        }
    }

    #[test]
    fn partial_loss_is_roughly_calibrated() {
        let mut r = rng();
        let link = LinkModel::perfect().with_loss(0.2);
        let dropped = (0..5_000)
            .filter(|_| link.sample_delay(10, &mut r).is_none())
            .count();
        let rate = dropped as f64 / 5_000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let mut r = rng();
        // 8 kbit at 8 kbit/s = 1000 ms.
        let link = LinkModel {
            latency_ms: 0,
            jitter_ms: 0,
            loss: 0.0,
            bandwidth_kbps: 8,
        };
        assert_eq!(link.sample_delay(1_000, &mut r), Some(1_000));
        // Small messages still pay at least 1 ms.
        assert_eq!(link.sample_delay(1, &mut r), Some(1));
    }

    #[test]
    fn with_builders_clamp() {
        let l = LinkModel::wan().with_loss(7.0);
        assert_eq!(l.loss, 1.0);
        assert_eq!(l.with_latency_ms(5).latency_ms, 5);
    }
}
