//! Traffic counters.

use std::fmt;

/// Aggregate network statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by lossy links.
    pub dropped: u64,
    /// Messages dropped by an injected fault (burst loss, partition, or a
    /// crashed destination) rather than the link's base loss model.
    pub dropped_by_fault: u64,
    /// Extra copies injected by a duplication fault.
    pub duplicated: u64,
    /// Messages whose delivery was delayed past later traffic by a
    /// reordering fault.
    pub reordered: u64,
    /// Retransmissions reported by reliable-delivery endpoints (see
    /// [`crate::Context::note_retry`]).
    pub retries: u64,
    /// Total bytes handed to the network (wire size).
    pub bytes_sent: u64,
    /// Total bytes delivered (wire size).
    pub bytes_delivered: u64,
    /// Timers fired.
    pub timers_fired: u64,
}

impl NetworkStats {
    /// Fraction of sent messages that were delivered (1.0 when none sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Messages lost for any reason (link loss plus injected faults).
    pub fn lost(&self) -> u64 {
        self.dropped + self.dropped_by_fault
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} ({:.1}% delivery), {} B out",
            self.sent,
            self.delivered,
            self.dropped,
            self.delivery_ratio() * 100.0,
            self.bytes_sent
        )?;
        if self.dropped_by_fault + self.duplicated + self.reordered + self.retries > 0 {
            write!(
                f,
                "; faults: dropped={} duplicated={} reordered={} retries={}",
                self.dropped_by_fault, self.duplicated, self.reordered, self.retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_edge_cases() {
        let empty = NetworkStats::default();
        assert_eq!(empty.delivery_ratio(), 1.0);
        let s = NetworkStats {
            sent: 10,
            delivered: 9,
            dropped: 1,
            ..Default::default()
        };
        assert!((s.delivery_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn lost_sums_link_and_fault_drops() {
        let s = NetworkStats {
            dropped: 3,
            dropped_by_fault: 4,
            ..Default::default()
        };
        assert_eq!(s.lost(), 7);
    }

    #[test]
    fn display_mentions_counts() {
        let s = NetworkStats {
            sent: 4,
            delivered: 4,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("sent=4"));
        assert!(text.contains("100.0%"));
        // The fault summary only appears when a fault counter is non-zero.
        assert!(!text.contains("faults:"));
        let faulty = NetworkStats {
            sent: 4,
            delivered: 3,
            dropped_by_fault: 1,
            duplicated: 2,
            reordered: 1,
            retries: 5,
            ..Default::default()
        };
        let text = faulty.to_string();
        assert!(text.contains("faults:"));
        assert!(text.contains("retries=5"));
    }
}
