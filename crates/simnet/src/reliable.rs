//! Sequenced, acknowledged, at-least-once frame delivery.
//!
//! The base simulator (and any real mobile uplink) may drop, duplicate,
//! reorder or delay messages — see [`crate::fault`]. This module adds the
//! transport discipline that turns that into a usable collection channel:
//!
//! * [`ReliableSender`] — assigns each payload chunk an ascending sequence
//!   number, keeps it in a **persistent outbox** until acknowledged, limits
//!   the unacknowledged frames to a bounded in-flight window, and
//!   retransmits on a per-frame exponential backoff with deterministic
//!   jitter. [`ReliableSender::crash`] models a device power-cycle: the
//!   volatile in-flight bookkeeping is lost, the outbox and the
//!   acknowledged watermark survive, so the device resumes from its last
//!   ack.
//! * [`ReliableReceiver`] — deduplicates by sequence watermark, buffers
//!   out-of-order frames, releases contiguous runs in order, and answers
//!   every frame with a cumulative [`AckFrame`].
//!
//! Frames are ordinary [`Message`]s ([`DATA_KIND`] / [`ACK_KIND`]) whose
//! payloads use the [`crate::wire`] codec, so the same bytes travel the
//! simulated network and the real TCP loopback transport unchanged.
//!
//! The guarantee is **at-least-once, in-order release**: every enqueued
//! chunk that the network eventually lets through is released to the
//! application exactly once, in sequence order, no matter how the copies
//! were dropped, duplicated or reordered on the way.

use crate::message::Message;
use crate::wire::{Decode, Encode, WireError};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Message kind of a sequenced data frame.
pub const DATA_KIND: u16 = 240;
/// Message kind of an acknowledgement frame.
pub const ACK_KIND: u16 = 241;

/// A sequenced payload chunk travelling sender → receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Stable identifier of the sending endpoint (survives restarts).
    pub sender: u64,
    /// Sequence number, ascending from 1 per sender.
    pub seq: u64,
    /// Opaque application payload.
    pub chunk: Vec<u8>,
}

impl DataFrame {
    /// Packs this frame into a wire [`Message`] of kind [`DATA_KIND`].
    pub fn to_message(&self) -> Message {
        let body = (self.sender, self.seq, self.chunk.clone());
        Message::event(DATA_KIND, body.encode_to_vec())
    }

    /// Unpacks a frame from a wire [`Message`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Corrupt`] for a message of the wrong kind and
    /// any [`WireError`] the payload decode produces.
    pub fn from_message(msg: &Message) -> Result<Self, WireError> {
        if msg.kind != DATA_KIND {
            return Err(WireError::Corrupt("not a reliable data frame"));
        }
        let mut payload = msg.payload.clone();
        let (sender, seq, chunk) = <(u64, u64, Vec<u8>)>::decode(&mut payload)?;
        Ok(Self { sender, seq, chunk })
    }
}

/// An acknowledgement travelling receiver → sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckFrame {
    /// The sender endpoint being acknowledged.
    pub sender: u64,
    /// Every sequence number `<= cumulative` has been released in order.
    pub cumulative: u64,
    /// The specific sequence number that triggered this ack (it may be
    /// buffered above a gap, i.e. greater than `cumulative`).
    pub seq: u64,
}

impl AckFrame {
    /// Packs this ack into a wire [`Message`] of kind [`ACK_KIND`].
    pub fn to_message(&self) -> Message {
        let body = (self.sender, self.cumulative, self.seq);
        Message::event(ACK_KIND, body.encode_to_vec())
    }

    /// Unpacks an ack from a wire [`Message`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Corrupt`] for a message of the wrong kind and
    /// any [`WireError`] the payload decode produces.
    pub fn from_message(msg: &Message) -> Result<Self, WireError> {
        if msg.kind != ACK_KIND {
            return Err(WireError::Corrupt("not a reliable ack frame"));
        }
        let mut payload = msg.payload.clone();
        let (sender, cumulative, seq) = <(u64, u64, u64)>::decode(&mut payload)?;
        Ok(Self {
            sender,
            cumulative,
            seq,
        })
    }
}

/// Tuning knobs of a [`ReliableSender`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged frames in flight.
    pub window: usize,
    /// Initial retransmission timeout, in milliseconds.
    pub base_rto_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_rto_ms: u64,
}

impl Default for ReliableConfig {
    /// 16 frames in flight, 500 ms initial RTO, 8 s ceiling.
    fn default() -> Self {
        Self {
            window: 16,
            base_rto_ms: 500,
            max_rto_ms: 8_000,
        }
    }
}

/// Counters of one sender endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Chunks accepted into the outbox.
    pub enqueued: u64,
    /// Frames put on the wire (first transmissions + retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retries: u64,
    /// Frames confirmed delivered.
    pub acked: u64,
    /// Simulated power-cycles survived.
    pub crashes: u64,
}

/// One frame to put on the wire, as produced by [`ReliableSender::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmission {
    /// The frame to send.
    pub frame: DataFrame,
    /// Whether this is a retransmission (for retry accounting, e.g.
    /// [`crate::Context::note_retry`]).
    pub retransmit: bool,
}

#[derive(Debug, Clone)]
struct InFlight {
    chunk: Bytes,
    attempts: u32,
    next_due_ms: u64,
    first_sent_ms: u64,
}

/// Deterministic per-frame jitter so simultaneous retransmissions of a
/// fleet spread out without consuming simulation randomness.
fn jitter(sender: u64, seq: u64, attempts: u32, span_ms: u64) -> u64 {
    if span_ms == 0 {
        return 0;
    }
    let mut x = sender
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(u64::from(attempts));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 31;
    x % span_ms
}

/// The sending half of the reliable channel (device side).
#[derive(Debug)]
pub struct ReliableSender {
    id: u64,
    config: ReliableConfig,
    next_seq: u64,
    /// Persistent outbox: assigned-but-unacknowledged chunks not currently
    /// in flight. Survives [`ReliableSender::crash`].
    outbox: VecDeque<(u64, Bytes)>,
    /// Volatile per-frame retry bookkeeping. Lost on crash.
    in_flight: BTreeMap<u64, InFlight>,
    /// Highest cumulative ack seen from the peer. Survives crashes (the
    /// device persists it next to the outbox).
    acked: u64,
    stats: SenderStats,
}

impl ReliableSender {
    /// Creates a sender with the given stable endpoint id.
    pub fn new(id: u64, config: ReliableConfig) -> Self {
        Self {
            id,
            config,
            next_seq: 1,
            outbox: VecDeque::new(),
            in_flight: BTreeMap::new(),
            acked: 0,
            stats: SenderStats::default(),
        }
    }

    /// The endpoint id stamped into every frame.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This sender's counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Chunks not yet confirmed delivered (queued + in flight).
    pub fn pending(&self) -> usize {
        self.outbox.len() + self.in_flight.len()
    }

    /// Whether everything enqueued has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Highest cumulative sequence number the peer has acknowledged.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Appends a chunk to the outbox; returns its sequence number.
    pub fn enqueue(&mut self, chunk: Vec<u8>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outbox.push_back((seq, Bytes::from(chunk)));
        self.stats.enqueued += 1;
        seq
    }

    fn rto(&self, seq: u64, attempts: u32) -> u64 {
        let shift = attempts.saturating_sub(1).min(16);
        let backoff = self
            .config
            .base_rto_ms
            .saturating_mul(1 << shift)
            .min(self.config.max_rto_ms);
        backoff + jitter(self.id, seq, attempts, self.config.base_rto_ms / 2 + 1)
    }

    /// Collects every frame that should be on the wire at `now_ms`:
    /// due retransmissions first, then fresh frames up to the window limit.
    pub fn poll(&mut self, now_ms: u64) -> Vec<Transmission> {
        let mut out = Vec::new();
        for (&seq, entry) in self.in_flight.iter_mut() {
            if entry.next_due_ms <= now_ms {
                entry.attempts += 1;
                entry.next_due_ms = now_ms
                    + self
                        .config
                        .base_rto_ms
                        .saturating_mul(1 << entry.attempts.saturating_sub(1).min(16))
                        .min(self.config.max_rto_ms)
                    + jitter(
                        self.id,
                        seq,
                        entry.attempts,
                        self.config.base_rto_ms / 2 + 1,
                    );
                self.stats.transmissions += 1;
                self.stats.retries += 1;
                obs::count("reliable.retransmits", 1);
                obs::observe(
                    "reliable.backoff_ms",
                    obs::Buckets::LatencyMs,
                    entry.next_due_ms.saturating_sub(now_ms),
                );
                out.push(Transmission {
                    frame: DataFrame {
                        sender: self.id,
                        seq,
                        chunk: entry.chunk.to_vec(),
                    },
                    retransmit: true,
                });
            }
        }
        while self.in_flight.len() < self.config.window {
            let Some((seq, chunk)) = self.outbox.pop_front() else {
                break;
            };
            let due = now_ms + self.rto(seq, 1);
            self.in_flight.insert(
                seq,
                InFlight {
                    chunk: chunk.clone(),
                    attempts: 1,
                    next_due_ms: due,
                    first_sent_ms: now_ms,
                },
            );
            self.stats.transmissions += 1;
            out.push(Transmission {
                frame: DataFrame {
                    sender: self.id,
                    seq,
                    chunk: chunk.to_vec(),
                },
                retransmit: false,
            });
        }
        out
    }

    /// Absorbs an acknowledgement; returns the delivery latencies (ms,
    /// first transmission → ack) of the frames it newly confirmed.
    pub fn on_ack(&mut self, ack: &AckFrame, now_ms: u64) -> Vec<u64> {
        let mut latencies = Vec::new();
        self.acked = self.acked.max(ack.cumulative);
        let confirmed: Vec<u64> = self
            .in_flight
            .keys()
            .copied()
            .filter(|&seq| seq <= ack.cumulative || seq == ack.seq)
            .collect();
        for seq in confirmed {
            if let Some(entry) = self.in_flight.remove(&seq) {
                self.stats.acked += 1;
                let latency_ms = now_ms.saturating_sub(entry.first_sent_ms);
                // One sim-stamped event per confirmed chunk carrying the
                // exact latency sample (what E13 aggregates), plus the
                // cheap histogram aggregate.
                obs::observe(
                    "reliable.delivery_latency_ms",
                    obs::Buckets::LatencyMs,
                    latency_ms,
                );
                obs::event_sim_ms(
                    "reliable.delivered",
                    now_ms,
                    &[
                        ("latency_ms", obs::AttrValue::U64(latency_ms)),
                        ("seq", obs::AttrValue::U64(seq)),
                    ],
                );
                latencies.push(latency_ms);
            }
        }
        // Chunks re-queued by a crash may have been delivered before the
        // crash: the cumulative watermark retires them without resending.
        let acked = self.acked;
        let before = self.outbox.len();
        self.outbox.retain(|(seq, _)| *seq > acked);
        self.stats.acked += (before - self.outbox.len()) as u64;
        latencies
    }

    /// When the next retransmission is due, if anything is in flight.
    pub fn next_due(&self) -> Option<u64> {
        self.in_flight.values().map(|e| e.next_due_ms).min()
    }

    /// Simulates a device power-cycle.
    ///
    /// The volatile in-flight bookkeeping is lost; every unacknowledged
    /// chunk returns to the front of the persistent outbox (in sequence
    /// order, keeping its original sequence number), and the acknowledged
    /// watermark survives — so the sender resumes exactly from its last
    /// ack, and the receiver's dedup absorbs any copy that was already
    /// delivered.
    pub fn crash(&mut self) {
        let in_flight = std::mem::take(&mut self.in_flight);
        for (seq, entry) in in_flight.into_iter().rev() {
            self.outbox.push_front((seq, entry.chunk));
        }
        self.stats.crashes += 1;
    }
}

/// Counters of one receiver endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Frames released to the application (each exactly once).
    pub released: u64,
    /// Duplicate frames absorbed by the watermark/buffer dedup.
    pub duplicates: u64,
    /// Largest number of out-of-order frames buffered at once.
    pub buffered_peak: u64,
}

/// The receiving half of the reliable channel (Hive side), one per peer.
#[derive(Debug, Default)]
pub struct ReliableReceiver {
    /// Every sequence number `<= watermark` has been released in order.
    watermark: u64,
    /// Out-of-order frames waiting for the gap below them to fill.
    pending: BTreeMap<u64, Vec<u8>>,
    stats: ReceiverStats,
}

impl ReliableReceiver {
    /// Creates a receiver expecting sequence numbers from 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// This receiver's counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The cumulative watermark: all `seq <= watermark` released.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Out-of-order frames currently buffered.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// The chunks stuck behind a sequence gap, in sequence order — what an
    /// ingestion endpoint audits as *delivered but not yet applicable*.
    pub fn buffered_chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.pending.values().map(Vec::as_slice)
    }

    /// Accepts one frame; returns the chunks newly released in sequence
    /// order (possibly empty, possibly several when a gap closes) and the
    /// ack to answer with.
    ///
    /// Duplicates — below the watermark or already buffered — release
    /// nothing but are still acknowledged, so a sender whose ack got lost
    /// stops retransmitting.
    pub fn accept(
        &mut self,
        sender: u64,
        seq: u64,
        chunk: Vec<u8>,
    ) -> (Vec<(u64, Vec<u8>)>, AckFrame) {
        let mut released = Vec::new();
        if seq <= self.watermark || self.pending.contains_key(&seq) {
            self.stats.duplicates += 1;
        } else {
            self.pending.insert(seq, chunk);
            self.stats.buffered_peak = self.stats.buffered_peak.max(self.pending.len() as u64);
            while let Some(chunk) = self.pending.remove(&(self.watermark + 1)) {
                self.watermark += 1;
                self.stats.released += 1;
                released.push((self.watermark, chunk));
            }
        }
        (
            released,
            AckFrame {
                sender,
                cumulative: self.watermark,
                seq,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: u64) -> Vec<u8> {
        format!("chunk-{n}").into_bytes()
    }

    #[test]
    fn frames_roundtrip_through_wire_messages() {
        let data = DataFrame {
            sender: 42,
            seq: 7,
            chunk: vec![1, 2, 3],
        };
        let msg = data.to_message();
        assert_eq!(msg.kind, DATA_KIND);
        assert_eq!(DataFrame::from_message(&msg).unwrap(), data);
        let ack = AckFrame {
            sender: 42,
            cumulative: 6,
            seq: 7,
        };
        let msg = ack.to_message();
        assert_eq!(msg.kind, ACK_KIND);
        assert_eq!(AckFrame::from_message(&msg).unwrap(), ack);
        // Kind confusion is a typed error, not a misparse.
        assert!(matches!(
            DataFrame::from_message(&ack.to_message()),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            AckFrame::from_message(&data.to_message()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn window_bounds_in_flight_frames() {
        let mut tx = ReliableSender::new(
            1,
            ReliableConfig {
                window: 4,
                ..ReliableConfig::default()
            },
        );
        for i in 0..10 {
            tx.enqueue(chunk(i));
        }
        let sent = tx.poll(0);
        assert_eq!(sent.len(), 4);
        assert!(sent.iter().all(|t| !t.retransmit));
        assert_eq!(
            sent.iter().map(|t| t.frame.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        // Nothing more until something is acked.
        assert!(tx.poll(1).is_empty());
        tx.on_ack(
            &AckFrame {
                sender: 1,
                cumulative: 2,
                seq: 2,
            },
            5,
        );
        let refill = tx.poll(5);
        assert_eq!(
            refill.iter().map(|t| t.frame.seq).collect::<Vec<_>>(),
            vec![5, 6]
        );
    }

    #[test]
    fn retransmission_backs_off_exponentially() {
        let config = ReliableConfig {
            window: 1,
            base_rto_ms: 100,
            max_rto_ms: 1_000,
        };
        let mut tx = ReliableSender::new(3, config);
        tx.enqueue(chunk(0));
        assert_eq!(tx.poll(0).len(), 1);
        let first_due = tx.next_due().unwrap();
        // First RTO: base + jitter ≤ base * 1.5.
        assert!((100..=150).contains(&first_due), "due {first_due}");
        // Nothing due before the RTO expires.
        assert!(tx.poll(first_due - 1).is_empty());
        let retry = tx.poll(first_due);
        assert_eq!(retry.len(), 1);
        assert!(retry[0].retransmit);
        let second_due = tx.next_due().unwrap();
        // Second RTO doubles: due ≥ first_due + 2 * base.
        assert!(
            second_due >= first_due + 200,
            "second_due {second_due} first_due {first_due}"
        );
        assert_eq!(tx.stats().retries, 1);
        assert_eq!(tx.stats().transmissions, 2);
    }

    #[test]
    fn backoff_is_capped_at_max_rto() {
        let config = ReliableConfig {
            window: 1,
            base_rto_ms: 100,
            max_rto_ms: 400,
        };
        let mut tx = ReliableSender::new(3, config);
        tx.enqueue(chunk(0));
        let mut now = 0;
        assert_eq!(tx.poll(now).len(), 1);
        for _ in 0..10 {
            now = tx.next_due().unwrap();
            assert_eq!(tx.poll(now).len(), 1);
        }
        // After many attempts the gap stays ≤ max_rto + jitter span.
        let due = tx.next_due().unwrap();
        assert!(due - now <= 400 + 51, "gap {}", due - now);
    }

    #[test]
    fn ack_latency_is_measured_from_first_transmission() {
        let mut tx = ReliableSender::new(5, ReliableConfig::default());
        tx.enqueue(chunk(0));
        tx.poll(100);
        let latencies = tx.on_ack(
            &AckFrame {
                sender: 5,
                cumulative: 1,
                seq: 1,
            },
            350,
        );
        assert_eq!(latencies, vec![250]);
        assert!(tx.is_idle());
    }

    #[test]
    fn receiver_releases_in_order_and_absorbs_duplicates() {
        let mut rx = ReliableReceiver::new();
        // 2 arrives before 1: buffered, acked with cumulative 0.
        let (released, ack) = rx.accept(9, 2, chunk(2));
        assert!(released.is_empty());
        assert_eq!(ack.cumulative, 0);
        assert_eq!(rx.buffered(), 1);
        // 1 closes the gap: both release, in order.
        let (released, ack) = rx.accept(9, 1, chunk(1));
        assert_eq!(
            released.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(ack.cumulative, 2);
        // Duplicates of both release nothing but still ack.
        let (released, ack) = rx.accept(9, 1, chunk(1));
        assert!(released.is_empty());
        assert_eq!(ack.cumulative, 2);
        let (released, _) = rx.accept(9, 2, chunk(2));
        assert!(released.is_empty());
        assert_eq!(rx.stats().duplicates, 2);
        assert_eq!(rx.stats().released, 2);
    }

    #[test]
    fn crash_requeues_in_flight_and_resumes_from_last_ack() {
        let mut tx = ReliableSender::new(
            7,
            ReliableConfig {
                window: 8,
                ..ReliableConfig::default()
            },
        );
        for i in 0..6 {
            tx.enqueue(chunk(i));
        }
        tx.poll(0);
        // Peer acked 1–2 before the crash.
        tx.on_ack(
            &AckFrame {
                sender: 7,
                cumulative: 2,
                seq: 2,
            },
            10,
        );
        tx.crash();
        assert_eq!(tx.stats().crashes, 1);
        // Everything unacknowledged is offered again, same seqs, in order.
        let resent = tx.poll(1_000);
        assert_eq!(
            resent.iter().map(|t| t.frame.seq).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        // A late cumulative ack retires re-queued chunks without resending.
        let mut tx2 = ReliableSender::new(8, ReliableConfig::default());
        for i in 0..3 {
            tx2.enqueue(chunk(i));
        }
        tx2.poll(0);
        tx2.crash();
        tx2.on_ack(
            &AckFrame {
                sender: 8,
                cumulative: 3,
                seq: 3,
            },
            20,
        );
        assert!(tx2.is_idle());
    }

    /// End-to-end over a chaotic simulated link: every chunk is released
    /// exactly once, in order, despite loss, duplication and reordering.
    #[test]
    fn survives_chaos_on_the_simulated_network() {
        use crate::fault::FaultPlan;
        use crate::{Actor, Context, LinkModel, NodeId, Simulation};

        const TICK: u64 = 0;

        struct Uplink {
            tx: ReliableSender,
            peer: NodeId,
        }
        impl Uplink {
            fn pump(&mut self, ctx: &mut Context<'_>) {
                for t in self.tx.poll(ctx.now().as_millis()) {
                    if t.retransmit {
                        ctx.note_retry();
                    }
                    ctx.send(self.peer, t.frame.to_message());
                }
                if let Some(due) = self.tx.next_due() {
                    let delay = due.saturating_sub(ctx.now().as_millis()).max(1);
                    ctx.set_timer(delay, TICK);
                }
            }
        }
        impl Actor for Uplink {
            fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
                if let Ok(ack) = AckFrame::from_message(&msg) {
                    self.tx.on_ack(&ack, ctx.now().as_millis());
                }
                self.pump(ctx);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _timer_id: u64) {
                self.pump(ctx);
            }
        }

        #[derive(Default)]
        struct Collector {
            rx: ReliableReceiver,
            chunks: Vec<(u64, Vec<u8>)>,
        }
        impl Actor for Collector {
            fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
                if let Ok(frame) = DataFrame::from_message(&msg) {
                    let (released, ack) = self.rx.accept(frame.sender, frame.seq, frame.chunk);
                    self.chunks.extend(released);
                    ctx.send(from, ack.to_message());
                }
            }
        }

        let n = 60u64;
        let mut sim = Simulation::new(17);
        sim.set_default_link(LinkModel::mobile());
        sim.set_fault_plan(FaultPlan::chaos(23));
        let hive = sim.add_node("hive", Box::new(Collector::default()));
        let mut tx = ReliableSender::new(
            1,
            ReliableConfig {
                window: 8,
                base_rto_ms: 400,
                max_rto_ms: 4_000,
            },
        );
        for i in 0..n {
            tx.enqueue(chunk(i));
        }
        let device = sim.add_node("device", Box::new(Uplink { tx, peer: hive }));
        sim.post_timer(device, 1, TICK);
        sim.run();

        let collector = sim.actor_as::<Collector>(hive).unwrap();
        assert_eq!(
            collector.chunks.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (1..=n).collect::<Vec<_>>()
        );
        assert_eq!(collector.chunks[3].1, chunk(3));
        let uplink = sim.actor_as::<Uplink>(device).unwrap();
        assert!(uplink.tx.is_idle(), "pending {}", uplink.tx.pending());
        // The chaos plan actually bit, and the retry path actually ran.
        let stats = sim.stats();
        assert!(stats.dropped_by_fault + stats.dropped > 0 || stats.retries == 0);
        assert_eq!(stats.retries, uplink.tx.stats().retries);
    }

    /// The same frames travel the real TCP loopback transport: a client
    /// retransmits over a socket, the server-side receiver dedups.
    #[test]
    fn reliable_frames_over_tcp_loopback() {
        use crate::tcp::{TcpRpcClient, TcpRpcServer};
        use std::sync::{Arc, Mutex};
        use std::time::Duration;

        let state = Arc::new(Mutex::new((ReliableReceiver::new(), Vec::new())));
        let server_state = Arc::clone(&state);
        let server = TcpRpcServer::bind("127.0.0.1:0", move |msg: Message| {
            let frame = DataFrame::from_message(&msg).ok()?;
            let mut guard = server_state.lock().unwrap();
            let (rx, chunks) = &mut *guard;
            let (released, ack) = rx.accept(frame.sender, frame.seq, frame.chunk);
            chunks.extend(released);
            let mut reply = ack.to_message();
            reply.request_id = msg.request_id;
            Some(reply)
        })
        .expect("bind loopback");

        let mut client = TcpRpcClient::connect(server.local_addr()).expect("connect");
        let mut tx = ReliableSender::new(11, ReliableConfig::default());
        for i in 0..5 {
            tx.enqueue(chunk(i));
        }
        let timeout = Duration::from_secs(5);
        for t in tx.poll(0) {
            let mut msg = t.frame.to_message();
            msg.request_id = client.next_request_id();
            let reply = client.call(msg, timeout).expect("ack");
            let ack = AckFrame::from_message(&reply).expect("decode ack");
            tx.on_ack(&ack, 1);
        }
        assert!(tx.is_idle());
        // Pretend the acks were lost: send seq 2 again; the dedup absorbs
        // it and re-acks the full watermark.
        let dup = DataFrame {
            sender: 11,
            seq: 2,
            chunk: chunk(1),
        };
        let mut msg = dup.to_message();
        msg.request_id = client.next_request_id();
        let reply = client.call(msg, timeout).expect("ack");
        let ack = AckFrame::from_message(&reply).expect("decode ack");
        assert_eq!(ack.cumulative, 5);

        let guard = state.lock().unwrap();
        assert_eq!(guard.1.len(), 5);
        assert_eq!(guard.0.stats().duplicates, 1);
        drop(guard);
        server.shutdown();
    }
}
