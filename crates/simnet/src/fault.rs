//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] layers adversarial network behaviour on top of the base
//! [`crate::LinkModel`]s of a [`crate::Simulation`]: bursty (correlated)
//! loss, duplication, reordering, scheduled partitions and device
//! crash/restart windows. The plan owns its own RNG seed, so the same plan
//! over the same traffic replays the exact same fault sequence — which is
//! what lets the chaos tests assert byte-identical end-to-end outcomes.
//!
//! Faults are applied in two places:
//!
//! * at *send* time (`FaultState::judge`, simulator-internal): burst loss,
//!   partitions,
//!   duplication and reordering;
//! * at *delivery* time: messages and timers addressed to a node inside one
//!   of its crash windows are suppressed, and
//!   [`crate::Actor::on_restart`] fires when the window ends.

use crate::event::SimTime;
use crate::sim::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correlated (Gilbert–Elliott) loss: the link flips between a good state
/// (no extra loss) and a burst state where each message is dropped with
/// probability [`BurstLoss::loss_in_burst`]. Transitions are evaluated per
/// message sent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Probability per message of entering a burst from the good state.
    pub enter: f64,
    /// Probability per message of leaving an ongoing burst.
    pub exit: f64,
    /// Drop probability for each message sent during a burst.
    pub loss_in_burst: f64,
}

/// A scheduled partition: during `[from_ms, until_ms)` every message sent
/// to **or** from one of `nodes` is dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Partition start (inclusive), in simulated milliseconds.
    pub from_ms: u64,
    /// Partition end (exclusive), in simulated milliseconds.
    pub until_ms: u64,
    /// The nodes cut off from the rest of the network.
    pub nodes: Vec<NodeId>,
}

impl Partition {
    /// Whether `now` falls inside the partition window.
    pub fn active_at(&self, now: SimTime) -> bool {
        (self.from_ms..self.until_ms).contains(&now.as_millis())
    }

    /// Whether this partition severs traffic between `from` and `to`.
    pub fn severs(&self, from: NodeId, to: NodeId) -> bool {
        self.nodes.contains(&from) != self.nodes.contains(&to)
    }
}

/// A scheduled crash: the node is down during `[at_ms, restart_ms)`.
///
/// While down, deliveries and timer firings addressed to the node are
/// suppressed; at `restart_ms` the simulator invokes
/// [`crate::Actor::on_restart`] so the actor can discard volatile state and
/// resume (e.g. re-offer its persistent outbox).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// Crash instant (inclusive), in simulated milliseconds.
    pub at_ms: u64,
    /// Restart instant (exclusive end of the outage), in milliseconds.
    pub restart_ms: u64,
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG (independent from the simulation seed).
    pub seed: u64,
    /// Correlated loss bursts, if any.
    pub burst: Option<BurstLoss>,
    /// Per-message duplication probability in `[0, 1]`.
    pub duplicate: f64,
    /// Per-message probability of an extra reordering delay in `[0, 1]`.
    pub reorder: f64,
    /// Maximum extra delay (ms) a reordered or duplicated copy receives.
    pub reorder_extra_ms: u64,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/restart windows.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free baseline).
    pub fn none() -> Self {
        Self {
            seed: 0,
            burst: None,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_extra_ms: 0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// A moderate everything-at-once plan: occasional loss bursts, 2 %
    /// duplication and 5 % reordering. Partitions and crashes are added per
    /// scenario via [`FaultPlan::with_partition`] / [`FaultPlan::with_crash`].
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            burst: Some(BurstLoss {
                enter: 0.02,
                exit: 0.25,
                loss_in_burst: 0.6,
            }),
            duplicate: 0.02,
            reorder: 0.05,
            reorder_extra_ms: 400,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Returns a copy with a burst-loss model.
    pub fn with_burst(mut self, burst: BurstLoss) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Returns a copy with the duplication probability replaced.
    pub fn with_duplication(mut self, prob: f64) -> Self {
        self.duplicate = prob.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with the reordering probability and extra delay set.
    pub fn with_reordering(mut self, prob: f64, extra_ms: u64) -> Self {
        self.reorder = prob.clamp(0.0, 1.0);
        self.reorder_extra_ms = extra_ms;
        self
    }

    /// Returns a copy with a partition appended.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Returns a copy with a crash window appended.
    pub fn with_crash(mut self, crash: Crash) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Whether this plan can never perturb traffic.
    pub fn is_noop(&self) -> bool {
        self.burst.is_none()
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether `node` is inside one of its crash windows at `now`.
    pub fn node_down(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && (c.at_ms..c.restart_ms).contains(&now.as_millis()))
    }

    /// Whether a partition severs `from → to` at `now`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| p.active_at(now) && p.severs(from, to))
    }
}

impl Default for FaultPlan {
    /// Defaults to [`FaultPlan::none`].
    fn default() -> Self {
        Self::none()
    }
}

/// What the fault layer decided for one message at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    /// Drop the message (burst loss or partition).
    Drop,
    /// Deliver, possibly perturbed.
    Deliver {
        /// Schedule an extra duplicate copy this many ms later.
        duplicate_after_ms: Option<u64>,
        /// Extra delay added to the primary copy (reordering).
        extra_delay_ms: u64,
    },
}

/// Runtime state of a [`FaultPlan`]: the fault RNG and the burst flag.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    in_burst: bool,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            in_burst: false,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Judges one message sent `from → to` at `now`.
    pub fn judge(&mut self, from: NodeId, to: NodeId, now: SimTime) -> FaultVerdict {
        if self.plan.partitioned(from, to, now) {
            return FaultVerdict::Drop;
        }
        if let Some(burst) = self.plan.burst {
            if self.in_burst {
                if burst.exit > 0.0 && self.rng.gen_bool(burst.exit.clamp(0.0, 1.0)) {
                    self.in_burst = false;
                }
            } else if burst.enter > 0.0 && self.rng.gen_bool(burst.enter.clamp(0.0, 1.0)) {
                self.in_burst = true;
            }
            if self.in_burst
                && burst.loss_in_burst > 0.0
                && self.rng.gen_bool(burst.loss_in_burst.clamp(0.0, 1.0))
            {
                return FaultVerdict::Drop;
            }
        }
        let extra = self.plan.reorder_extra_ms.max(1);
        let duplicate_after_ms =
            if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
                Some(self.rng.gen_range(0..=extra))
            } else {
                None
            };
        let extra_delay_ms = if self.plan.reorder > 0.0 && self.rng.gen_bool(self.plan.reorder)
        {
            self.rng.gen_range(1..=extra)
        } else {
            0
        };
        FaultVerdict::Deliver {
            duplicate_after_ms,
            extra_delay_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_never_perturbs() {
        let mut state = FaultState::new(FaultPlan::none());
        assert!(state.plan().is_noop());
        for i in 0..1_000u64 {
            let verdict = state.judge(NodeId(0), NodeId(1), SimTime::from_millis(i));
            assert_eq!(
                verdict,
                FaultVerdict::Deliver {
                    duplicate_after_ms: None,
                    extra_delay_ms: 0
                }
            );
        }
    }

    #[test]
    fn partition_severs_only_crossing_traffic() {
        let plan = FaultPlan::none().with_partition(Partition {
            from_ms: 100,
            until_ms: 200,
            nodes: vec![NodeId(1), NodeId(2)],
        });
        let t = SimTime::from_millis(150);
        assert!(plan.partitioned(NodeId(1), NodeId(5), t));
        assert!(plan.partitioned(NodeId(5), NodeId(2), t));
        // Traffic within the partitioned island still flows.
        assert!(!plan.partitioned(NodeId(1), NodeId(2), t));
        // And so does traffic entirely outside it.
        assert!(!plan.partitioned(NodeId(5), NodeId(6), t));
        // Outside the window nothing is severed.
        assert!(!plan.partitioned(NodeId(1), NodeId(5), SimTime::from_millis(250)));
    }

    #[test]
    fn crash_window_bounds() {
        let plan = FaultPlan::none().with_crash(Crash {
            node: NodeId(3),
            at_ms: 50,
            restart_ms: 80,
        });
        assert!(!plan.node_down(NodeId(3), SimTime::from_millis(49)));
        assert!(plan.node_down(NodeId(3), SimTime::from_millis(50)));
        assert!(plan.node_down(NodeId(3), SimTime::from_millis(79)));
        assert!(!plan.node_down(NodeId(3), SimTime::from_millis(80)));
        assert!(!plan.node_down(NodeId(4), SimTime::from_millis(60)));
    }

    #[test]
    fn burst_loss_drops_in_bursts() {
        let plan = FaultPlan::none().with_burst(BurstLoss {
            enter: 0.1,
            exit: 0.2,
            loss_in_burst: 1.0,
        });
        let mut state = FaultState::new(FaultPlan { seed: 7, ..plan });
        let drops = (0..5_000)
            .filter(|i| {
                state.judge(NodeId(0), NodeId(1), SimTime::from_millis(*i))
                    == FaultVerdict::Drop
            })
            .count();
        // Steady state of the 2-state chain: enter/(enter+exit) = 1/3.
        assert!(drops > 1_000 && drops < 2_500, "drops {drops}");
    }

    #[test]
    fn judgements_replay_identically_for_same_seed() {
        let run = |seed: u64| {
            let mut state = FaultState::new(FaultPlan {
                seed,
                ..FaultPlan::chaos(0)
            });
            (0..500u64)
                .map(|i| state.judge(NodeId(0), NodeId(1), SimTime::from_millis(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
