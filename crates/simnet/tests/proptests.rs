//! Property-based tests of the network substrate.

use bytes::BytesMut;
use proptest::prelude::*;
use simnet::wire::{decode_frame, encode_frame, Decode, Encode};
use simnet::{Actor, Context, LinkModel, Message, NodeId, Simulation};

#[derive(Default)]
struct Counter(u64);
impl Actor for Counter {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _msg: Message) {
        self.0 += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let encoded = v.encode_to_vec();
        prop_assert_eq!(u64::decode_from_slice(&encoded).unwrap(), v);
    }

    #[test]
    fn i64_and_f64_roundtrip(a in any::<i64>(), b in any::<f64>()) {
        prop_assert_eq!(i64::decode_from_slice(&a.encode_to_vec()).unwrap(), a);
        let back = f64::decode_from_slice(&b.encode_to_vec()).unwrap();
        if b.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back, b);
        }
    }

    #[test]
    fn string_roundtrip(s in ".{0,200}") {
        let encoded = s.encode_to_vec();
        prop_assert_eq!(String::decode_from_slice(&encoded).unwrap(), s);
    }

    #[test]
    fn nested_collections_roundtrip(
        items in prop::collection::vec((any::<u32>(), ".{0,20}"), 0..20),
    ) {
        let value: Vec<(u32, String)> = items;
        let encoded = value.encode_to_vec();
        let decoded = Vec::<(u32, String)>::decode_from_slice(&encoded).unwrap();
        prop_assert_eq!(decoded, value);
    }

    #[test]
    fn option_roundtrip(v in prop::option::of(any::<u64>())) {
        let encoded = v.encode_to_vec();
        prop_assert_eq!(Option::<u64>::decode_from_slice(&encoded).unwrap(), v);
    }

    #[test]
    fn frames_roundtrip(kind in any::<u16>(), rid in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let msg = Message { kind, request_id: rid, payload: payload.into() };
        let framed = encode_frame(&msg);
        let mut buf = BytesMut::from(framed.as_slice());
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = BytesMut::from(garbage.as_slice());
        // Must return Ok(None), Ok(Some) or Err — never panic.
        let _ = decode_frame(&mut buf);
    }

    /// Mutation fuzzing: take a valid frame, flip one byte and/or truncate
    /// it, and drive the result through the decoder. The decoder must never
    /// panic, and whenever it accepts a frame the frame must be
    /// well-formed (payload length consistent with the prefix).
    #[test]
    fn frame_decoder_survives_mutated_frames(
        kind in any::<u16>(),
        rid in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip_at in any::<usize>(),
        flip_bits in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let msg = Message { kind, request_id: rid, payload: payload.into() };
        let mut framed = encode_frame(&msg);
        let idx = flip_at % framed.len();
        framed[idx] ^= flip_bits;
        let keep = cut % (framed.len() + 1);
        framed.truncate(keep);
        let mut buf = BytesMut::from(framed.as_slice());
        if let Ok(Some(decoded)) = decode_frame(&mut buf) {
            // Anything the decoder accepts satisfies the framing contract.
            prop_assert!(decoded.payload.len() <= framed.len());
        }
    }

    /// A truncated prefix of a valid frame is never misread as complete:
    /// the decoder asks for more bytes (or reports corruption if the
    /// mutation made the header impossible), but never yields a frame.
    #[test]
    fn truncated_frames_never_decode(
        kind in any::<u16>(),
        rid in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut in any::<usize>(),
    ) {
        let msg = Message { kind, request_id: rid, payload: payload.into() };
        let framed = encode_frame(&msg);
        let keep = cut % framed.len(); // strictly shorter than the frame
        let mut buf = BytesMut::from(&framed[..keep]);
        prop_assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn truncated_values_error_not_panic(
        v in any::<u64>(),
        cut in 0usize..8,
    ) {
        let encoded = v.encode_to_vec();
        let r = u64::decode_from_slice(&encoded[..cut]);
        prop_assert!(r.is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: every posted message is delivered or dropped, never both
    /// or neither — under any latency/loss setting.
    #[test]
    fn simulation_conserves_messages(
        seed in any::<u64>(),
        latency in 0u64..200,
        jitter in 0u64..100,
        loss in 0.0..1.0f64,
        n in 1usize..200,
    ) {
        let mut sim = Simulation::new(seed);
        sim.set_default_link(LinkModel { latency_ms: latency, jitter_ms: jitter, loss, bandwidth_kbps: 0 });
        let a = sim.add_node("a", Box::new(Counter::default()));
        let b = sim.add_node("b", Box::new(Counter::default()));
        for _ in 0..n {
            sim.post(a, b, Message::event(1, vec![0; 16]));
        }
        sim.run();
        let stats = sim.stats();
        prop_assert_eq!(stats.sent, n as u64);
        prop_assert_eq!(stats.delivered + stats.dropped, n as u64);
        let received = sim.actor_as::<Counter>(b).unwrap().0;
        prop_assert_eq!(received, stats.delivered);
    }

    /// Determinism: identical seeds and inputs yield identical traces.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), n in 1usize..100) {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            sim.set_default_link(LinkModel::mobile());
            let a = sim.add_node("a", Box::new(Counter::default()));
            let b = sim.add_node("b", Box::new(Counter::default()));
            for _ in 0..n {
                sim.post(a, b, Message::event(1, vec![0; 32]));
            }
            sim.run();
            (sim.stats(), sim.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
