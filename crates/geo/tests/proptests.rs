//! Property-based tests of the geospatial substrate.

use geo::{polyline, BoundingBox, GeoPoint, LocalProjection, Meters, QuadTree, UniformGrid};
use proptest::prelude::*;

fn lat() -> impl Strategy<Value = f64> {
    -80.0..80.0f64
}

fn lon() -> impl Strategy<Value = f64> {
    -179.0..179.0f64
}

fn point() -> impl Strategy<Value = GeoPoint> {
    (lat(), lon()).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
}

/// Points within a ~city-sized box (for metric-accuracy properties).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (45.0..46.0f64, 4.0..5.0f64).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in point(), b in point()) {
        let d1 = a.haversine_distance(&b).get();
        let d2 = b.haversine_distance(&a).get();
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn haversine_identity(a in point()) {
        prop_assert!(a.haversine_distance(&a).get() < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds(a in point(), b in point(), c in point()) {
        let ab = a.haversine_distance(&b).get();
        let bc = b.haversine_distance(&c).get();
        let ac = a.haversine_distance(&c).get();
        // Great-circle distance is a metric (allow float slack).
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_travels_requested_distance(
        a in city_point(),
        bearing in 0.0..360.0f64,
        dist in 1.0..50_000.0f64,
    ) {
        let dest = a.destination(geo::Degrees::new(bearing), Meters::new(dist));
        let measured = a.haversine_distance(&dest).get();
        prop_assert!((measured - dist).abs() / dist < 1e-3,
            "asked {dist}, got {measured}");
    }

    #[test]
    fn local_projection_roundtrips(origin in city_point(), p in city_point()) {
        let proj = LocalProjection::new(origin);
        let back = proj.unproject(&proj.project(&p));
        prop_assert!(p.haversine_distance(&back).get() < 5.0);
    }

    #[test]
    fn lerp_stays_between_endpoints(a in city_point(), b in city_point(), t in 0.0..1.0f64) {
        let m = a.lerp(&b, t);
        let bbox = BoundingBox::from_points([a, b].iter()).unwrap();
        prop_assert!(bbox.expanded(1e-9).contains(&m));
    }

    #[test]
    fn bbox_from_points_contains_all(points in prop::collection::vec(point(), 1..20)) {
        let bbox = BoundingBox::from_points(points.iter()).unwrap();
        for p in &points {
            prop_assert!(bbox.contains(p));
        }
        prop_assert!(bbox.contains(&bbox.center()));
    }

    #[test]
    fn grid_cell_center_roundtrips(p in city_point(), cell_m in 50.0..1_000.0f64) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let grid = UniformGrid::new(bbox, Meters::new(cell_m)).unwrap();
        let cell = grid.cell_of(&p);
        prop_assert_eq!(grid.cell_of(&grid.cell_center(&cell)), cell);
        // The centre is within half a diagonal of the point.
        let d = p.haversine_distance(&grid.cell_center(&cell)).get();
        prop_assert!(d <= cell_m * std::f64::consts::SQRT_2 / 2.0 + 1.0);
    }

    #[test]
    fn resample_spacing_never_exceeds_step(
        points in prop::collection::vec(city_point(), 2..15),
        step in 50.0..2_000.0f64,
    ) {
        let resampled = polyline::resample_by_distance(&points, Meters::new(step)).unwrap();
        prop_assert!(!resampled.is_empty());
        for w in resampled.windows(2) {
            let d = w[0].haversine_distance(&w[1]).get();
            prop_assert!(d <= step * 1.01 + 1.0, "spacing {d} > step {step}");
        }
    }

    #[test]
    fn resample_preserves_endpoints(
        points in prop::collection::vec(city_point(), 2..15),
        step in 50.0..2_000.0f64,
    ) {
        let resampled = polyline::resample_by_distance(&points, Meters::new(step)).unwrap();
        prop_assert!(points[0].haversine_distance(&resampled[0]).get() < 1e-6);
        let total = polyline::length(&points).get();
        if total > 0.0 {
            let last_in = points.last().unwrap();
            let last_out = resampled.last().unwrap();
            prop_assert!(last_in.haversine_distance(last_out).get() < 1.0);
        }
    }

    #[test]
    fn douglas_peucker_output_is_subset_with_endpoints(
        points in prop::collection::vec(city_point(), 2..25),
        tol in 1.0..5_000.0f64,
    ) {
        let simplified = polyline::douglas_peucker(&points, Meters::new(tol));
        prop_assert!(simplified.len() >= 2 || points.len() < 2);
        prop_assert_eq!(simplified[0], points[0]);
        prop_assert_eq!(*simplified.last().unwrap(), *points.last().unwrap());
        for p in &simplified {
            prop_assert!(points.contains(p));
        }
    }

    #[test]
    fn quadtree_nearest_matches_brute_force(
        points in prop::collection::vec(city_point(), 1..60),
        target in city_point(),
    ) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let mut tree = QuadTree::new(bbox);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let brute = points
            .iter()
            .map(|p| target.haversine_distance(p).get())
            .fold(f64::INFINITY, f64::min);
        let (_, _, d) = tree.nearest(&target).unwrap();
        prop_assert!((d.get() - brute).abs() < 1e-6);
    }

    #[test]
    fn quadtree_range_query_is_exact(
        points in prop::collection::vec(city_point(), 0..60),
        q_min in city_point(),
    ) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let mut tree = QuadTree::new(bbox);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let q_max = GeoPoint::clamped(q_min.latitude() + 0.2, q_min.longitude() + 0.2);
        let range = BoundingBox::new(q_min, q_max).unwrap();
        let found = tree.query_range(&range);
        let expected = points.iter().filter(|p| range.contains(p)).count();
        prop_assert_eq!(found.len(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An index grown incrementally (`insert`/`extend`) must answer radius
    /// and nearest-neighbor queries identically to one built from the same
    /// points in a single pass — the contract the streaming publisher's
    /// amended reference index rests on.
    #[test]
    fn incremental_point_index_matches_single_pass(
        points in prop::collection::vec(city_point(), 1..80),
        queries in prop::collection::vec(city_point(), 1..6),
        split in 0usize..80,
        cell in 50.0..2_000.0f64,
        radius in 10.0..30_000.0f64,
    ) {
        let split = split.min(points.len());
        let batch = geo::PointIndex::build(points.clone(), Meters::new(cell)).unwrap();
        let mut grown =
            geo::PointIndex::build(points[..split].to_vec(), Meters::new(cell)).unwrap();
        grown.extend(points[split..].iter().copied());
        prop_assert_eq!(grown.points(), batch.points());
        for q in &queries {
            let mut a = Vec::new();
            batch.for_each_within(q, Meters::new(radius), |i| a.push(i));
            let mut b = Vec::new();
            grown.for_each_within(q, Meters::new(radius), |i| b.push(i));
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            prop_assert_eq!(grown.nearest_distance(q), batch.nearest_distance(q));
        }
    }

    /// The same parity across the antimeridian: inserted points straddling
    /// longitude ±180 must bucket adjacently, exactly as a batch build does.
    #[test]
    fn incremental_index_handles_antimeridian(
        east_off in 0.0001..0.01f64,
        west_off in 0.0001..0.01f64,
        n in 1usize..20,
    ) {
        let points: Vec<GeoPoint> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    GeoPoint::new(0.1 * (i as f64), 180.0 - east_off).unwrap()
                } else {
                    GeoPoint::new(0.1 * (i as f64), -180.0 + west_off).unwrap()
                }
            })
            .collect();
        let batch = geo::PointIndex::build(points.clone(), Meters::new(350.0)).unwrap();
        let mut grown = geo::PointIndex::build(Vec::new(), Meters::new(350.0)).unwrap();
        grown.extend(points.iter().copied());
        let west_probe = GeoPoint::new(0.0, -179.999).unwrap();
        let east_probe = GeoPoint::new(0.0, 179.999).unwrap();
        for q in [&west_probe, &east_probe] {
            for r in [500.0, 5_000.0, 100_000.0] {
                let mut a = Vec::new();
                batch.for_each_within(q, Meters::new(r), |i| a.push(i));
                let mut b = Vec::new();
                grown.for_each_within(q, Meters::new(r), |i| b.push(i));
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "radius {}", r);
            }
            prop_assert_eq!(grown.nearest_distance(q), batch.nearest_distance(q));
        }
    }

    /// Points landing exactly on grid-cell boundaries (offsets that are
    /// integer multiples of the cell size from the anchor) keep the
    /// incremental/batch parity: bucket keys are computed the same way in
    /// both construction orders, and boundary distances stay inclusive.
    #[test]
    fn incremental_index_cell_boundary_parity(
        cells_x in 0i32..6,
        cells_y in 0i32..6,
        cell in 100.0..1_000.0f64,
    ) {
        let anchor = GeoPoint::new(45.75, 4.85).unwrap();
        // March in exact cell-size multiples east and north of the anchor,
        // so points sit on (or numerically next to) cell boundaries.
        let east = anchor.destination(
            geo::Degrees::new(90.0),
            Meters::new(cell * cells_x as f64),
        );
        let boundary = east.destination(
            geo::Degrees::new(0.0),
            Meters::new(cell * cells_y as f64),
        );
        let points = vec![anchor, east, boundary];
        let batch = geo::PointIndex::build(points.clone(), Meters::new(cell)).unwrap();
        let mut grown = geo::PointIndex::build(Vec::new(), Meters::new(cell)).unwrap();
        for p in &points {
            grown.insert(*p);
        }
        let exact = anchor.haversine_distance(&boundary);
        for index in [&batch, &grown] {
            prop_assert!(index.has_within(&anchor, exact), "boundary inclusive");
        }
        for q in &points {
            prop_assert_eq!(grown.nearest_distance(q), batch.nearest_distance(q));
            let mut a = Vec::new();
            batch.for_each_within(q, exact, |i| a.push(i));
            let mut b = Vec::new();
            grown.for_each_within(q, exact, |i| b.push(i));
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
