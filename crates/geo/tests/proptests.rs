//! Property-based tests of the geospatial substrate.

use geo::{polyline, BoundingBox, GeoPoint, LocalProjection, Meters, QuadTree, UniformGrid};
use proptest::prelude::*;

fn lat() -> impl Strategy<Value = f64> {
    -80.0..80.0f64
}

fn lon() -> impl Strategy<Value = f64> {
    -179.0..179.0f64
}

fn point() -> impl Strategy<Value = GeoPoint> {
    (lat(), lon()).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
}

/// Points within a ~city-sized box (for metric-accuracy properties).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (45.0..46.0f64, 4.0..5.0f64).prop_map(|(la, lo)| GeoPoint::new(la, lo).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in point(), b in point()) {
        let d1 = a.haversine_distance(&b).get();
        let d2 = b.haversine_distance(&a).get();
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn haversine_identity(a in point()) {
        prop_assert!(a.haversine_distance(&a).get() < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds(a in point(), b in point(), c in point()) {
        let ab = a.haversine_distance(&b).get();
        let bc = b.haversine_distance(&c).get();
        let ac = a.haversine_distance(&c).get();
        // Great-circle distance is a metric (allow float slack).
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_travels_requested_distance(
        a in city_point(),
        bearing in 0.0..360.0f64,
        dist in 1.0..50_000.0f64,
    ) {
        let dest = a.destination(geo::Degrees::new(bearing), Meters::new(dist));
        let measured = a.haversine_distance(&dest).get();
        prop_assert!((measured - dist).abs() / dist < 1e-3,
            "asked {dist}, got {measured}");
    }

    #[test]
    fn local_projection_roundtrips(origin in city_point(), p in city_point()) {
        let proj = LocalProjection::new(origin);
        let back = proj.unproject(&proj.project(&p));
        prop_assert!(p.haversine_distance(&back).get() < 5.0);
    }

    #[test]
    fn lerp_stays_between_endpoints(a in city_point(), b in city_point(), t in 0.0..1.0f64) {
        let m = a.lerp(&b, t);
        let bbox = BoundingBox::from_points([a, b].iter()).unwrap();
        prop_assert!(bbox.expanded(1e-9).contains(&m));
    }

    #[test]
    fn bbox_from_points_contains_all(points in prop::collection::vec(point(), 1..20)) {
        let bbox = BoundingBox::from_points(points.iter()).unwrap();
        for p in &points {
            prop_assert!(bbox.contains(p));
        }
        prop_assert!(bbox.contains(&bbox.center()));
    }

    #[test]
    fn grid_cell_center_roundtrips(p in city_point(), cell_m in 50.0..1_000.0f64) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let grid = UniformGrid::new(bbox, Meters::new(cell_m)).unwrap();
        let cell = grid.cell_of(&p);
        prop_assert_eq!(grid.cell_of(&grid.cell_center(&cell)), cell);
        // The centre is within half a diagonal of the point.
        let d = p.haversine_distance(&grid.cell_center(&cell)).get();
        prop_assert!(d <= cell_m * std::f64::consts::SQRT_2 / 2.0 + 1.0);
    }

    #[test]
    fn resample_spacing_never_exceeds_step(
        points in prop::collection::vec(city_point(), 2..15),
        step in 50.0..2_000.0f64,
    ) {
        let resampled = polyline::resample_by_distance(&points, Meters::new(step)).unwrap();
        prop_assert!(!resampled.is_empty());
        for w in resampled.windows(2) {
            let d = w[0].haversine_distance(&w[1]).get();
            prop_assert!(d <= step * 1.01 + 1.0, "spacing {d} > step {step}");
        }
    }

    #[test]
    fn resample_preserves_endpoints(
        points in prop::collection::vec(city_point(), 2..15),
        step in 50.0..2_000.0f64,
    ) {
        let resampled = polyline::resample_by_distance(&points, Meters::new(step)).unwrap();
        prop_assert!(points[0].haversine_distance(&resampled[0]).get() < 1e-6);
        let total = polyline::length(&points).get();
        if total > 0.0 {
            let last_in = points.last().unwrap();
            let last_out = resampled.last().unwrap();
            prop_assert!(last_in.haversine_distance(last_out).get() < 1.0);
        }
    }

    #[test]
    fn douglas_peucker_output_is_subset_with_endpoints(
        points in prop::collection::vec(city_point(), 2..25),
        tol in 1.0..5_000.0f64,
    ) {
        let simplified = polyline::douglas_peucker(&points, Meters::new(tol));
        prop_assert!(simplified.len() >= 2 || points.len() < 2);
        prop_assert_eq!(simplified[0], points[0]);
        prop_assert_eq!(*simplified.last().unwrap(), *points.last().unwrap());
        for p in &simplified {
            prop_assert!(points.contains(p));
        }
    }

    #[test]
    fn quadtree_nearest_matches_brute_force(
        points in prop::collection::vec(city_point(), 1..60),
        target in city_point(),
    ) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let mut tree = QuadTree::new(bbox);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let brute = points
            .iter()
            .map(|p| target.haversine_distance(p).get())
            .fold(f64::INFINITY, f64::min);
        let (_, _, d) = tree.nearest(&target).unwrap();
        prop_assert!((d.get() - brute).abs() < 1e-6);
    }

    #[test]
    fn quadtree_range_query_is_exact(
        points in prop::collection::vec(city_point(), 0..60),
        q_min in city_point(),
    ) {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        ).unwrap();
        let mut tree = QuadTree::new(bbox);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let q_max = GeoPoint::clamped(q_min.latitude() + 0.2, q_min.longitude() + 0.2);
        let range = BoundingBox::new(q_min, q_max).unwrap();
        let found = tree.query_range(&range);
        let expected = points.iter().filter(|p| range.contains(p)).count();
        prop_assert_eq!(found.len(), expected);
    }
}
