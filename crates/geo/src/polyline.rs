//! Algorithms on sequences of geographic points.
//!
//! The distance-regular resampling implemented here ([`resample_by_distance`])
//! is the geometric core of PRIVAPI's speed-smoothing strategy: it rebuilds a
//! path as points spaced exactly `step` metres apart, which — once uniform
//! timestamps are reassigned — makes the apparent speed constant and erases
//! dwell episodes.

use crate::error::GeoError;
use crate::point::GeoPoint;
use crate::units::Meters;

/// Total length of a polyline, in metres.
///
/// Returns zero for polylines with fewer than two points.
pub fn length(points: &[GeoPoint]) -> Meters {
    points
        .windows(2)
        .map(|w| w[0].haversine_distance(&w[1]))
        .fold(Meters::new(0.0), |acc, d| acc + d)
}

/// Cumulative distance from the first point to every point, in metres.
///
/// The result has the same length as `points`; the first entry is `0.0`.
pub fn cumulative_distances(points: &[GeoPoint]) -> Vec<f64> {
    let mut out = Vec::with_capacity(points.len());
    let mut acc = 0.0;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            acc += points[i - 1].haversine_distance(p).get();
        }
        out.push(acc);
    }
    out
}

/// The point located `distance` metres along the polyline.
///
/// Distances beyond the path length return the final point; negative
/// distances return the first point.
///
/// # Errors
///
/// Returns [`GeoError::EmptyPolyline`] when `points` is empty.
pub fn point_at_distance(points: &[GeoPoint], distance: Meters) -> Result<GeoPoint, GeoError> {
    if points.is_empty() {
        return Err(GeoError::EmptyPolyline);
    }
    if points.len() == 1 || distance.get() <= 0.0 {
        return Ok(points[0]);
    }
    let mut remaining = distance.get();
    for w in points.windows(2) {
        let seg = w[0].haversine_distance(&w[1]).get();
        if seg > 0.0 && remaining <= seg {
            return Ok(w[0].lerp(&w[1], remaining / seg));
        }
        remaining -= seg;
    }
    Ok(*points.last().expect("non-empty checked above"))
}

/// Resamples a polyline into points spaced exactly `step` metres apart.
///
/// The first point of the input is always kept; the exact last point is
/// appended when the path length is not a multiple of `step` (so the output
/// always covers the full extent of the input). A single-point input is
/// returned unchanged.
///
/// # Errors
///
/// Returns [`GeoError::EmptyPolyline`] for an empty input and
/// [`GeoError::InvalidSize`] when `step` is not strictly positive.
///
/// # Example
///
/// ```
/// use geo::{GeoPoint, Meters, polyline};
///
/// let path = vec![
///     GeoPoint::new(45.0, 4.0).unwrap(),
///     GeoPoint::new(45.0, 4.02).unwrap(),
/// ];
/// let resampled = polyline::resample_by_distance(&path, Meters::new(100.0)).unwrap();
/// // Consecutive points are ~100 m apart.
/// for w in resampled.windows(2) {
///     let d = w[0].haversine_distance(&w[1]).get();
///     assert!(d <= 100.0 + 1e-6);
/// }
/// ```
pub fn resample_by_distance(
    points: &[GeoPoint],
    step: Meters,
) -> Result<Vec<GeoPoint>, GeoError> {
    if points.is_empty() {
        return Err(GeoError::EmptyPolyline);
    }
    if step.get() <= 0.0 || !step.get().is_finite() {
        return Err(GeoError::InvalidSize(step.get()));
    }
    if points.len() == 1 {
        return Ok(vec![points[0]]);
    }
    let total = length(points).get();
    if total == 0.0 {
        // Degenerate path: all points identical.
        return Ok(vec![points[0]]);
    }
    let mut out = vec![points[0]];
    let mut d = step.get();
    while d < total {
        out.push(point_at_distance(points, Meters::new(d))?);
        d += step.get();
    }
    let last = *points.last().expect("len >= 2");
    if out
        .last()
        .map(|p| p.haversine_distance(&last).get() > 1e-9)
        .unwrap_or(true)
    {
        out.push(last);
    }
    Ok(out)
}

/// Simplifies a polyline with the Douglas–Peucker algorithm.
///
/// Points whose perpendicular offset from the enclosing chord is below
/// `tolerance` metres are dropped. The first and last points are always kept.
pub fn douglas_peucker(points: &[GeoPoint], tolerance: Meters) -> Vec<GeoPoint> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((start, end)) = stack.pop() {
        if end <= start + 1 {
            continue;
        }
        let mut max_dist = 0.0;
        let mut max_idx = start;
        for (i, p) in points.iter().enumerate().take(end).skip(start + 1) {
            let d = perpendicular_distance(p, &points[start], &points[end]);
            if d > max_dist {
                max_dist = d;
                max_idx = i;
            }
        }
        if max_dist > tolerance.get() {
            keep[max_idx] = true;
            stack.push((start, max_idx));
            stack.push((max_idx, end));
        }
    }
    points
        .iter()
        .zip(keep.iter())
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

/// Approximate perpendicular distance (metres) from `p` to segment `a`–`b`.
fn perpendicular_distance(p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> f64 {
    // Work in a local planar frame centred on `a`; accurate at city scale.
    let proj = crate::projection::LocalProjection::new(*a);
    let pa = proj.project(p);
    let pb = proj.project(b);
    let seg_len2 = pb.x * pb.x + pb.y * pb.y;
    if seg_len2 == 0.0 {
        return (pa.x * pa.x + pa.y * pa.y).sqrt();
    }
    let t = ((pa.x * pb.x + pa.y * pb.y) / seg_len2).clamp(0.0, 1.0);
    let dx = pa.x - t * pb.x;
    let dy = pa.y - t * pb.y;
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn straight_path() -> Vec<GeoPoint> {
        (0..=10).map(|i| p(45.0, 4.0 + 0.001 * i as f64)).collect()
    }

    #[test]
    fn length_of_empty_and_single() {
        assert_eq!(length(&[]).get(), 0.0);
        assert_eq!(length(&[p(1.0, 1.0)]).get(), 0.0);
    }

    #[test]
    fn cumulative_matches_length() {
        let path = straight_path();
        let cum = cumulative_distances(&path);
        assert_eq!(cum.len(), path.len());
        assert_eq!(cum[0], 0.0);
        assert!((cum.last().unwrap() - length(&path).get()).abs() < 1e-9);
        assert!(cum.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn point_at_distance_endpoints() {
        let path = straight_path();
        assert_eq!(
            point_at_distance(&path, Meters::new(-5.0)).unwrap(),
            path[0]
        );
        let total = length(&path);
        assert_eq!(
            point_at_distance(&path, total + Meters::new(100.0)).unwrap(),
            *path.last().unwrap()
        );
        assert!(point_at_distance(&[], Meters::new(0.0)).is_err());
    }

    #[test]
    fn point_at_distance_midway() {
        let path = vec![p(45.0, 4.0), p(45.0, 4.01)];
        let total = length(&path).get();
        let mid = point_at_distance(&path, Meters::new(total / 2.0)).unwrap();
        assert!((mid.longitude() - 4.005).abs() < 1e-6);
    }

    #[test]
    fn resample_spacing_is_uniform() {
        let path = straight_path();
        let step = 50.0;
        let res = resample_by_distance(&path, Meters::new(step)).unwrap();
        assert!(res.len() > 2);
        for w in res.windows(2).take(res.len().saturating_sub(2)) {
            let d = w[0].haversine_distance(&w[1]).get();
            assert!((d - step).abs() < 0.5, "spacing {d}");
        }
        // Endpoints preserved.
        assert_eq!(res[0], path[0]);
        assert!(
            res.last()
                .unwrap()
                .haversine_distance(path.last().unwrap())
                .get()
                < 1e-6
        );
    }

    #[test]
    fn resample_rejects_bad_step() {
        let path = straight_path();
        assert!(resample_by_distance(&path, Meters::new(0.0)).is_err());
        assert!(resample_by_distance(&path, Meters::new(-1.0)).is_err());
        assert!(resample_by_distance(&[], Meters::new(10.0)).is_err());
    }

    #[test]
    fn resample_degenerate_stationary_path() {
        let path = vec![p(45.0, 4.0); 5];
        let res = resample_by_distance(&path, Meters::new(10.0)).unwrap();
        assert_eq!(res, vec![p(45.0, 4.0)]);
    }

    #[test]
    fn resample_single_point() {
        let res = resample_by_distance(&[p(1.0, 2.0)], Meters::new(10.0)).unwrap();
        assert_eq!(res, vec![p(1.0, 2.0)]);
    }

    #[test]
    fn douglas_peucker_collinear_collapses() {
        let path = straight_path();
        let simplified = douglas_peucker(&path, Meters::new(1.0));
        assert_eq!(simplified.len(), 2);
        assert_eq!(simplified[0], path[0]);
        assert_eq!(simplified[1], *path.last().unwrap());
    }

    #[test]
    fn douglas_peucker_keeps_corner() {
        let path = vec![p(45.0, 4.0), p(45.0, 4.01), p(45.01, 4.01)];
        let simplified = douglas_peucker(&path, Meters::new(1.0));
        assert_eq!(simplified.len(), 3);
    }

    #[test]
    fn douglas_peucker_short_input_unchanged() {
        let path = vec![p(45.0, 4.0), p(45.0, 4.01)];
        assert_eq!(douglas_peucker(&path, Meters::new(5.0)), path);
    }
}
