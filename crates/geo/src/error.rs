//! Error type for geospatial operations.

use std::error::Error;
use std::fmt;

/// Errors produced by geospatial primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude was outside the `[-90, 90]` range.
    InvalidLatitude(f64),
    /// A longitude was outside the `[-180, 180]` range.
    InvalidLongitude(f64),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A bounding box was constructed with min > max.
    InvalidBoundingBox {
        /// Offending minimum corner description.
        min: String,
        /// Offending maximum corner description.
        max: String,
    },
    /// An operation required a non-empty sequence of points.
    EmptyPolyline,
    /// A grid or quadtree was configured with a non-positive size.
    InvalidSize(f64),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} outside [-90, 90]")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} outside [-180, 180]")
            }
            GeoError::NonFiniteCoordinate => write!(f, "coordinate was NaN or infinite"),
            GeoError::InvalidBoundingBox { min, max } => {
                write!(f, "invalid bounding box: min {min} exceeds max {max}")
            }
            GeoError::EmptyPolyline => write!(f, "operation requires a non-empty polyline"),
            GeoError::InvalidSize(v) => write!(f, "size {v} must be strictly positive"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GeoError::InvalidLatitude(95.0).to_string(),
            "latitude 95 outside [-90, 90]"
        );
        assert_eq!(
            GeoError::EmptyPolyline.to_string(),
            "operation requires a non-empty polyline"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GeoError>();
    }
}
