//! A point quadtree over geographic coordinates.
//!
//! Supports bulk insertion, rectangular range queries and nearest-neighbour
//! search. Used by the mobility substrate to match extracted points of
//! interest against ground truth, and by the coverage-aware virtual-sensor
//! strategy.

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use crate::units::Meters;

const NODE_CAPACITY: usize = 16;
const MAX_DEPTH: usize = 24;

/// A point quadtree storing a payload `T` per point.
///
/// # Example
///
/// ```
/// use geo::{BoundingBox, GeoPoint, QuadTree};
///
/// let bbox = BoundingBox::new(
///     GeoPoint::new(0.0, 0.0).unwrap(),
///     GeoPoint::new(10.0, 10.0).unwrap(),
/// ).unwrap();
/// let mut tree = QuadTree::new(bbox);
/// tree.insert(GeoPoint::new(1.0, 1.0).unwrap(), "a");
/// tree.insert(GeoPoint::new(9.0, 9.0).unwrap(), "b");
///
/// let query = BoundingBox::new(
///     GeoPoint::new(0.0, 0.0).unwrap(),
///     GeoPoint::new(5.0, 5.0).unwrap(),
/// ).unwrap();
/// let found = tree.query_range(&query);
/// assert_eq!(found.len(), 1);
/// assert_eq!(*found[0].1, "a");
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    bbox: BoundingBox,
    items: Vec<(GeoPoint, T)>,
    children: Option<Box<[Node<T>; 4]>>,
    depth: usize,
}

impl<T> QuadTree<T> {
    /// Creates an empty quadtree covering `bbox`.
    pub fn new(bbox: BoundingBox) -> Self {
        Self {
            root: Node {
                bbox,
                items: Vec::new(),
                children: None,
                depth: 0,
            },
            len: 0,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point with its payload.
    ///
    /// Points outside the tree's bounding box are clamped into it (they are
    /// stored at the nearest in-box location for indexing purposes but keep
    /// their payload intact).
    pub fn insert(&mut self, point: GeoPoint, value: T) {
        let point = clamp_into(&self.root.bbox, point);
        self.root.insert(point, value);
        self.len += 1;
    }

    /// All `(point, payload)` pairs lying inside `range`.
    pub fn query_range(&self, range: &BoundingBox) -> Vec<(GeoPoint, &T)> {
        let mut out = Vec::new();
        self.root.query_range(range, &mut out);
        out
    }

    /// The stored point nearest to `target`, with its payload and distance.
    ///
    /// Returns `None` on an empty tree.
    pub fn nearest(&self, target: &GeoPoint) -> Option<(GeoPoint, &T, Meters)> {
        let mut best: Option<(GeoPoint, &T, f64)> = None;
        self.root.nearest(target, &mut best);
        best.map(|(p, v, d)| (p, v, Meters::new(d)))
    }

    /// All stored points within `radius` of `target`.
    pub fn within_radius(&self, target: &GeoPoint, radius: Meters) -> Vec<(GeoPoint, &T)> {
        // Conservative degree-space window around the target, then refine.
        let lat_margin = radius.get() / 111_320.0;
        let cos_lat = target.latitude().to_radians().cos().max(0.01);
        let lon_margin = radius.get() / (111_320.0 * cos_lat);
        let window = BoundingBox::new(
            GeoPoint::clamped(
                target.latitude() - lat_margin,
                target.longitude() - lon_margin,
            ),
            GeoPoint::clamped(
                target.latitude() + lat_margin,
                target.longitude() + lon_margin,
            ),
        )
        .expect("window corners ordered by construction");
        self.query_range(&window)
            .into_iter()
            .filter(|(p, _)| target.haversine_distance(p).get() <= radius.get())
            .collect()
    }
}

fn clamp_into(bbox: &BoundingBox, p: GeoPoint) -> GeoPoint {
    GeoPoint::clamped(
        p.latitude()
            .clamp(bbox.min().latitude(), bbox.max().latitude()),
        p.longitude()
            .clamp(bbox.min().longitude(), bbox.max().longitude()),
    )
}

impl<T> Node<T> {
    fn insert(&mut self, point: GeoPoint, value: T) {
        if let Some(children) = self.children.as_mut() {
            let idx = child_index(&self.bbox, &point);
            children[idx].insert(point, value);
            return;
        }
        self.items.push((point, value));
        if self.items.len() > NODE_CAPACITY && self.depth < MAX_DEPTH {
            self.subdivide();
        }
    }

    fn subdivide(&mut self) {
        let min = self.bbox.min();
        let max = self.bbox.max();
        let c = self.bbox.center();
        let make = |min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64| Node {
            bbox: BoundingBox::new(
                GeoPoint::clamped(min_lat, min_lon),
                GeoPoint::clamped(max_lat, max_lon),
            )
            .expect("quadrant corners ordered"),
            items: Vec::new(),
            children: None,
            depth: self.depth + 1,
        };
        let children = Box::new([
            // 0: south-west
            make(min.latitude(), min.longitude(), c.latitude(), c.longitude()),
            // 1: south-east
            make(min.latitude(), c.longitude(), c.latitude(), max.longitude()),
            // 2: north-west
            make(c.latitude(), min.longitude(), max.latitude(), c.longitude()),
            // 3: north-east
            make(c.latitude(), c.longitude(), max.latitude(), max.longitude()),
        ]);
        self.children = Some(children);
        let items = std::mem::take(&mut self.items);
        let children = self.children.as_mut().expect("just set");
        for (p, v) in items {
            let idx = child_index(&self.bbox, &p);
            children[idx].insert(p, v);
        }
    }

    fn query_range<'a>(&'a self, range: &BoundingBox, out: &mut Vec<(GeoPoint, &'a T)>) {
        if !self.bbox.intersects(range) {
            return;
        }
        for (p, v) in &self.items {
            if range.contains(p) {
                out.push((*p, v));
            }
        }
        if let Some(children) = self.children.as_ref() {
            for child in children.iter() {
                child.query_range(range, out);
            }
        }
    }

    fn nearest<'a>(&'a self, target: &GeoPoint, best: &mut Option<(GeoPoint, &'a T, f64)>) {
        // Prune: lower-bound distance from target to this node's box.
        let closest = clamp_into(&self.bbox, *target);
        let lower_bound = target.haversine_distance(&closest).get();
        if let Some((_, _, best_d)) = best {
            if lower_bound > *best_d {
                return;
            }
        }
        for (p, v) in &self.items {
            let d = target.haversine_distance(p).get();
            if best.as_ref().map(|(_, _, bd)| d < *bd).unwrap_or(true) {
                *best = Some((*p, v, d));
            }
        }
        if let Some(children) = self.children.as_ref() {
            // Visit children closest-first for better pruning.
            let mut order: Vec<usize> = (0..4).collect();
            order.sort_by(|&a, &b| {
                let da = target
                    .haversine_distance(&clamp_into(&children[a].bbox, *target))
                    .get();
                let db = target
                    .haversine_distance(&clamp_into(&children[b].bbox, *target))
                    .get();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            });
            for i in order {
                children[i].nearest(target, best);
            }
        }
    }
}

fn child_index(bbox: &BoundingBox, p: &GeoPoint) -> usize {
    let c = bbox.center();
    let east = p.longitude() >= c.longitude();
    let north = p.latitude() >= c.latitude();
    match (north, east) {
        (false, false) => 0,
        (false, true) => 1,
        (true, false) => 2,
        (true, true) => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn world() -> BoundingBox {
        BoundingBox::new(p(40.0, 0.0), p(50.0, 10.0)).unwrap()
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree: QuadTree<u32> = QuadTree::new(world());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.nearest(&p(45.0, 5.0)).is_none());
        assert!(tree.query_range(&world()).is_empty());
    }

    #[test]
    fn insert_and_range_query() {
        let mut tree = QuadTree::new(world());
        for i in 0..100 {
            let lat = 40.0 + (i % 10) as f64;
            let lon = (i / 10) as f64;
            tree.insert(p(lat.min(50.0), lon), i);
        }
        assert_eq!(tree.len(), 100);
        let q = BoundingBox::new(p(40.0, 0.0), p(42.0, 2.0)).unwrap();
        let found = tree.query_range(&q);
        for (pt, _) in &found {
            assert!(q.contains(pt));
        }
        assert!(!found.is_empty());
    }

    #[test]
    fn subdivision_preserves_items() {
        let mut tree = QuadTree::new(world());
        // Insert far more than NODE_CAPACITY points.
        for i in 0..500u32 {
            let lat = 40.0 + (i as f64 * 0.017) % 10.0;
            let lon = (i as f64 * 0.031) % 10.0;
            tree.insert(p(lat, lon), i);
        }
        let all = tree.query_range(&world());
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn nearest_finds_closest() {
        let mut tree = QuadTree::new(world());
        let pts = [
            (p(41.0, 1.0), "a"),
            (p(45.0, 5.0), "b"),
            (p(49.0, 9.0), "c"),
        ];
        for (pt, v) in pts {
            tree.insert(pt, v);
        }
        let (found, v, d) = tree.nearest(&p(44.9, 5.1)).unwrap();
        assert_eq!(*v, "b");
        assert_eq!(found, p(45.0, 5.0));
        assert!(d.get() < 20_000.0);
    }

    #[test]
    fn nearest_agrees_with_brute_force() {
        let mut tree = QuadTree::new(world());
        let mut pts = Vec::new();
        // Deterministic pseudo-random scatter.
        let mut seed = 42u64;
        for i in 0..300u32 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lat = 40.0 + (seed >> 33) as f64 / u32::MAX as f64 * 10.0;
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lon = (seed >> 33) as f64 / u32::MAX as f64 * 10.0;
            let q = p(lat.min(50.0), lon.min(10.0));
            tree.insert(q, i);
            pts.push(q);
        }
        for &(qlat, qlon) in &[(43.3, 2.2), (47.9, 8.8), (40.0, 0.0), (50.0, 10.0)] {
            let target = p(qlat, qlon);
            let brute = pts
                .iter()
                .map(|q| target.haversine_distance(q).get())
                .fold(f64::INFINITY, f64::min);
            let (_, _, d) = tree.nearest(&target).unwrap();
            assert!(
                (d.get() - brute).abs() < 1e-6,
                "tree {} vs brute {}",
                d.get(),
                brute
            );
        }
    }

    #[test]
    fn within_radius_filters_correctly() {
        let mut tree = QuadTree::new(world());
        tree.insert(p(45.0, 5.0), "center");
        tree.insert(p(45.001, 5.0), "near"); // ~111 m north
        tree.insert(p(45.1, 5.0), "far"); // ~11 km north
        let found = tree.within_radius(&p(45.0, 5.0), Meters::new(500.0));
        let labels: Vec<&str> = found.iter().map(|(_, v)| **v).collect();
        assert!(labels.contains(&"center"));
        assert!(labels.contains(&"near"));
        assert!(!labels.contains(&"far"));
    }

    #[test]
    fn out_of_box_points_are_clamped_not_lost() {
        let mut tree = QuadTree::new(world());
        tree.insert(p(60.0, 20.0), "outside");
        assert_eq!(tree.len(), 1);
        let all = tree.query_range(&world());
        assert_eq!(all.len(), 1);
    }
}
