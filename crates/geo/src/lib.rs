//! Geospatial substrate for the crowd-sensing platform.
//!
//! This crate provides the low-level geographic primitives every other crate
//! in the workspace builds on:
//!
//! * [`GeoPoint`] — WGS-84 latitude/longitude points with great-circle
//!   (haversine) distance, bearing and destination computations;
//! * [`LocalProjection`] — a fast local east/north (equirectangular) tangent
//!   projection used to work in metric coordinates around a reference point;
//! * [`BoundingBox`] — axis-aligned geographic boxes;
//! * [`UniformGrid`] — a uniform metric cell index used for heat-maps and
//!   crowded-place analyses;
//! * [`QuadTree`] — a point quadtree for range and nearest-neighbour queries;
//! * [`PointIndex`] — a hash-grid neighbor index answering fixed-radius and
//!   nearest-neighbor queries with exact haversine results (the matching
//!   substrate of PRIVAPI's POI attack);
//! * [`polyline`] — algorithms on point sequences: length, interpolation,
//!   distance-regular resampling (the core primitive behind PRIVAPI's speed
//!   smoothing) and Douglas–Peucker simplification.
//!
//! # Example
//!
//! ```
//! use geo::{GeoPoint, Meters};
//!
//! let lille = GeoPoint::new(50.6292, 3.0573).unwrap();
//! let lyon = GeoPoint::new(45.7640, 4.8357).unwrap();
//! let d = lille.haversine_distance(&lyon);
//! assert!((d.get() - 558_000.0).abs() < 10_000.0); // ~558 km
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
mod grid;
mod index;
mod point;
mod projection;
mod quadtree;
mod units;

pub mod polyline;

pub use bbox::{BoundingBox, GRID_ANCHOR_MARGIN_DEG, GRID_ANCHOR_QUANTUM_DEG};
pub use error::GeoError;
pub use grid::{CellId, UniformGrid};
pub use index::PointIndex;
pub use point::{GeoPoint, EARTH_RADIUS_M};
pub use projection::{LocalProjection, ProjectedPoint, WebMercator};
pub use quadtree::QuadTree;
pub use units::{Degrees, Kilometers, KmPerHour, Meters, MetersPerSecond, Radians};
