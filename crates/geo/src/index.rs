//! A hash-grid neighbor index over geographic points.
//!
//! [`PointIndex`] buckets points into square metric cells (via a
//! [`LocalProjection`]) and answers fixed-radius and nearest-neighbor
//! queries by inspecting only nearby cells instead of scanning every point.
//! All *distance comparisons* are exact haversine — the grid only prunes
//! candidates — so query results are identical to a brute-force scan over
//! the same points, provided the indexed extent keeps the equirectangular
//! projection's distortion inside the built-in safety margins: the
//! latitude-scale ratio `cos(lat)/cos(anchor_lat)` of every indexed point
//! *and every query point* must stay within
//! `[PRUNE_MARGIN, 1/PRUNE_MARGIN]` = `[0.75, 1.33]` (checked by
//! `debug_assert`s at build and query time). That comfortably covers
//! city- and region-scale extents — hundreds of kilometres at mid
//! latitudes, the working set of every mobility analysis here — but *not*
//! arbitrary continental spans. Bucket keys are computed from *wrapped*
//! longitude deltas against the anchor point, so datasets straddling the
//! antimeridian bucket correctly; points and queries must lie within a
//! hemisphere of the anchor (longitude extent < 180°), as any flat
//! projection needs.
//!
//! The index is the matching substrate of PRIVAPI's POI attack: reference
//! POIs are bucketed once per evaluation run and probed per candidate,
//! turning the O(R·E) pairwise matching scans into neighbor-cell lookups.

use crate::error::GeoError;
use crate::point::{GeoPoint, EARTH_RADIUS_M};
use crate::units::Meters;
use std::collections::HashMap;

/// Planar east-west distances inflate true ground distances by
/// `cos(anchor_lat)/cos(lat)` — at most `1 / PRUNE_MARGIN ≈ 1.33` inside
/// the asserted latitude band — so a haversine radius of `r` projects
/// under `r * REACH_MARGIN` planar metres (the extra slack absorbs
/// second-order equirectangular error) and radius queries scanning cells
/// out to that inflated reach miss nothing.
const REACH_MARGIN: f64 = 1.5;

/// Latitude-band bound backing both directions of the planar/haversine
/// sandwich: every indexed point and every query must keep
/// `cos(lat)/cos(anchor_lat)` within `[PRUNE_MARGIN, 1/PRUNE_MARGIN]`
/// (debug-asserted). Then a point at planar distance `d` lies at haversine
/// distance at least `d * PRUNE_MARGIN`, so nearest-neighbor ring
/// expansion can stop once the best hit beats that lower bound.
const PRUNE_MARGIN: f64 = 0.75;

/// Below this population a brute-force scan beats ring expansion for
/// nearest-neighbor queries (and is trivially exact), so the index falls
/// back to it.
const NEAREST_SCAN_THRESHOLD: usize = 64;

/// A spatial hash grid over a set of points, built in one pass
/// ([`PointIndex::build`]) or grown incrementally
/// ([`PointIndex::insert`] / [`PointIndex::extend`]) — both construction
/// orders yield structurally identical indexes.
///
/// # Example
///
/// ```
/// use geo::{GeoPoint, Meters, PointIndex};
///
/// let site = GeoPoint::new(45.75, 4.85).unwrap();
/// let near = site.destination(geo::Degrees::new(90.0), Meters::new(100.0));
/// let far = site.destination(geo::Degrees::new(90.0), Meters::new(5_000.0));
/// let index = PointIndex::build(vec![near, far], Meters::new(350.0)).unwrap();
/// assert!(index.has_within(&site, Meters::new(350.0)));
/// let nearest = index.nearest_distance(&site).unwrap();
/// assert!((nearest.get() - 100.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PointIndex {
    anchor: GeoPoint,
    cos_lat0: f64,
    cell_m: f64,
    buckets: HashMap<(i32, i32), Vec<u32>>,
    /// `(min_x, min_y, max_x, max_y)` over occupied bucket keys; `None`
    /// when the index is empty. Lets nearest-neighbor queries start their
    /// ring walk at the indexed extent instead of probing empty rings.
    key_bounds: Option<(i32, i32, i32, i32)>,
    points: Vec<GeoPoint>,
}

impl PointIndex {
    /// Indexes `points` into square cells of side `cell`.
    ///
    /// The projection is anchored on the first point (queries and points are
    /// projected consistently, so the anchor choice only affects bucket
    /// labels, never results).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidSize`] when `cell` is not strictly
    /// positive and finite.
    pub fn build(points: Vec<GeoPoint>, cell: Meters) -> Result<Self, GeoError> {
        if cell.get() <= 0.0 || !cell.get().is_finite() {
            return Err(GeoError::InvalidSize(cell.get()));
        }
        let anchor = points
            .first()
            .copied()
            .unwrap_or_else(|| GeoPoint::clamped(0.0, 0.0));
        let cos_lat0 = anchor.latitude().to_radians().cos();
        debug_assert!(
            points
                .iter()
                .all(|p| Self::within_latitude_band(cos_lat0, p)),
            "indexed latitude extent exceeds the exactness margins (see module docs)"
        );
        let cell_m = cell.get();
        let mut buckets: HashMap<(i32, i32), Vec<u32>> = HashMap::new();
        let mut key_bounds: Option<(i32, i32, i32, i32)> = None;
        for (i, p) in points.iter().enumerate() {
            let key = Self::key_for(&anchor, cos_lat0, cell_m, p);
            key_bounds = Some(match key_bounds {
                None => (key.0, key.1, key.0, key.1),
                Some((min_x, min_y, max_x, max_y)) => (
                    min_x.min(key.0),
                    min_y.min(key.1),
                    max_x.max(key.0),
                    max_y.max(key.1),
                ),
            });
            buckets.entry(key).or_default().push(i as u32);
        }
        Ok(Self {
            anchor,
            cos_lat0,
            cell_m,
            buckets,
            key_bounds,
            points,
        })
    }

    /// Bucket key of `p`: a local equirectangular projection around the
    /// anchor, with the longitude delta wrapped into `[-180°, 180°)` so
    /// clusters straddling the antimeridian stay adjacent.
    fn key_for(anchor: &GeoPoint, cos_lat0: f64, cell_m: f64, p: &GeoPoint) -> (i32, i32) {
        let dlat = p.latitude() - anchor.latitude();
        let mut dlon = p.longitude() - anchor.longitude();
        if dlon >= 180.0 {
            dlon -= 360.0;
        } else if dlon < -180.0 {
            dlon += 360.0;
        }
        let x = EARTH_RADIUS_M * dlon.to_radians() * cos_lat0;
        let y = EARTH_RADIUS_M * dlat.to_radians();
        ((x / cell_m).floor() as i32, (y / cell_m).floor() as i32)
    }

    fn key(&self, p: &GeoPoint) -> (i32, i32) {
        Self::key_for(&self.anchor, self.cos_lat0, self.cell_m, p)
    }

    /// Appends one point to the index.
    ///
    /// Inserting into an empty index re-anchors the projection on the new
    /// point — exactly the anchor [`PointIndex::build`] would have chosen —
    /// so an index grown incrementally from empty is *structurally
    /// identical* (anchor, bucket keys, bucket order, key bounds) to one
    /// built from the same points in one pass, and therefore answers every
    /// query bit-for-bit the same. The same latitude-band margins as
    /// [`PointIndex::build`] apply (debug-asserted).
    pub fn insert(&mut self, point: GeoPoint) {
        if self.points.is_empty() {
            self.anchor = point;
            self.cos_lat0 = point.latitude().to_radians().cos();
        }
        debug_assert!(
            Self::within_latitude_band(self.cos_lat0, &point),
            "inserted latitude extent exceeds the exactness margins (see module docs)"
        );
        let key = self.key(&point);
        self.key_bounds = Some(match self.key_bounds {
            None => (key.0, key.1, key.0, key.1),
            Some((min_x, min_y, max_x, max_y)) => (
                min_x.min(key.0),
                min_y.min(key.1),
                max_x.max(key.0),
                max_y.max(key.1),
            ),
        });
        self.buckets
            .entry(key)
            .or_default()
            .push(self.points.len() as u32);
        self.points.push(point);
    }

    /// Appends every point of `points` to the index, in order
    /// (see [`PointIndex::insert`]).
    pub fn extend<I: IntoIterator<Item = GeoPoint>>(&mut self, points: I) {
        for p in points {
            self.insert(p);
        }
    }

    /// Whether `p` keeps the planar/haversine sandwich inside the margins.
    fn within_latitude_band(cos_lat0: f64, p: &GeoPoint) -> bool {
        let ratio = p.latitude().to_radians().cos() / cos_lat0.max(f64::EPSILON);
        (PRUNE_MARGIN..=1.0 / PRUNE_MARGIN).contains(&ratio)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in insertion order (query callbacks receive
    /// indices into this slice).
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// The cell side the index was built with.
    pub fn cell_size(&self) -> Meters {
        Meters::new(self.cell_m)
    }

    /// Calls `f` with the index of every point whose haversine distance to
    /// `query` is at most `radius` (inclusive — boundary points count).
    ///
    /// Visit order is unspecified; callers must not depend on it.
    pub fn for_each_within<F: FnMut(usize)>(&self, query: &GeoPoint, radius: Meters, mut f: F) {
        let r = radius.get();
        if self.points.is_empty() || r < 0.0 || !r.is_finite() {
            return;
        }
        debug_assert!(
            Self::within_latitude_band(self.cos_lat0, query),
            "query latitude outside the exactness margins (see module docs)"
        );
        let reach = (((r / self.cell_m) * REACH_MARGIN).ceil() as i64 + 1).min(1 << 20);
        let center = self.key(query);
        let window = (2 * reach + 1).saturating_mul(2 * reach + 1);
        if (self.buckets.len() as i64) <= window {
            // Fewer occupied cells than the query window: walk the buckets.
            for (key, ids) in &self.buckets {
                if i64::from(key.0 - center.0).abs() <= reach
                    && i64::from(key.1 - center.1).abs() <= reach
                {
                    for &i in ids {
                        if self.points[i as usize].haversine_distance(query).get() <= r {
                            f(i as usize);
                        }
                    }
                }
            }
        } else {
            let reach = reach as i32;
            for ky in (center.1.saturating_sub(reach))..=(center.1.saturating_add(reach)) {
                for kx in (center.0.saturating_sub(reach))..=(center.0.saturating_add(reach)) {
                    if let Some(ids) = self.buckets.get(&(kx, ky)) {
                        for &i in ids {
                            if self.points[i as usize].haversine_distance(query).get() <= r {
                                f(i as usize);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether any indexed point lies within `radius` of `query`
    /// (inclusive).
    pub fn has_within(&self, query: &GeoPoint, radius: Meters) -> bool {
        let mut hit = false;
        self.for_each_within(query, radius, |_| hit = true);
        hit
    }

    /// The exact haversine distance from `query` to its nearest indexed
    /// point, or `None` for an empty index.
    ///
    /// Equals the brute-force minimum bit-for-bit: small indexes are
    /// scanned outright, large ones ring-expand with a pruning bound that
    /// only skips points provably farther than the best hit.
    pub fn nearest_distance(&self, query: &GeoPoint) -> Option<Meters> {
        if self.points.is_empty() {
            return None;
        }
        if self.points.len() <= NEAREST_SCAN_THRESHOLD {
            let best = self
                .points
                .iter()
                .map(|p| p.haversine_distance(query).get())
                .fold(f64::INFINITY, f64::min);
            return Some(Meters::new(best));
        }
        debug_assert!(
            Self::within_latitude_band(self.cos_lat0, query),
            "query latitude outside the exactness margins (see module docs)"
        );
        let center = self.key(query);
        let (min_x, min_y, max_x, max_y) = self.key_bounds.expect("non-empty index has bounds");
        // Occupied cells only exist inside the key bounds: the first ring
        // that can touch them is the Chebyshev distance from the query's
        // cell to the bounds box (0 when inside), and no ring beyond the
        // farthest corner holds anything.
        let axis_gap = |c: i32, lo: i32, hi: i32| {
            i64::from(lo)
                .saturating_sub(i64::from(c))
                .max(i64::from(c).saturating_sub(i64::from(hi)))
                .max(0)
        };
        let start_ring = axis_gap(center.0, min_x, max_x).max(axis_gap(center.1, min_y, max_y));
        let axis_span = |c: i32, lo: i32, hi: i32| {
            (i64::from(c) - i64::from(lo))
                .abs()
                .max((i64::from(c) - i64::from(hi)).abs())
        };
        let max_ring = axis_span(center.0, min_x, max_x).max(axis_span(center.1, min_y, max_y));
        let mut best = f64::INFINITY;
        for ring in start_ring..=max_ring {
            self.scan_ring(center, ring, query, &mut best);
            if best <= ring as f64 * self.cell_m * PRUNE_MARGIN {
                break;
            }
        }
        Some(Meters::new(best))
    }

    /// Folds the minimum haversine distance over every point bucketed at
    /// Chebyshev distance exactly `ring` from `center`.
    fn scan_ring(&self, center: (i32, i32), ring: i64, query: &GeoPoint, best: &mut f64) {
        let mut visit = |kx: i64, ky: i64| {
            let (Ok(kx), Ok(ky)) = (i32::try_from(kx), i32::try_from(ky)) else {
                return;
            };
            if let Some(ids) = self.buckets.get(&(kx, ky)) {
                for &i in ids {
                    let d = self.points[i as usize].haversine_distance(query).get();
                    *best = best.min(d);
                }
            }
        };
        let (cx, cy) = (i64::from(center.0), i64::from(center.1));
        if ring == 0 {
            visit(cx, cy);
            return;
        }
        for kx in (cx - ring)..=(cx + ring) {
            visit(kx, cy - ring);
            visit(kx, cy + ring);
        }
        for ky in (cy - ring + 1)..=(cy + ring - 1) {
            visit(cx - ring, ky);
            visit(cx + ring, ky);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Degrees;

    fn site() -> GeoPoint {
        GeoPoint::new(45.75, 4.85).unwrap()
    }

    /// A deterministic scatter of points around the site, tens of metres to
    /// tens of kilometres out.
    fn scatter(n: usize) -> Vec<GeoPoint> {
        (0..n)
            .map(|i| {
                let bearing = Degrees::new((i * 37 % 360) as f64);
                let dist = Meters::new(10.0 + (i * i * 97 % 30_000) as f64);
                site().destination(bearing, dist)
            })
            .collect()
    }

    fn brute_within(points: &[GeoPoint], q: &GeoPoint, r: f64) -> Vec<usize> {
        let mut out: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.haversine_distance(q).get() <= r)
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(PointIndex::build(vec![site()], Meters::new(0.0)).is_err());
        assert!(PointIndex::build(vec![site()], Meters::new(-5.0)).is_err());
        assert!(PointIndex::build(vec![site()], Meters::new(f64::NAN)).is_err());
    }

    #[test]
    fn empty_index_answers_nothing() {
        let index = PointIndex::build(Vec::new(), Meters::new(100.0)).unwrap();
        assert!(index.is_empty());
        assert!(!index.has_within(&site(), Meters::new(1e9)));
        assert!(index.nearest_distance(&site()).is_none());
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let points = scatter(120);
        let index = PointIndex::build(points.clone(), Meters::new(350.0)).unwrap();
        for qi in [0usize, 7, 31, 63] {
            let q = points[qi].destination(Degrees::new(13.0), Meters::new(123.0));
            for r in [50.0, 350.0, 2_000.0, 20_000.0] {
                let mut got = Vec::new();
                index.for_each_within(&q, Meters::new(r), |i| got.push(i));
                got.sort_unstable();
                assert_eq!(got, brute_within(&points, &q, r), "radius {r}");
            }
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let a = site();
        let b = a.destination(Degrees::new(73.0), Meters::new(350.0));
        let exact = a.haversine_distance(&b);
        let index = PointIndex::build(vec![b], Meters::new(350.0)).unwrap();
        assert!(index.has_within(&a, exact), "point exactly at radius");
        assert!(
            !index.has_within(&a, Meters::new(exact.get() - 1e-6)),
            "point just beyond radius"
        );
    }

    #[test]
    fn nearest_matches_brute_force_small_and_large() {
        for n in [5usize, 200] {
            let points = scatter(n);
            let index = PointIndex::build(points.clone(), Meters::new(350.0)).unwrap();
            for qi in [0usize, 2, 4] {
                let q = points[qi].destination(Degrees::new(211.0), Meters::new(777.0));
                let brute = points
                    .iter()
                    .map(|p| p.haversine_distance(&q).get())
                    .fold(f64::INFINITY, f64::min);
                let got = index.nearest_distance(&q).unwrap().get();
                assert_eq!(got, brute, "n={n} qi={qi}");
            }
        }
    }

    #[test]
    fn nearest_from_far_away_still_exact() {
        let points = scatter(200);
        let index = PointIndex::build(points.clone(), Meters::new(350.0)).unwrap();
        let q = site().destination(Degrees::new(300.0), Meters::new(80_000.0));
        let brute = points
            .iter()
            .map(|p| p.haversine_distance(&q).get())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(index.nearest_distance(&q).unwrap().get(), brute);
    }

    #[test]
    fn antimeridian_neighbors_are_found() {
        // A 22 m gap across longitude ±180 must behave like any other
        // 22 m gap: wrapped bucket keys keep the two sides adjacent.
        let east = GeoPoint::new(0.0, 179.9999).unwrap();
        let west = GeoPoint::new(0.0, -179.9999).unwrap();
        let gap = east.haversine_distance(&west);
        assert!(gap.get() < 30.0, "test premise: {gap:?}");
        let index = PointIndex::build(vec![east], Meters::new(350.0)).unwrap();
        assert!(index.has_within(&west, Meters::new(350.0)));
        assert_eq!(index.nearest_distance(&west).unwrap(), gap);
        let mut hits = Vec::new();
        index.for_each_within(&west, Meters::new(350.0), |i| hits.push(i));
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn incremental_build_is_structurally_identical_to_batch() {
        let points = scatter(120);
        let batch = PointIndex::build(points.clone(), Meters::new(350.0)).unwrap();
        // Grown from empty, one insert at a time.
        let mut grown = PointIndex::build(Vec::new(), Meters::new(350.0)).unwrap();
        for p in &points {
            grown.insert(*p);
        }
        // Split build + extend.
        let mut split = PointIndex::build(points[..40].to_vec(), Meters::new(350.0)).unwrap();
        split.extend(points[40..].iter().copied());
        for index in [&grown, &split] {
            assert_eq!(index.len(), batch.len());
            assert_eq!(index.points(), batch.points());
            let q = site().destination(Degrees::new(77.0), Meters::new(444.0));
            for r in [50.0, 350.0, 5_000.0] {
                let mut a = Vec::new();
                batch.for_each_within(&q, Meters::new(r), |i| a.push(i));
                let mut b = Vec::new();
                index.for_each_within(&q, Meters::new(r), |i| b.push(i));
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "radius {r}");
            }
            assert_eq!(index.nearest_distance(&q), batch.nearest_distance(&q));
        }
    }

    #[test]
    fn insert_into_empty_reanchors_on_first_point() {
        // An empty index anchors at (0, 0); inserting a mid-latitude point
        // must re-anchor there (as build() would), or the latitude-band
        // margins would be violated and bucket geometry would be distorted.
        let mut index = PointIndex::build(Vec::new(), Meters::new(350.0)).unwrap();
        index.insert(site());
        let batch = PointIndex::build(vec![site()], Meters::new(350.0)).unwrap();
        assert_eq!(index.points(), batch.points());
        assert!(index.has_within(&site(), Meters::new(1.0)));
        let near = site().destination(Degrees::new(10.0), Meters::new(100.0));
        assert_eq!(index.nearest_distance(&near), batch.nearest_distance(&near));
    }

    #[test]
    fn points_accessor_preserves_order() {
        let points = scatter(9);
        let index = PointIndex::build(points.clone(), Meters::new(100.0)).unwrap();
        assert_eq!(index.points(), points.as_slice());
        assert_eq!(index.len(), 9);
        assert_eq!(index.cell_size(), Meters::new(100.0));
    }
}
