//! Map projections: a fast local tangent-plane projection and Web Mercator.

use crate::point::{GeoPoint, EARTH_RADIUS_M};
use serde::{Deserialize, Serialize};

/// A point in projected metric coordinates (east/north metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProjectedPoint {
    /// Eastward offset from the projection origin, in metres.
    pub x: f64,
    /// Northward offset from the projection origin, in metres.
    pub y: f64,
}

impl ProjectedPoint {
    /// Creates a projected point from east/north offsets in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another projected point, in metres.
    pub fn distance(&self, other: &ProjectedPoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A local equirectangular ("flat Earth") projection around a reference point.
///
/// Accurate to well under 0.1 % for the city-scale extents (≤ 50 km) used by
/// mobility analyses, and an order of magnitude faster than true geodesic
/// math — which matters when gridding millions of records.
///
/// # Example
///
/// ```
/// use geo::{GeoPoint, LocalProjection};
///
/// let origin = GeoPoint::new(45.75, 4.85).unwrap();
/// let proj = LocalProjection::new(origin);
/// let p = GeoPoint::new(45.76, 4.86).unwrap();
/// let xy = proj.project(&p);
/// let back = proj.unproject(&xy);
/// assert!(p.haversine_distance(&back).get() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        Self {
            origin,
            cos_lat0: origin.latitude().to_radians().cos(),
        }
    }

    /// The reference point of the projection.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic point to local east/north metres.
    pub fn project(&self, p: &GeoPoint) -> ProjectedPoint {
        let dlat = (p.latitude() - self.origin.latitude()).to_radians();
        let dlon = (p.longitude() - self.origin.longitude()).to_radians();
        ProjectedPoint::new(EARTH_RADIUS_M * dlon * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection back to geographic coordinates.
    pub fn unproject(&self, p: &ProjectedPoint) -> GeoPoint {
        let dlat = p.y / EARTH_RADIUS_M;
        let dlon = p.x / (EARTH_RADIUS_M * self.cos_lat0);
        GeoPoint::clamped(
            self.origin.latitude() + dlat.to_degrees(),
            self.origin.longitude() + dlon.to_degrees(),
        )
    }
}

/// The spherical Web Mercator projection (EPSG:3857), provided for
/// interoperability with common web-mapping tile pyramids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WebMercator;

impl WebMercator {
    /// Maximum latitude representable in Web Mercator.
    pub const MAX_LATITUDE: f64 = 85.051_128_779_806_6;

    /// Projects to Web Mercator metres. Latitudes beyond
    /// [`Self::MAX_LATITUDE`] are clamped.
    pub fn project(p: &GeoPoint) -> ProjectedPoint {
        let lat = p.latitude().clamp(-Self::MAX_LATITUDE, Self::MAX_LATITUDE);
        let x = EARTH_RADIUS_M * p.longitude().to_radians();
        let y = EARTH_RADIUS_M
            * ((std::f64::consts::FRAC_PI_4 + lat.to_radians() / 2.0).tan()).ln();
        ProjectedPoint::new(x, y)
    }

    /// Inverse Web Mercator projection.
    pub fn unproject(p: &ProjectedPoint) -> GeoPoint {
        let lon = (p.x / EARTH_RADIUS_M).to_degrees();
        let lat = (2.0 * (p.y / EARTH_RADIUS_M).exp().atan() - std::f64::consts::FRAC_PI_2)
            .to_degrees();
        GeoPoint::clamped(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn local_projection_roundtrip() {
        let proj = LocalProjection::new(p(45.75, 4.85));
        for &(lat, lon) in &[(45.75, 4.85), (45.80, 4.90), (45.70, 4.75), (45.9, 5.0)] {
            let q = p(lat, lon);
            let back = proj.unproject(&proj.project(&q));
            assert!(
                q.haversine_distance(&back).get() < 0.5,
                "roundtrip error for {q}"
            );
        }
    }

    #[test]
    fn local_projection_preserves_short_distances() {
        let proj = LocalProjection::new(p(45.75, 4.85));
        let a = p(45.76, 4.86);
        let b = p(45.77, 4.84);
        let geodesic = a.haversine_distance(&b).get();
        let planar = proj.project(&a).distance(&proj.project(&b));
        let rel_err = (geodesic - planar).abs() / geodesic;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn origin_projects_to_zero() {
        let o = p(12.0, 34.0);
        let proj = LocalProjection::new(o);
        let xy = proj.project(&o);
        assert_eq!(xy, ProjectedPoint::new(0.0, 0.0));
        assert_eq!(proj.origin(), o);
    }

    #[test]
    fn web_mercator_roundtrip() {
        for &(lat, lon) in &[(0.0, 0.0), (45.0, 90.0), (-30.0, -120.0), (80.0, 10.0)] {
            let q = p(lat, lon);
            let back = WebMercator::unproject(&WebMercator::project(&q));
            assert!(q.haversine_distance(&back).get() < 1.0);
        }
    }

    #[test]
    fn web_mercator_clamps_poles() {
        let north = p(90.0, 0.0);
        let projected = WebMercator::project(&north);
        assert!(projected.y.is_finite());
    }

    #[test]
    fn projected_point_distance() {
        let a = ProjectedPoint::new(0.0, 0.0);
        let b = ProjectedPoint::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }
}
