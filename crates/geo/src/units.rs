//! Strongly-typed physical quantities used throughout the workspace.
//!
//! Newtypes keep metres, kilometres and angular units from being mixed up
//! silently (C-NEWTYPE). All wrappers are thin `f64`s with `Copy` semantics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Creates a new quantity from a raw `f64` value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

quantity!(
    /// A distance expressed in metres.
    Meters,
    "m"
);
quantity!(
    /// A distance expressed in kilometres.
    Kilometers,
    "km"
);
quantity!(
    /// A speed expressed in metres per second.
    MetersPerSecond,
    "m/s"
);
quantity!(
    /// A speed expressed in kilometres per hour.
    KmPerHour,
    "km/h"
);
quantity!(
    /// An angle expressed in decimal degrees.
    Degrees,
    "deg"
);
quantity!(
    /// An angle expressed in radians.
    Radians,
    "rad"
);

impl Meters {
    /// Converts this distance to kilometres.
    pub fn to_kilometers(self) -> Kilometers {
        Kilometers(self.0 / 1000.0)
    }
}

impl Kilometers {
    /// Converts this distance to metres.
    pub fn to_meters(self) -> Meters {
        Meters(self.0 * 1000.0)
    }
}

impl MetersPerSecond {
    /// Converts this speed to kilometres per hour.
    pub fn to_km_per_hour(self) -> KmPerHour {
        KmPerHour(self.0 * 3.6)
    }
}

impl KmPerHour {
    /// Converts this speed to metres per second.
    pub fn to_meters_per_second(self) -> MetersPerSecond {
        MetersPerSecond(self.0 / 3.6)
    }
}

impl Degrees {
    /// Converts this angle to radians.
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }

    /// Normalizes the angle into the `[0, 360)` range.
    pub fn normalized(self) -> Degrees {
        Degrees(self.0.rem_euclid(360.0))
    }
}

impl Radians {
    /// Converts this angle to decimal degrees.
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_roundtrip_kilometers() {
        let m = Meters::new(1500.0);
        assert_eq!(m.to_kilometers(), Kilometers::new(1.5));
        assert_eq!(m.to_kilometers().to_meters(), m);
    }

    #[test]
    fn speed_conversion() {
        let v = MetersPerSecond::new(10.0);
        assert!((v.to_km_per_hour().get() - 36.0).abs() < 1e-12);
        assert!((v.to_km_per_hour().to_meters_per_second().get() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Meters::new(3.0);
        let b = Meters::new(4.5);
        assert_eq!(a + b, Meters::new(7.5));
        assert_eq!(b - a, Meters::new(1.5));
        assert_eq!(a * 2.0, Meters::new(6.0));
        assert_eq!(b / 1.5, Meters::new(3.0));
        assert!((b / a - 1.5).abs() < 1e-12);
        assert_eq!(-a, Meters::new(-3.0));
    }

    #[test]
    fn degree_normalization() {
        assert_eq!(Degrees::new(-90.0).normalized(), Degrees::new(270.0));
        assert_eq!(Degrees::new(720.5).normalized(), Degrees::new(0.5));
    }

    #[test]
    fn angle_roundtrip() {
        let d = Degrees::new(123.456);
        let back = d.to_radians().to_degrees();
        assert!((back.get() - d.get()).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Meters::new(2.0)), "2.000 m");
        assert_eq!(format!("{}", KmPerHour::new(50.0)), "50.000 km/h");
    }

    #[test]
    fn min_max_abs() {
        let a = Meters::new(-2.0);
        let b = Meters::new(1.0);
        assert_eq!(a.abs(), Meters::new(2.0));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
