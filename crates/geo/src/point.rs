//! WGS-84 geographic points and great-circle geometry.

use crate::error::GeoError;
use crate::units::{Degrees, Meters};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in metres (IUGG value), used by all haversine math.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A point on the WGS-84 ellipsoid, expressed in decimal degrees.
///
/// Invariant: latitude in `[-90, 90]`, longitude in `[-180, 180]`, both
/// finite. Enforced by [`GeoPoint::new`].
///
/// # Example
///
/// ```
/// use geo::GeoPoint;
///
/// let p = GeoPoint::new(48.8566, 2.3522).unwrap(); // Paris
/// assert!(p.latitude() > 48.0 && p.longitude() < 3.0);
/// assert!(GeoPoint::new(95.0, 0.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a point from a latitude and longitude in decimal degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// when out of range and [`GeoError::NonFiniteCoordinate`] for NaN or
    /// infinite inputs.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !lon.is_finite() {
            return Err(GeoError::NonFiniteCoordinate);
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(Self { lat, lon })
    }

    /// Creates a point, clamping latitude to `[-90, 90]` and wrapping
    /// longitude into `[-180, 180]`.
    ///
    /// This is the forgiving constructor used when perturbation mechanisms
    /// push coordinates slightly out of range.
    ///
    /// # Panics
    ///
    /// Panics if either input is NaN or infinite.
    pub fn clamped(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && lon.is_finite(),
            "clamped() requires finite coordinates"
        );
        let lat = lat.clamp(-90.0, 90.0);
        // Only wrap when out of range: the wrap arithmetic is not exact and
        // would perturb in-range values by ~1e-14 degrees, which breaks
        // grids anchored on exact coordinates.
        let lon = if (-180.0..=180.0).contains(&lon) {
            lon
        } else {
            let wrapped = (lon + 180.0).rem_euclid(360.0) - 180.0;
            if wrapped == -180.0 {
                180.0
            } else {
                wrapped
            }
        };
        Self { lat, lon }
    }

    /// Latitude in decimal degrees.
    pub fn latitude(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees.
    pub fn longitude(&self) -> f64 {
        self.lon
    }

    /// Great-circle (haversine) distance to another point.
    ///
    /// ```
    /// use geo::GeoPoint;
    /// let a = GeoPoint::new(0.0, 0.0).unwrap();
    /// let b = GeoPoint::new(0.0, 1.0).unwrap();
    /// // One degree of longitude at the equator is ~111.2 km.
    /// assert!((a.haversine_distance(&b).get() - 111_195.0).abs() < 100.0);
    /// ```
    pub fn haversine_distance(&self, other: &GeoPoint) -> Meters {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dphi = (other.lat - self.lat).to_radians();
        let dlambda = (other.lon - self.lon).to_radians();
        let a = (dphi / 2.0).sin().powi(2)
            + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        Meters::new(EARTH_RADIUS_M * c)
    }

    /// Initial bearing from this point towards `other`, in `[0, 360)` degrees.
    pub fn bearing_to(&self, other: &GeoPoint) -> Degrees {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dlambda = (other.lon - self.lon).to_radians();
        let y = dlambda.sin() * phi2.cos();
        let x = phi1.cos() * phi2.sin() - phi1.sin() * phi2.cos() * dlambda.cos();
        Degrees::new(y.atan2(x).to_degrees()).normalized()
    }

    /// Destination point reached by travelling `distance` along `bearing`.
    pub fn destination(&self, bearing: Degrees, distance: Meters) -> GeoPoint {
        let delta = distance.get() / EARTH_RADIUS_M;
        let theta = bearing.get().to_radians();
        let phi1 = self.lat.to_radians();
        let lambda1 = self.lon.to_radians();
        let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
        let lambda2 = lambda1
            + (theta.sin() * delta.sin() * phi1.cos())
                .atan2(delta.cos() - phi1.sin() * phi2.sin());
        GeoPoint::clamped(phi2.to_degrees(), lambda2.to_degrees())
    }

    /// Point halfway along the great circle between two points.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let lambda1 = self.lon.to_radians();
        let dlambda = (other.lon - self.lon).to_radians();
        let bx = phi2.cos() * dlambda.cos();
        let by = phi2.cos() * dlambda.sin();
        let phi3 =
            (phi1.sin() + phi2.sin()).atan2(((phi1.cos() + bx).powi(2) + by.powi(2)).sqrt());
        let lambda3 = lambda1 + by.atan2(phi1.cos() + bx);
        GeoPoint::clamped(phi3.to_degrees(), lambda3.to_degrees())
    }

    /// Linear interpolation between two points at fraction `t` in `[0, 1]`.
    ///
    /// Uses direct lat/lon interpolation, which is accurate for the short
    /// (metre-to-kilometre scale) segments found in mobility traces.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint::clamped(
            self.lat + (other.lat - self.lat) * t,
            self.lon + (other.lon - self.lon) * t,
        )
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            GeoPoint::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(91.0))
        );
        assert_eq!(
            GeoPoint::new(0.0, -181.0),
            Err(GeoError::InvalidLongitude(-181.0))
        );
        assert_eq!(
            GeoPoint::new(f64::NAN, 0.0),
            Err(GeoError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn clamped_wraps_longitude() {
        let q = GeoPoint::clamped(12.0, 190.0);
        assert!((q.longitude() - (-170.0)).abs() < 1e-9);
        let r = GeoPoint::clamped(95.0, 0.0);
        assert_eq!(r.latitude(), 90.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = p(45.0, 5.0);
        assert_eq!(a.haversine_distance(&a).get(), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p(50.6292, 3.0573);
        let b = p(45.7640, 4.8357);
        let d1 = a.haversine_distance(&b).get();
        let d2 = b.haversine_distance(&a).get();
        assert!((d1 - d2).abs() < 1e-6);
        assert!((d1 - 558_000.0).abs() < 10_000.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = p(0.0, 0.0);
        assert!((origin.bearing_to(&p(1.0, 0.0)).get() - 0.0).abs() < 1e-6);
        assert!((origin.bearing_to(&p(0.0, 1.0)).get() - 90.0).abs() < 1e-6);
        assert!((origin.bearing_to(&p(-1.0, 0.0)).get() - 180.0).abs() < 1e-6);
        assert!((origin.bearing_to(&p(0.0, -1.0)).get() - 270.0).abs() < 1e-6);
    }

    #[test]
    fn destination_roundtrip() {
        let start = p(48.8566, 2.3522);
        let dest = start.destination(Degrees::new(45.0), Meters::new(1000.0));
        let d = start.haversine_distance(&dest).get();
        assert!((d - 1000.0).abs() < 1.0, "distance was {d}");
        let back =
            dest.destination(Degrees::new(dest.bearing_to(&start).get()), Meters::new(d));
        assert!(start.haversine_distance(&back).get() < 1.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 2.0);
        let m = a.midpoint(&b);
        assert!((m.longitude() - 1.0).abs() < 1e-6);
        let da = a.haversine_distance(&m).get();
        let db = b.haversine_distance(&m).get();
        assert!((da - db).abs() < 1.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = p(10.0, 10.0);
        let b = p(11.0, 12.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.latitude() - 10.5).abs() < 1e-9);
        assert!((mid.longitude() - 11.0).abs() < 1e-9);
        // Out-of-range t is clamped.
        assert_eq!(a.lerp(&b, -3.0), a);
        assert_eq!(a.lerp(&b, 7.0), b);
    }

    #[test]
    fn display_format() {
        assert_eq!(p(1.5, -2.25).to_string(), "(1.500000, -2.250000)");
    }
}
