//! Axis-aligned geographic bounding boxes.

use crate::error::GeoError;
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lattice pitch (degrees) of the padded grid anchor
/// ([`BoundingBox::grid_anchor`]): anchor corners snap outward to multiples
/// of this quantum, so a data bounding box can wander anywhere inside the
/// current lattice cell without moving any grid anchored on it.
pub const GRID_ANCHOR_QUANTUM_DEG: f64 = 0.05;

/// Safety margin (degrees) applied before snapping in
/// [`BoundingBox::grid_anchor`]: data sitting exactly on a lattice line
/// still gets strictly padded, mirroring the legacy `expanded(0.001)`
/// tolerance the un-quantized grids used.
pub const GRID_ANCHOR_MARGIN_DEG: f64 = 0.001;

/// An axis-aligned bounding box in latitude/longitude space.
///
/// The box never crosses the antimeridian; callers working near ±180°
/// longitude should split their query into two boxes.
///
/// # Example
///
/// ```
/// use geo::{BoundingBox, GeoPoint};
///
/// let sw = GeoPoint::new(45.0, 4.0).unwrap();
/// let ne = GeoPoint::new(46.0, 5.0).unwrap();
/// let bbox = BoundingBox::new(sw, ne).unwrap();
/// assert!(bbox.contains(&GeoPoint::new(45.5, 4.5).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min: GeoPoint,
    max: GeoPoint,
}

impl BoundingBox {
    /// Creates a bounding box from its south-west and north-east corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidBoundingBox`] when `min` exceeds `max` on
    /// either axis.
    pub fn new(min: GeoPoint, max: GeoPoint) -> Result<Self, GeoError> {
        if min.latitude() > max.latitude() || min.longitude() > max.longitude() {
            return Err(GeoError::InvalidBoundingBox {
                min: min.to_string(),
                max: max.to_string(),
            });
        }
        Ok(Self { min, max })
    }

    /// Smallest box covering every point in `points`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyPolyline`] when `points` is empty.
    pub fn from_points<'a, I>(points: I) -> Result<Self, GeoError>
    where
        I: IntoIterator<Item = &'a GeoPoint>,
    {
        let mut iter = points.into_iter();
        let first = iter.next().ok_or(GeoError::EmptyPolyline)?;
        let (mut min_lat, mut max_lat) = (first.latitude(), first.latitude());
        let (mut min_lon, mut max_lon) = (first.longitude(), first.longitude());
        for p in iter {
            min_lat = min_lat.min(p.latitude());
            max_lat = max_lat.max(p.latitude());
            min_lon = min_lon.min(p.longitude());
            max_lon = max_lon.max(p.longitude());
        }
        Ok(Self {
            min: GeoPoint::clamped(min_lat, min_lon),
            max: GeoPoint::clamped(max_lat, max_lon),
        })
    }

    /// South-west corner.
    pub fn min(&self) -> GeoPoint {
        self.min
    }

    /// North-east corner.
    pub fn max(&self) -> GeoPoint {
        self.max
    }

    /// Geometric centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::clamped(
            (self.min.latitude() + self.max.latitude()) / 2.0,
            (self.min.longitude() + self.max.longitude()) / 2.0,
        )
    }

    /// Whether `point` lies inside the box (inclusive on all edges).
    pub fn contains(&self, point: &GeoPoint) -> bool {
        point.latitude() >= self.min.latitude()
            && point.latitude() <= self.max.latitude()
            && point.longitude() >= self.min.longitude()
            && point.longitude() <= self.max.longitude()
    }

    /// Whether two boxes overlap (inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.latitude() <= other.max.latitude()
            && self.max.latitude() >= other.min.latitude()
            && self.min.longitude() <= other.max.longitude()
            && self.max.longitude() >= other.min.longitude()
    }

    /// Smallest box covering both boxes.
    ///
    /// Exact: the union's corners are plain `min`/`max` folds of the two
    /// boxes' corners, so unioning per-batch boxes yields bit-identical
    /// corners to [`BoundingBox::from_points`] over the concatenated
    /// points — what lets an append-only dataset maintain its bounding
    /// box incrementally instead of rescanning every point.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::clamped(
                self.min.latitude().min(other.min.latitude()),
                self.min.longitude().min(other.min.longitude()),
            ),
            max: GeoPoint::clamped(
                self.max.latitude().max(other.max.latitude()),
                self.max.longitude().max(other.max.longitude()),
            ),
        }
    }

    /// Returns a copy grown by `margin_deg` degrees on every side.
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min: GeoPoint::clamped(
                self.min.latitude() - margin_deg,
                self.min.longitude() - margin_deg,
            ),
            max: GeoPoint::clamped(
                self.max.latitude() + margin_deg,
                self.max.longitude() + margin_deg,
            ),
        }
    }

    /// Snaps the box outward to a lattice with pitch `quantum_deg`, after
    /// padding by `margin_deg` on every side: each `min` coordinate rounds
    /// down to a multiple of the quantum, each `max` coordinate rounds up.
    ///
    /// The result is monotone (`a ⊆ b` implies `a.quantized(..) ⊆
    /// b.quantized(..)`) and idempotent for boxes already on the lattice
    /// with zero margin, and — the property streaming caches rely on — it
    /// is *stable under small growth*: widening a box changes its quantized
    /// form only when the padded box crosses a lattice line, so grids
    /// anchored on the quantized box survive most per-window bounding-box
    /// drift. The quantized span is always at least one quantum, so
    /// degenerate (single-point) boxes need no separate handling.
    pub fn quantized(&self, quantum_deg: f64, margin_deg: f64) -> BoundingBox {
        let down = |v: f64| ((v - margin_deg) / quantum_deg).floor() * quantum_deg;
        let up = |v: f64| ((v + margin_deg) / quantum_deg).ceil() * quantum_deg;
        BoundingBox {
            min: GeoPoint::clamped(down(self.min.latitude()), down(self.min.longitude())),
            max: GeoPoint::clamped(up(self.max.latitude()), up(self.max.longitude())),
        }
    }

    /// The canonical padded anchor box every grid in the pipeline is
    /// anchored on: [`BoundingBox::quantized`] with
    /// [`GRID_ANCHOR_QUANTUM_DEG`] and [`GRID_ANCHOR_MARGIN_DEG`].
    pub fn grid_anchor(&self) -> BoundingBox {
        self.quantized(GRID_ANCHOR_QUANTUM_DEG, GRID_ANCHOR_MARGIN_DEG)
    }

    /// Latitude extent in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max.latitude() - self.min.latitude()
    }

    /// Longitude extent in degrees.
    pub fn lon_span(&self) -> f64 {
        self.max.longitude() - self.min.longitude()
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn union_equals_from_points_over_concatenation() {
        let a = [p(45.1, 4.2), p(45.3, 4.9)];
        let b = [p(44.9, 4.5), p(45.2, 5.1)];
        let ab = BoundingBox::from_points(a.iter())
            .unwrap()
            .union(&BoundingBox::from_points(b.iter()).unwrap());
        let batch = BoundingBox::from_points(a.iter().chain(b.iter())).unwrap();
        assert_eq!(ab, batch);
        // Union with a contained box is the identity.
        assert_eq!(
            batch.union(&BoundingBox::from_points(a.iter()).unwrap()),
            batch
        );
    }

    #[test]
    fn rejects_inverted_corners() {
        assert!(BoundingBox::new(p(46.0, 4.0), p(45.0, 5.0)).is_err());
        assert!(BoundingBox::new(p(45.0, 5.0), p(46.0, 4.0)).is_err());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [p(1.0, 1.0), p(-1.0, 3.0), p(0.5, -2.0)];
        let bbox = BoundingBox::from_points(pts.iter()).unwrap();
        for q in &pts {
            assert!(bbox.contains(q));
        }
        assert_eq!(bbox.min().latitude(), -1.0);
        assert_eq!(bbox.max().longitude(), 3.0);
    }

    #[test]
    fn from_points_empty_errors() {
        assert_eq!(
            BoundingBox::from_points(std::iter::empty::<&GeoPoint>()),
            Err(GeoError::EmptyPolyline)
        );
    }

    #[test]
    fn contains_edges_inclusive() {
        let bbox = BoundingBox::new(p(0.0, 0.0), p(1.0, 1.0)).unwrap();
        assert!(bbox.contains(&p(0.0, 0.0)));
        assert!(bbox.contains(&p(1.0, 1.0)));
        assert!(!bbox.contains(&p(1.0001, 0.5)));
    }

    #[test]
    fn intersection_logic() {
        let a = BoundingBox::new(p(0.0, 0.0), p(2.0, 2.0)).unwrap();
        let b = BoundingBox::new(p(1.0, 1.0), p(3.0, 3.0)).unwrap();
        let c = BoundingBox::new(p(5.0, 5.0), p(6.0, 6.0)).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges intersect.
        let d = BoundingBox::new(p(2.0, 0.0), p(3.0, 2.0)).unwrap();
        assert!(a.intersects(&d));
    }

    #[test]
    fn expanded_grows_box() {
        let a = BoundingBox::new(p(10.0, 10.0), p(11.0, 11.0)).unwrap();
        let e = a.expanded(0.5);
        assert!(e.contains(&p(9.6, 9.6)));
        assert!(e.contains(&p(11.4, 11.4)));
        assert!((e.lat_span() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantized_contains_padded_box_and_is_stable() {
        let a = BoundingBox::new(p(45.751, 4.801), p(45.762, 4.812)).unwrap();
        let q = a.grid_anchor();
        // Covers the data with margin to spare.
        assert!(q.contains(&p(45.751 - 0.001, 4.801 - 0.001)));
        assert!(q.contains(&p(45.762 + 0.001, 4.812 + 0.001)));
        // Corners sit on the lattice.
        for v in [
            q.min().latitude(),
            q.min().longitude(),
            q.max().latitude(),
            q.max().longitude(),
        ] {
            let cells = v / GRID_ANCHOR_QUANTUM_DEG;
            assert!((cells - cells.round()).abs() < 1e-9, "{v} off-lattice");
        }
        // Growth inside the same lattice cells does not move the anchor.
        let grown = a.union(&BoundingBox::new(p(45.755, 4.805), p(45.78, 4.83)).unwrap());
        assert_eq!(grown.grid_anchor(), q);
        // Growth past a lattice line does.
        let jumped = a.union(&BoundingBox::new(p(45.95, 5.10), p(45.96, 5.11)).unwrap());
        assert_ne!(jumped.grid_anchor(), q);
        assert!(jumped.grid_anchor().contains(&p(45.96, 5.11)));
        // Monotone: the bigger box's anchor contains the smaller one's.
        assert!(jumped.grid_anchor().contains(&q.min()));
        assert!(jumped.grid_anchor().contains(&q.max()));
    }

    #[test]
    fn quantized_span_never_degenerate() {
        let single = BoundingBox::new(p(45.75, 4.80), p(45.75, 4.80)).unwrap();
        let q = single.grid_anchor();
        assert!(q.lat_span() >= GRID_ANCHOR_QUANTUM_DEG - 1e-12);
        assert!(q.lon_span() >= GRID_ANCHOR_QUANTUM_DEG - 1e-12);
        // A point exactly on a lattice line still gets padded both ways.
        let on_line = BoundingBox::new(p(45.75, 4.80), p(45.75, 4.80)).unwrap();
        let q = on_line.quantized(0.05, 0.001);
        assert!(q.min().latitude() < 45.75);
        assert!(q.max().latitude() > 45.75);
    }

    #[test]
    fn center_is_centered() {
        let a = BoundingBox::new(p(10.0, 20.0), p(12.0, 26.0)).unwrap();
        let c = a.center();
        assert!((c.latitude() - 11.0).abs() < 1e-9);
        assert!((c.longitude() - 23.0).abs() < 1e-9);
    }
}
