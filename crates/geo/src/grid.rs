//! Uniform metric grid index over a geographic bounding box.
//!
//! The grid is the workhorse behind heat-map style analyses (crowded places,
//! origin/destination traffic matrices): it maps every [`GeoPoint`] inside a
//! bounding box to a discrete [`CellId`], using a local metric projection so
//! cells are (approximately) square in metres rather than degrees.

use crate::bbox::BoundingBox;
use crate::error::GeoError;
use crate::point::GeoPoint;
use crate::projection::LocalProjection;
use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Discrete grid-cell coordinates (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Column index (west → east).
    pub ix: i32,
    /// Row index (south → north).
    pub iy: i32,
}

impl CellId {
    /// Creates a cell id from column and row indexes.
    pub const fn new(ix: i32, iy: i32) -> Self {
        Self { ix, iy }
    }

    /// The 8 neighbouring cells (diagonals included).
    pub fn neighbors(&self) -> [CellId; 8] {
        [
            CellId::new(self.ix - 1, self.iy - 1),
            CellId::new(self.ix, self.iy - 1),
            CellId::new(self.ix + 1, self.iy - 1),
            CellId::new(self.ix - 1, self.iy),
            CellId::new(self.ix + 1, self.iy),
            CellId::new(self.ix - 1, self.iy + 1),
            CellId::new(self.ix, self.iy + 1),
            CellId::new(self.ix + 1, self.iy + 1),
        ]
    }

    /// Chebyshev (chessboard) distance between two cells.
    pub fn chebyshev_distance(&self, other: &CellId) -> u32 {
        let dx = (self.ix - other.ix).unsigned_abs();
        let dy = (self.iy - other.iy).unsigned_abs();
        dx.max(dy)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell({}, {})", self.ix, self.iy)
    }
}

/// A uniform grid of square metric cells covering a bounding box.
///
/// # Example
///
/// ```
/// use geo::{BoundingBox, GeoPoint, Meters, UniformGrid};
///
/// let bbox = BoundingBox::new(
///     GeoPoint::new(45.70, 4.80).unwrap(),
///     GeoPoint::new(45.80, 4.90).unwrap(),
/// ).unwrap();
/// let grid = UniformGrid::new(bbox, Meters::new(250.0)).unwrap();
/// let cell = grid.cell_of(&GeoPoint::new(45.75, 4.85).unwrap());
/// assert_eq!(grid.cell_of(&grid.cell_center(&cell)), cell);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniformGrid {
    bbox: BoundingBox,
    cell_size_m: f64,
    projection: LocalProjection,
}

impl UniformGrid {
    /// Creates a grid over `bbox` with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidSize`] when `cell_size` is not strictly
    /// positive.
    pub fn new(bbox: BoundingBox, cell_size: Meters) -> Result<Self, GeoError> {
        if cell_size.get() <= 0.0 || !cell_size.get().is_finite() {
            return Err(GeoError::InvalidSize(cell_size.get()));
        }
        Ok(Self {
            bbox,
            cell_size_m: cell_size.get(),
            projection: LocalProjection::new(bbox.min()),
        })
    }

    /// The grid's bounding box.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Side of a cell in metres.
    pub fn cell_size(&self) -> Meters {
        Meters::new(self.cell_size_m)
    }

    /// The cell containing `point`. Points outside the bounding box map to
    /// the (negative or overflowing) virtual cell they would occupy.
    pub fn cell_of(&self, point: &GeoPoint) -> CellId {
        let p = self.projection.project(point);
        CellId::new(
            (p.x / self.cell_size_m).floor() as i32,
            (p.y / self.cell_size_m).floor() as i32,
        )
    }

    /// Geographic centre of a cell.
    pub fn cell_center(&self, cell: &CellId) -> GeoPoint {
        let x = (cell.ix as f64 + 0.5) * self.cell_size_m;
        let y = (cell.iy as f64 + 0.5) * self.cell_size_m;
        self.projection
            .unproject(&crate::projection::ProjectedPoint::new(x, y))
    }

    /// Number of columns needed to cover the bounding box.
    pub fn columns(&self) -> u32 {
        let width = self
            .projection
            .project(&GeoPoint::clamped(
                self.bbox.min().latitude(),
                self.bbox.max().longitude(),
            ))
            .x;
        (width / self.cell_size_m).ceil().max(1.0) as u32
    }

    /// Number of rows needed to cover the bounding box.
    pub fn rows(&self) -> u32 {
        let height = self
            .projection
            .project(&GeoPoint::clamped(
                self.bbox.max().latitude(),
                self.bbox.min().longitude(),
            ))
            .y;
        (height / self.cell_size_m).ceil().max(1.0) as u32
    }

    /// Counts how many of `points` fall into each cell.
    pub fn histogram<'a, I>(&self, points: I) -> HashMap<CellId, u64>
    where
        I: IntoIterator<Item = &'a GeoPoint>,
    {
        let mut counts = HashMap::new();
        for p in points {
            *counts.entry(self.cell_of(p)).or_insert(0) += 1;
        }
        counts
    }

    /// The `k` most visited cells of a histogram, most-visited first.
    ///
    /// Ties are broken by cell id so the result is deterministic.
    pub fn top_k(histogram: &HashMap<CellId, u64>, k: usize) -> Vec<(CellId, u64)> {
        let mut entries: Vec<(CellId, u64)> = histogram.iter().map(|(c, n)| (*c, *n)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> UniformGrid {
        let bbox = BoundingBox::new(
            GeoPoint::new(45.70, 4.80).unwrap(),
            GeoPoint::new(45.80, 4.90).unwrap(),
        )
        .unwrap();
        UniformGrid::new(bbox, Meters::new(250.0)).unwrap()
    }

    #[test]
    fn rejects_bad_cell_size() {
        let bbox = BoundingBox::new(
            GeoPoint::new(0.0, 0.0).unwrap(),
            GeoPoint::new(1.0, 1.0).unwrap(),
        )
        .unwrap();
        assert!(UniformGrid::new(bbox, Meters::new(0.0)).is_err());
        assert!(UniformGrid::new(bbox, Meters::new(-3.0)).is_err());
    }

    #[test]
    fn cell_center_roundtrip() {
        let g = grid();
        for &(lat, lon) in &[(45.71, 4.81), (45.75, 4.85), (45.7999, 4.8999)] {
            let p = GeoPoint::new(lat, lon).unwrap();
            let cell = g.cell_of(&p);
            assert_eq!(g.cell_of(&g.cell_center(&cell)), cell);
        }
    }

    #[test]
    fn min_corner_is_origin_cell() {
        let g = grid();
        assert_eq!(g.cell_of(&g.bbox().min()), CellId::new(0, 0));
    }

    #[test]
    fn nearby_points_share_cell_far_points_do_not() {
        let g = grid();
        let a = GeoPoint::new(45.7501, 4.8501).unwrap();
        let b = GeoPoint::new(45.7502, 4.8502).unwrap(); // ~15 m away
        let c = GeoPoint::new(45.7700, 4.8700).unwrap(); // km away
        assert_eq!(g.cell_of(&a), g.cell_of(&b));
        assert_ne!(g.cell_of(&a), g.cell_of(&c));
    }

    #[test]
    fn dimensions_cover_bbox() {
        let g = grid();
        // 0.1 deg of latitude is ~11.1 km → ~45 cells of 250 m.
        assert!(g.rows() >= 44 && g.rows() <= 46, "rows = {}", g.rows());
        assert!(
            g.columns() >= 29 && g.columns() <= 32,
            "cols = {}",
            g.columns()
        );
    }

    #[test]
    fn histogram_counts() {
        let g = grid();
        let a = GeoPoint::new(45.75, 4.85).unwrap();
        let b = GeoPoint::new(45.77, 4.87).unwrap();
        let pts = [a, a, a, b];
        let h = g.histogram(pts.iter());
        assert_eq!(h.len(), 2);
        assert_eq!(h[&g.cell_of(&a)], 3);
        assert_eq!(h[&g.cell_of(&b)], 1);
    }

    #[test]
    fn top_k_is_sorted_and_deterministic() {
        let mut h = HashMap::new();
        h.insert(CellId::new(0, 0), 5);
        h.insert(CellId::new(1, 0), 9);
        h.insert(CellId::new(2, 0), 5);
        h.insert(CellId::new(3, 0), 1);
        let top = UniformGrid::top_k(&h, 3);
        assert_eq!(top[0], (CellId::new(1, 0), 9));
        // Ties broken by cell id.
        assert_eq!(top[1], (CellId::new(0, 0), 5));
        assert_eq!(top[2], (CellId::new(2, 0), 5));
    }

    #[test]
    fn neighbors_and_chebyshev() {
        let c = CellId::new(4, 7);
        let n = c.neighbors();
        assert_eq!(n.len(), 8);
        for nb in &n {
            assert_eq!(c.chebyshev_distance(nb), 1);
        }
        assert_eq!(c.chebyshev_distance(&CellId::new(4, 7)), 0);
        assert_eq!(c.chebyshev_distance(&CellId::new(0, 0)), 7);
    }
}
