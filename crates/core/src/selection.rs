//! Utility-driven optimal strategy selection.
//!
//! "A minimum level of privacy must be enforced, as parametrized by the
//! users and/or the platform owner. In the same time, our middleware wants
//! to be utility-driven. […] there is not one unique anonymization strategy
//! that always performs well but many from which we can choose the one that
//! fits the best to the usage that will be done with the anonymized
//! dataset." (paper, §3)
//!
//! [`StrategySelector`] evaluates a pool of candidate strategies against the
//! dataset being published: each candidate's privacy is measured with the
//! [`crate::attack::PoiAttack`] (self-attack against POIs extracted from the
//! raw data — the strongest adversary the platform can emulate), its utility
//! with the metric matching the analyst's declared [`Objective`]. The
//! selector returns the highest-utility candidate whose POI recall is at or
//! below the privacy floor.

use crate::attack::{PoiAttack, ReferencePois};
use crate::engine::{EvaluationEngine, ExecutionMode};
use crate::error::PrivapiError;
use crate::pool::StrategyPool;
use crate::strategy::{AnonymizationStrategy, StrategyInfo};
use geo::Meters;
use mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The analysis the published dataset is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Finding out crowded places: top-`k` hot cells on a `cell` grid.
    CrowdedPlaces {
        /// Grid cell size.
        cell: Meters,
        /// Number of hot cells the analyst cares about.
        k: usize,
    },
    /// Predicting traffic: hourly per-cell forecast on a `cell` grid.
    Traffic {
        /// Grid cell size.
        cell: Meters,
    },
    /// Generic positional fidelity (time-aligned spatial distortion).
    Distortion,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::CrowdedPlaces { cell, k } => {
                write!(f, "crowded-places(cell={:.0}m, k={k})", cell.get())
            }
            Objective::Traffic { cell } => write!(f, "traffic(cell={:.0}m)", cell.get()),
            Objective::Distortion => write!(f, "distortion"),
        }
    }
}

/// Evaluation of one candidate strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// Which strategy instance this row describes.
    pub info: StrategyInfo,
    /// POI recall achieved by the self-attack (lower = more private).
    pub poi_recall: f64,
    /// Utility score in `[0, 1]` for the declared objective.
    pub utility: f64,
    /// Whether the candidate met the privacy floor.
    pub feasible: bool,
}

/// Outcome of a selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionReport {
    /// Per-candidate evaluations, in candidate order.
    pub candidates: Vec<CandidateResult>,
    /// Index of the winning candidate in `candidates`.
    pub chosen: Option<usize>,
    /// The privacy floor that was enforced (max tolerated POI recall).
    pub privacy_floor: f64,
    /// The analyst objective the utilities were scored under.
    pub objective: Objective,
}

impl SelectionReport {
    /// The winning candidate's evaluation, if any.
    pub fn winner(&self) -> Option<&CandidateResult> {
        self.chosen.and_then(|i| self.candidates.get(i))
    }

    /// The best (lowest) POI recall any candidate achieved.
    pub fn best_recall(&self) -> f64 {
        self.candidates
            .iter()
            .map(|c| c.poi_recall)
            .fold(f64::INFINITY, f64::min)
    }

    /// The error describing a winner-less report: no candidate satisfied
    /// the privacy floor. Shared policy for every caller that must refuse
    /// publication rather than release an infeasible dataset.
    pub fn no_feasible_error(&self) -> PrivapiError {
        PrivapiError::NoFeasibleStrategy {
            floor: self.privacy_floor,
            best_recall: self.best_recall(),
        }
    }
}

impl fmt::Display for SelectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "selection for {} (privacy floor: POI recall ≤ {:.2})",
            self.objective, self.privacy_floor
        )?;
        for (i, c) in self.candidates.iter().enumerate() {
            let marker = if Some(i) == self.chosen {
                "→"
            } else if c.feasible {
                " "
            } else {
                "✗"
            };
            writeln!(
                f,
                "  {marker} {:<45} recall={:.2} utility={:.3}",
                c.info.to_string(),
                c.poi_recall,
                c.utility
            )?;
        }
        Ok(())
    }
}

/// The utility-driven strategy selector.
///
/// A thin policy layer over [`crate::engine::EvaluationEngine`]: it owns the
/// candidate pool, runs the engine (parallel by default), and turns a
/// winner-less report into [`PrivapiError::NoFeasibleStrategy`].
pub struct StrategySelector {
    pool: StrategyPool,
    attack: PoiAttack,
    privacy_floor: f64,
    objective: Objective,
    seed: u64,
    mode: ExecutionMode,
}

impl fmt::Debug for StrategySelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategySelector")
            .field("candidates", &self.pool.len())
            .field("privacy_floor", &self.privacy_floor)
            .field("objective", &self.objective)
            .finish()
    }
}

impl StrategySelector {
    /// Creates a selector with no candidates.
    ///
    /// `privacy_floor` is the maximum tolerated POI recall in `[0, 1]`;
    /// `seed` drives all randomized candidates.
    pub fn new(objective: Objective, privacy_floor: f64, seed: u64) -> Self {
        Self {
            pool: StrategyPool::new(),
            attack: PoiAttack::default(),
            privacy_floor: privacy_floor.clamp(0.0, 1.0),
            objective,
            seed,
            mode: ExecutionMode::default(),
        }
    }

    /// Adds a candidate strategy; returns `self` for chaining.
    pub fn candidate(mut self, strategy: Box<dyn AnonymizationStrategy>) -> Self {
        self.pool.push(strategy);
        self
    }

    /// Replaces the candidate pool wholesale (see [`StrategyPool`]'s named
    /// constructors for the canonical pools).
    pub fn with_pool(mut self, pool: StrategyPool) -> Self {
        self.pool = pool;
        self
    }

    /// Adds the default candidate grid covering every mechanism family at
    /// several parameter settings (the paper's "many \[strategies\] from which
    /// we can choose") — [`StrategyPool::default_pool`] appended to any
    /// candidates already registered.
    pub fn with_default_candidates(mut self) -> Self {
        for strategy in StrategyPool::default_pool().into_candidates() {
            self.pool.push(strategy);
        }
        self
    }

    /// Replaces the attack used to score privacy.
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the evaluation schedule (parallel by default). Reports are
    /// identical either way; sequential mode exists for measurement and
    /// verification.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of registered candidates.
    pub fn candidate_count(&self) -> usize {
        self.pool.len()
    }

    /// Evaluates every candidate and picks the best feasible one.
    ///
    /// Privacy is scored against `reference` POIs — pass the attack's own
    /// extraction from the raw dataset (see [`PoiAttack::extract`]) or
    /// generator ground truth. Candidates are scored by the parallel
    /// [`EvaluationEngine`] against shared original-dataset projections;
    /// the winner follows the deterministic `(utility, −recall, index)`
    /// ordering of [`crate::engine::choose_winner`].
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] — no candidates registered or empty
    ///   dataset;
    /// * [`PrivapiError::NoFeasibleStrategy`] — every candidate leaks more
    ///   than the privacy floor.
    pub fn select(
        &self,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<(&dyn AnonymizationStrategy, SelectionReport), PrivapiError> {
        let engine = EvaluationEngine::new(self.objective, self.privacy_floor, self.seed)
            .with_attack(self.attack.clone())
            .with_mode(self.mode);
        let report = engine.evaluate(&self.pool, dataset, reference)?;
        match report.chosen {
            Some(i) => Ok((self.pool.get(i).expect("chosen index in pool"), report)),
            None => Err(report.no_feasible_error()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::reference_from_truth;
    use crate::strategies::{Identity, SpeedSmoothing};
    use mobility::gen::{CityModel, PopulationConfig};

    fn data() -> mobility::gen::GeneratedData {
        CityModel::builder()
            .seed(17)
            .build()
            .generate_with_truth(&PopulationConfig {
                users: 4,
                days: 3,
                sampling_interval_s: 120,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn selector_prefers_private_strategy_over_identity() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(
            Objective::CrowdedPlaces {
                cell: Meters::new(250.0),
                k: 10,
            },
            0.25,
            7,
        )
        .candidate(Box::new(Identity::new()))
        .candidate(Box::new(SpeedSmoothing::new(Meters::new(100.0)).unwrap()));
        let (winner, report) = selector.select(&d.dataset, &reference).unwrap();
        assert_eq!(winner.info().name, "speed-smoothing");
        // Identity must be infeasible: it leaks everything.
        let identity_row = &report.candidates[0];
        assert!(!identity_row.feasible, "identity row: {identity_row:?}");
        assert!(report.winner().unwrap().feasible);
    }

    #[test]
    fn impossible_floor_reports_best_recall() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(Objective::Distortion, -0.1, 7)
            .candidate(Box::new(Identity::new()));
        // Identity leaks ~everything; floor clamped to 0 — still infeasible
        // because recall on raw data is far above 0.
        let err = selector
            .select(&d.dataset, &reference)
            .map(|(s, _)| s.info())
            .expect_err("identity must not satisfy a zero floor");
        match err {
            PrivapiError::NoFeasibleStrategy { best_recall, .. } => {
                assert!(best_recall > 0.5);
            }
            other => panic!("expected NoFeasibleStrategy, got {other:?}"),
        }
    }

    #[test]
    fn empty_selector_errors() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(Objective::Distortion, 0.5, 7);
        assert!(matches!(
            selector.select(&d.dataset, &reference),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn default_candidates_cover_all_families() {
        let selector =
            StrategySelector::new(Objective::Distortion, 0.5, 7).with_default_candidates();
        assert_eq!(selector.candidate_count(), 11);
    }

    #[test]
    fn report_display_lists_candidates() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(
            Objective::Traffic {
                cell: Meters::new(500.0),
            },
            1.0,
            7,
        )
        .candidate(Box::new(Identity::new()));
        let (_, report) = selector.select(&d.dataset, &reference).unwrap();
        let text = report.to_string();
        assert!(text.contains("identity"));
        assert!(text.contains("traffic"));
    }

    #[test]
    fn objective_display() {
        assert_eq!(
            Objective::CrowdedPlaces {
                cell: Meters::new(250.0),
                k: 5
            }
            .to_string(),
            "crowded-places(cell=250m, k=5)"
        );
        assert_eq!(
            Objective::Traffic {
                cell: Meters::new(500.0)
            }
            .to_string(),
            "traffic(cell=500m)"
        );
        assert_eq!(Objective::Distortion.to_string(), "distortion");
    }
}
