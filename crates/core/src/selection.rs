//! Utility-driven optimal strategy selection.
//!
//! "A minimum level of privacy must be enforced, as parametrized by the
//! users and/or the platform owner. In the same time, our middleware wants
//! to be utility-driven. […] there is not one unique anonymization strategy
//! that always performs well but many from which we can choose the one that
//! fits the best to the usage that will be done with the anonymized
//! dataset." (paper, §3)
//!
//! [`StrategySelector`] evaluates a pool of candidate strategies against the
//! dataset being published: each candidate's privacy is measured with the
//! [`crate::attack::PoiAttack`] (self-attack against POIs extracted from the
//! raw data — the strongest adversary the platform can emulate), its utility
//! with the metric matching the analyst's declared [`Objective`]. The
//! selector returns the highest-utility candidate whose POI recall is at or
//! below the privacy floor.

use crate::attack::{PoiAttack, ReferencePois};
use crate::error::PrivapiError;
use crate::metrics::{crowded_places_utility, spatial_distortion, traffic_utility};
use crate::strategy::{AnonymizationStrategy, StrategyInfo};
use geo::Meters;
use mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The analysis the published dataset is destined for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Finding out crowded places: top-`k` hot cells on a `cell` grid.
    CrowdedPlaces {
        /// Grid cell size.
        cell: Meters,
        /// Number of hot cells the analyst cares about.
        k: usize,
    },
    /// Predicting traffic: hourly per-cell forecast on a `cell` grid.
    Traffic {
        /// Grid cell size.
        cell: Meters,
    },
    /// Generic positional fidelity (time-aligned spatial distortion).
    Distortion,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::CrowdedPlaces { cell, k } => {
                write!(f, "crowded-places(cell={:.0}m, k={k})", cell.get())
            }
            Objective::Traffic { cell } => write!(f, "traffic(cell={:.0}m)", cell.get()),
            Objective::Distortion => write!(f, "distortion"),
        }
    }
}

/// Evaluation of one candidate strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// Which strategy instance this row describes.
    pub info: StrategyInfo,
    /// POI recall achieved by the self-attack (lower = more private).
    pub poi_recall: f64,
    /// Utility score in `[0, 1]` for the declared objective.
    pub utility: f64,
    /// Whether the candidate met the privacy floor.
    pub feasible: bool,
}

/// Outcome of a selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionReport {
    /// Per-candidate evaluations, in candidate order.
    pub candidates: Vec<CandidateResult>,
    /// Index of the winning candidate in `candidates`.
    pub chosen: Option<usize>,
    /// The privacy floor that was enforced (max tolerated POI recall).
    pub privacy_floor: f64,
    /// Human-readable objective description.
    pub objective: String,
}

impl SelectionReport {
    /// The winning candidate's evaluation, if any.
    pub fn winner(&self) -> Option<&CandidateResult> {
        self.chosen.and_then(|i| self.candidates.get(i))
    }
}

impl fmt::Display for SelectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "selection for {} (privacy floor: POI recall ≤ {:.2})",
            self.objective, self.privacy_floor
        )?;
        for (i, c) in self.candidates.iter().enumerate() {
            let marker = if Some(i) == self.chosen {
                "→"
            } else if c.feasible {
                " "
            } else {
                "✗"
            };
            writeln!(
                f,
                "  {marker} {:<45} recall={:.2} utility={:.3}",
                c.info.to_string(),
                c.poi_recall,
                c.utility
            )?;
        }
        Ok(())
    }
}

/// The utility-driven strategy selector.
pub struct StrategySelector {
    candidates: Vec<Box<dyn AnonymizationStrategy>>,
    attack: PoiAttack,
    privacy_floor: f64,
    objective: Objective,
    seed: u64,
}

impl fmt::Debug for StrategySelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategySelector")
            .field("candidates", &self.candidates.len())
            .field("privacy_floor", &self.privacy_floor)
            .field("objective", &self.objective)
            .finish()
    }
}

impl StrategySelector {
    /// Creates a selector with no candidates.
    ///
    /// `privacy_floor` is the maximum tolerated POI recall in `[0, 1]`;
    /// `seed` drives all randomized candidates.
    pub fn new(objective: Objective, privacy_floor: f64, seed: u64) -> Self {
        Self {
            candidates: Vec::new(),
            attack: PoiAttack::default(),
            privacy_floor: privacy_floor.clamp(0.0, 1.0),
            objective,
            seed,
        }
    }

    /// Adds a candidate strategy; returns `self` for chaining.
    pub fn candidate(mut self, strategy: Box<dyn AnonymizationStrategy>) -> Self {
        self.candidates.push(strategy);
        self
    }

    /// Adds the default candidate grid covering every mechanism family at
    /// several parameter settings (the paper's "many [strategies] from which
    /// we can choose").
    pub fn with_default_candidates(mut self) -> Self {
        use crate::strategies::*;
        for eps in [50.0, 100.0, 200.0] {
            self.candidates.push(Box::new(
                SpeedSmoothing::new(Meters::new(eps)).expect("static params"),
            ));
        }
        for eps in [0.1, 0.01, 0.005] {
            self.candidates.push(Box::new(
                GeoIndistinguishability::new(eps).expect("static params"),
            ));
        }
        for cell in [250.0, 500.0] {
            self.candidates.push(Box::new(
                SpatialCloaking::new(Meters::new(cell)).expect("static params"),
            ));
        }
        for sigma in [100.0, 300.0] {
            self.candidates.push(Box::new(
                GaussianPerturbation::new(Meters::new(sigma)).expect("static params"),
            ));
        }
        self.candidates
            .push(Box::new(TemporalDownsampling::new(600).expect("static params")));
        self
    }

    /// Replaces the attack used to score privacy.
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.attack = attack;
        self
    }

    /// Number of registered candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Scores the utility of a protected dataset under the objective.
    fn utility_of(&self, original: &Dataset, protected: &Dataset) -> f64 {
        match self.objective {
            Objective::CrowdedPlaces { cell, k } => {
                crowded_places_utility(original, protected, cell, k)
                    .map(|r| r.precision_at_k)
                    .unwrap_or(0.0)
            }
            Objective::Traffic { cell } => traffic_utility(original, protected, cell)
                .map(|r| r.utility_score())
                .unwrap_or(0.0),
            Objective::Distortion => spatial_distortion(original, protected)
                .map(|r| r.utility_score())
                .unwrap_or(0.0),
        }
    }

    /// Evaluates every candidate and picks the best feasible one.
    ///
    /// Privacy is scored against `reference` POIs — pass the attack's own
    /// extraction from the raw dataset (see [`PoiAttack::extract`]) or
    /// generator ground truth.
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] — no candidates registered or empty
    ///   dataset;
    /// * [`PrivapiError::NoFeasibleStrategy`] — every candidate leaks more
    ///   than the privacy floor.
    pub fn select(
        &self,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<(&dyn AnonymizationStrategy, SelectionReport), PrivapiError> {
        if self.candidates.is_empty() || dataset.record_count() == 0 {
            return Err(PrivapiError::EmptyDataset);
        }
        let mut results = Vec::with_capacity(self.candidates.len());
        let mut best: Option<(usize, f64)> = None;
        let mut best_recall = f64::INFINITY;
        for (i, strategy) in self.candidates.iter().enumerate() {
            let protected = strategy.anonymize(dataset, self.seed);
            let privacy = self.attack.evaluate_reference(&protected, reference);
            let utility = self.utility_of(dataset, &protected);
            let feasible = privacy.recall <= self.privacy_floor;
            best_recall = best_recall.min(privacy.recall);
            if feasible && best.map(|(_, u)| utility > u).unwrap_or(true) {
                best = Some((i, utility));
            }
            results.push(CandidateResult {
                info: strategy.info(),
                poi_recall: privacy.recall,
                utility,
                feasible,
            });
        }
        let report = SelectionReport {
            candidates: results,
            chosen: best.map(|(i, _)| i),
            privacy_floor: self.privacy_floor,
            objective: self.objective.to_string(),
        };
        match best {
            Some((i, _)) => Ok((self.candidates[i].as_ref(), report)),
            None => Err(PrivapiError::NoFeasibleStrategy {
                floor: self.privacy_floor,
                best_recall,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::reference_from_truth;
    use crate::strategies::{Identity, SpeedSmoothing};
    use mobility::gen::{CityModel, PopulationConfig};

    fn data() -> mobility::gen::GeneratedData {
        CityModel::builder().seed(17).build().generate_with_truth(&PopulationConfig {
            users: 4,
            days: 3,
            sampling_interval_s: 120,
            gps_noise_m: 5.0,
            leisure_probability: 0.4,
        })
    }

    #[test]
    fn selector_prefers_private_strategy_over_identity() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(
            Objective::CrowdedPlaces {
                cell: Meters::new(250.0),
                k: 10,
            },
            0.25,
            7,
        )
        .candidate(Box::new(Identity::new()))
        .candidate(Box::new(SpeedSmoothing::new(Meters::new(100.0)).unwrap()));
        let (winner, report) = selector.select(&d.dataset, &reference).unwrap();
        assert_eq!(winner.info().name, "speed-smoothing");
        // Identity must be infeasible: it leaks everything.
        let identity_row = &report.candidates[0];
        assert!(!identity_row.feasible, "identity row: {identity_row:?}");
        assert!(report.winner().unwrap().feasible);
    }

    #[test]
    fn impossible_floor_reports_best_recall() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(Objective::Distortion, -0.1, 7)
            .candidate(Box::new(Identity::new()));
        // Identity leaks ~everything; floor clamped to 0 — still infeasible
        // because recall on raw data is far above 0.
        let err = selector
            .select(&d.dataset, &reference)
            .map(|(s, _)| s.info())
            .expect_err("identity must not satisfy a zero floor");
        match err {
            PrivapiError::NoFeasibleStrategy { best_recall, .. } => {
                assert!(best_recall > 0.5);
            }
            other => panic!("expected NoFeasibleStrategy, got {other:?}"),
        }
    }

    #[test]
    fn empty_selector_errors() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(Objective::Distortion, 0.5, 7);
        assert!(matches!(
            selector.select(&d.dataset, &reference),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn default_candidates_cover_all_families() {
        let selector =
            StrategySelector::new(Objective::Distortion, 0.5, 7).with_default_candidates();
        assert_eq!(selector.candidate_count(), 11);
    }

    #[test]
    fn report_display_lists_candidates() {
        let d = data();
        let reference = reference_from_truth(&d.truth);
        let selector = StrategySelector::new(
            Objective::Traffic {
                cell: Meters::new(500.0),
            },
            1.0,
            7,
        )
        .candidate(Box::new(Identity::new()));
        let (_, report) = selector.select(&d.dataset, &reference).unwrap();
        let text = report.to_string();
        assert!(text.contains("identity"));
        assert!(text.contains("traffic"));
    }

    #[test]
    fn objective_display() {
        assert_eq!(
            Objective::CrowdedPlaces {
                cell: Meters::new(250.0),
                k: 5
            }
            .to_string(),
            "crowded-places(cell=250m, k=5)"
        );
        assert_eq!(
            Objective::Traffic {
                cell: Meters::new(500.0)
            }
            .to_string(),
            "traffic(cell=500m)"
        );
        assert_eq!(Objective::Distortion.to_string(), "distortion");
    }
}
