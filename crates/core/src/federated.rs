//! Device-local anonymization: the federated release contract.
//!
//! The central pipeline assumes devices trust the server with raw
//! trajectories. The federated mode inverts the threat model: the gateway
//! broadcasts the *winning strategy* as a versioned, serializable
//! [`StrategyConfig`]; every device runs
//! [`crate::strategy::AnonymizationStrategy::anonymize_user`] locally and
//! uploads only protected records; the server assembles the release from
//! those per-(day, user) protected trajectories without ever seeing raw
//! data. Server-side *selection* still needs ground truth, so a small
//! opt-in **calibration cohort** ([`calibration_cohort`]) keeps uploading
//! raw through the ordinary collect lane.
//!
//! The contract that makes this sound is exactly the
//! [`crate::strategy::UserLocality`] ladder plus the per-trajectory seed
//! derivation (`trajectory_rng`): a `UserLocal` strategy's output for one
//! trajectory depends only on (that trajectory, the run seed), so a device
//! anonymizing its own day slice produces byte-for-byte the trajectory the
//! server would have produced inside a full central run — and
//! [`FederatedSession::release`] re-interleaves the uploads in the central
//! (day, user) order. `GridAnchored` strategies additionally need the
//! dataset-wide grid anchor, which therefore travels *inside* the
//! broadcast config ([`StrategyConfig::grid_anchor`]) instead of being
//! derived from each device's drifted local bounding box.
//!
//! Version invalidation rule: a config bump (new winner) obsoletes every
//! previously uploaded protected record. [`FederatedSession::install`]
//! clears the store on a version bump and [`FederatedSession::accept`]
//! quarantines any record tagged with an older version — stale-config
//! devices are *counted and flagged, never silently mixed* into a release.

use crate::error::PrivapiError;
use crate::pool::StrategyPool;
use crate::strategies::{
    GaussianPerturbation, GeoIndistinguishability, Identity, SpatialCloaking, SpeedSmoothing,
    TemporalDownsampling,
};
use crate::strategy::{AnonymizationStrategy, UserLocality};
use geo::{BoundingBox, Meters};
use mobility::{Dataset, Trajectory, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A serializable, wire-friendly description of one built-in strategy
/// instance — what the gateway broadcasts so a device can reconstruct the
/// exact mechanism the server selected.
///
/// Only mechanisms that can run device-locally have a spec; external
/// `NonLocal` implementations return `None` from
/// [`AnonymizationStrategy::spec`] and are rejected by
/// [`FederationPolicy::validate_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// Constant-speed resampling, [`SpeedSmoothing`].
    SpeedSmoothing {
        /// Resampling tolerance in meters.
        epsilon_m: f64,
    },
    /// Planar Laplace noise, [`GeoIndistinguishability`].
    GeoIndistinguishability {
        /// Privacy parameter (1/m).
        epsilon: f64,
    },
    /// Grid generalization, [`SpatialCloaking`]. Needs the broadcast
    /// [`StrategyConfig::grid_anchor`] to cloak deterministically.
    SpatialCloaking {
        /// Cell side in meters.
        cell_m: f64,
    },
    /// Iid Gaussian noise, [`GaussianPerturbation`].
    GaussianPerturbation {
        /// Noise standard deviation in meters.
        sigma_m: f64,
    },
    /// Record thinning, [`TemporalDownsampling`].
    TemporalDownsampling {
        /// Thinning window in seconds.
        window_s: i64,
    },
    /// The no-protection control, [`Identity`].
    Identity,
}

impl StrategySpec {
    /// The mechanism family name (matches
    /// [`crate::strategy::StrategyInfo::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::SpeedSmoothing { .. } => "speed-smoothing",
            StrategySpec::GeoIndistinguishability { .. } => "geo-indistinguishability",
            StrategySpec::SpatialCloaking { .. } => "spatial-cloaking",
            StrategySpec::GaussianPerturbation { .. } => "gaussian",
            StrategySpec::TemporalDownsampling { .. } => "temporal-downsampling",
            StrategySpec::Identity => "identity",
        }
    }

    /// Whether instantiation needs a broadcast grid anchor (true exactly
    /// for the `GridAnchored` mechanisms).
    pub fn requires_anchor(&self) -> bool {
        matches!(self, StrategySpec::SpatialCloaking { .. })
    }

    /// Builds the concrete mechanism. Grid-anchored specs are pinned to
    /// `anchor` so device-local and central runs share one tessellation.
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::MissingGridAnchor`] when the spec
    ///   [`requires_anchor`](Self::requires_anchor) but none was given;
    /// * [`PrivapiError::InvalidParameter`] for out-of-range parameters
    ///   (a corrupt or hostile broadcast).
    pub fn instantiate(
        &self,
        anchor: Option<&BoundingBox>,
    ) -> Result<Box<dyn AnonymizationStrategy>, PrivapiError> {
        Ok(match *self {
            StrategySpec::SpeedSmoothing { epsilon_m } => {
                Box::new(SpeedSmoothing::new(Meters::new(epsilon_m))?)
            }
            StrategySpec::GeoIndistinguishability { epsilon } => {
                Box::new(GeoIndistinguishability::new(epsilon)?)
            }
            StrategySpec::SpatialCloaking { cell_m } => {
                let anchor = anchor.ok_or_else(|| PrivapiError::MissingGridAnchor {
                    strategy: self.name().into(),
                })?;
                Box::new(SpatialCloaking::new(Meters::new(cell_m))?.with_anchor(*anchor))
            }
            StrategySpec::GaussianPerturbation { sigma_m } => {
                Box::new(GaussianPerturbation::new(Meters::new(sigma_m))?)
            }
            StrategySpec::TemporalDownsampling { window_s } => {
                Box::new(TemporalDownsampling::new(window_s)?)
            }
            StrategySpec::Identity => Box::new(Identity::new()),
        })
    }

    /// A generous per-record displacement bound (meters) for the
    /// server-side plausibility gate: how far a *protected* fix can
    /// plausibly sit from the raw sensing region. Deterministic mechanisms
    /// get their exact bound; unbounded noise mechanisms get a tail bound
    /// chosen so rejecting an honest record is astronomically unlikely
    /// (the gate exists to bound adversaries, not to trim honest tails).
    pub fn plausible_displacement_m(&self) -> f64 {
        match *self {
            // Resampled points stay on the original polyline.
            StrategySpec::SpeedSmoothing { .. } => 0.0,
            // Laplace scale is 2/epsilon meters; e^-20 tail.
            StrategySpec::GeoIndistinguishability { epsilon } => 40.0 / epsilon.max(1e-6),
            StrategySpec::SpatialCloaking { cell_m } => cell_m * std::f64::consts::SQRT_2,
            // 8-sigma tail.
            StrategySpec::GaussianPerturbation { sigma_m } => 8.0 * sigma_m,
            StrategySpec::TemporalDownsampling { .. } | StrategySpec::Identity => 0.0,
        }
    }

    /// The sensing region inflated by the displacement bound (plus slack
    /// for projection error): protected records outside this box are
    /// implausible under this spec and must be rejected by the gate.
    pub fn plausible_region(&self, sensing_region: &BoundingBox) -> BoundingBox {
        // 1 degree ≈ 111 km; a flat conversion overestimates longitude
        // spans away from the equator, which only widens the gate.
        let margin_deg = (self.plausible_displacement_m() + 250.0) / 111_000.0;
        sensing_region.expanded(margin_deg)
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StrategySpec::SpeedSmoothing { epsilon_m } => {
                write!(f, "speed-smoothing(epsilon={epsilon_m:.0}m)")
            }
            StrategySpec::GeoIndistinguishability { epsilon } => {
                write!(f, "geo-indistinguishability(epsilon={epsilon})")
            }
            StrategySpec::SpatialCloaking { cell_m } => {
                write!(f, "spatial-cloaking(cell={cell_m:.0}m)")
            }
            StrategySpec::GaussianPerturbation { sigma_m } => {
                write!(f, "gaussian(sigma={sigma_m:.0}m)")
            }
            StrategySpec::TemporalDownsampling { window_s } => {
                write!(f, "temporal-downsampling(window={window_s}s)")
            }
            StrategySpec::Identity => write!(f, "identity"),
        }
    }
}

/// The versioned frame a gateway broadcasts to its fleet: which mechanism
/// to run, under which seed, against which grid anchor.
///
/// Two configs with the same `version` are identical by protocol — a
/// gateway must bump the version on *any* change, because devices use the
/// version alone to decide whether their uploaded history is still valid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyConfig {
    /// Monotonically increasing config generation. A bump invalidates
    /// every protected record uploaded under earlier versions.
    pub version: u64,
    /// The mechanism and its parameters.
    pub spec: StrategySpec,
    /// The run seed devices must derive their per-trajectory randomness
    /// from (same role as the central pipeline's seed).
    pub seed: u64,
    /// The dataset-wide quantized grid anchor
    /// ([`geo::BoundingBox::grid_anchor`]) for `GridAnchored` mechanisms.
    /// Broadcast — never derived from a device's local bounding box, whose
    /// drift would silently shear the tessellation.
    pub grid_anchor: Option<BoundingBox>,
}

impl StrategyConfig {
    /// Builds the mechanism this config describes.
    ///
    /// # Errors
    ///
    /// See [`StrategySpec::instantiate`].
    pub fn instantiate(&self) -> Result<Box<dyn AnonymizationStrategy>, PrivapiError> {
        self.spec.instantiate(self.grid_anchor.as_ref())
    }
}

/// The central-run counterfactual: what the server would publish if it saw
/// `raw` itself under `config`. The federated parity invariant says
/// [`FederatedSession::release`] must equal this byte for byte — the test
/// harness holds the raw oracle, the real federated server never does.
///
/// `raw` must be in the *windowed canonical form* the streaming pipeline
/// publishes — per-(day, user) trajectories in day-major, user-minor order,
/// i.e. [`mobility::WindowedDataset::prefix`] — because that is the
/// trajectory structure devices anonymize (one day slice at a time) and
/// the order [`FederatedSession::release`] assembles.
///
/// # Errors
///
/// See [`StrategySpec::instantiate`].
pub fn central_release(
    raw: &Dataset,
    config: &StrategyConfig,
) -> Result<Dataset, PrivapiError> {
    Ok(config.instantiate()?.anonymize(raw, config.seed))
}

/// Deterministically draws the opt-in calibration cohort: the `size`
/// users with the smallest salted hash. Pseudorandom (no positional bias)
/// yet reproducible from `salt` alone, so gateway and audit tooling agree
/// on the cohort without coordination.
pub fn calibration_cohort(users: &[UserId], size: usize, salt: u64) -> BTreeSet<UserId> {
    let mut ranked: Vec<(u64, UserId)> = users
        .iter()
        .map(|&u| (splitmix64(u.0 ^ salt.rotate_left(17)), u))
        .collect();
    ranked.sort_unstable();
    ranked.into_iter().take(size).map(|(_, u)| u).collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-campaign federation policy: opt-in to device-local anonymization,
/// with the cohort the server may still see raw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederationPolicy {
    /// How many users the calibration cohort holds.
    pub cohort_size: usize,
    /// Salt of the cohort draw (see [`calibration_cohort`]).
    pub cohort_salt: u64,
}

impl FederationPolicy {
    /// A policy with a small default cohort.
    pub fn new(cohort_size: usize) -> Self {
        Self {
            cohort_size,
            cohort_salt: 0x5EED_C0F0_1234_ABCD,
        }
    }

    /// Draws this policy's cohort from a user roster.
    pub fn cohort(&self, users: &[UserId]) -> BTreeSet<UserId> {
        calibration_cohort(users, self.cohort_size, self.cohort_salt)
    }

    /// Checks that every pool candidate can actually run on a device:
    /// declared `UserLocal` or `GridAnchored`, with a serializable spec.
    ///
    /// # Errors
    ///
    /// [`PrivapiError::NonFederable`] naming the first offending
    /// candidate.
    pub fn validate_pool(&self, pool: &StrategyPool) -> Result<(), PrivapiError> {
        for strategy in pool.iter() {
            let federable =
                strategy.locality() != UserLocality::NonLocal && strategy.spec().is_some();
            if !federable {
                return Err(PrivapiError::NonFederable {
                    strategy: strategy.info().to_string(),
                });
            }
        }
        Ok(())
    }
}

/// What [`FederatedSession::accept`] decided about one protected upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Current-version record: stored (replacing any earlier upload for
    /// the same (day, user) slot).
    Accepted,
    /// Tagged with an obsolete version: quarantined, counted, flagged.
    Stale {
        /// The session's current config version.
        current: u64,
        /// The version the upload was anonymized under.
        got: u64,
    },
    /// No config installed yet — nothing can be admitted.
    Unconfigured,
}

/// Cumulative session-layer accounting of a federated release stream —
/// the second of the three ledgers (collect / session / campaign) a
/// flagged record must appear in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTotals {
    /// Protected records admitted into the store (all versions' accepts).
    pub accepted_records: u64,
    /// Records quarantined because their config version was obsolete.
    pub stale_records: u64,
    /// Records rejected by the collect-side plausibility gate (reported
    /// here via [`FederatedSession::note_implausible`]).
    pub implausible_records: u64,
}

/// Server-side assembly of a federated release: the canonical
/// per-(day, user) protected trajectory store, valid for exactly one
/// config version at a time.
#[derive(Debug, Default)]
pub struct FederatedSession {
    config: Option<StrategyConfig>,
    /// day → user → that user's protected trajectory for the day, under
    /// the current config version only.
    store: BTreeMap<i64, BTreeMap<UserId, Trajectory>>,
    stale_users: BTreeSet<UserId>,
    totals: SessionTotals,
}

impl FederatedSession {
    /// An empty session with no config installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The active config, once one was installed.
    pub fn config(&self) -> Option<&StrategyConfig> {
        self.config.as_ref()
    }

    /// Installs a broadcast config. Returns `true` when the version
    /// advanced — in which case the entire store is cleared: every record
    /// uploaded under an earlier version is invalid by the federation
    /// contract and devices re-upload their history. Older or equal
    /// versions are ignored (at-least-once broadcast redelivery).
    pub fn install(&mut self, config: StrategyConfig) -> bool {
        let bumped = self.config.is_none_or(|c| config.version > c.version);
        if bumped {
            self.config = Some(config);
            self.store.clear();
        }
        bumped
    }

    /// Admits one device upload: the protected trajectory of `user` for
    /// `day`, anonymized under config `version`. Current-version uploads
    /// replace the (day, user) slot — re-uploads after a bump are how the
    /// fleet converges back to parity. Stale versions are counted and the
    /// user flagged, and the store is left untouched.
    pub fn accept(
        &mut self,
        version: u64,
        day: i64,
        user: UserId,
        trajectory: Trajectory,
    ) -> Admission {
        let Some(current) = self.config.map(|c| c.version) else {
            return Admission::Unconfigured;
        };
        if version != current {
            self.totals.stale_records += trajectory.len() as u64;
            self.stale_users.insert(user);
            return Admission::Stale {
                current,
                got: version,
            };
        }
        self.totals.accepted_records += trajectory.len() as u64;
        self.store.entry(day).or_default().insert(user, trajectory);
        Admission::Accepted
    }

    /// Folds collect-layer gate rejections into the session ledger so the
    /// counts agree across layers.
    pub fn note_implausible(&mut self, records: u64) {
        self.totals.implausible_records += records;
    }

    /// Users that ever uploaded under an obsolete version.
    pub fn stale_users(&self) -> &BTreeSet<UserId> {
        &self.stale_users
    }

    /// The cumulative session ledger.
    pub fn totals(&self) -> SessionTotals {
        self.totals
    }

    /// Days with at least one admitted trajectory.
    pub fn days(&self) -> Vec<i64> {
        self.store.keys().copied().collect()
    }

    /// The protected trajectories admitted for one day, in ascending user
    /// order — exactly one window of the federated release.
    pub fn day_slice(&self, day: i64) -> Dataset {
        let mut out = Dataset::new();
        if let Some(users) = self.store.get(&day) {
            for trajectory in users.values() {
                out.push(trajectory.clone());
            }
        }
        out
    }

    /// Assembles the federated release through `day` (inclusive): all
    /// admitted trajectories in (day ascending, user ascending) order —
    /// the same canonical order [`mobility::WindowedDataset::prefix`]
    /// gives a central release, which is what makes byte-for-byte parity
    /// with [`central_release`] well-defined.
    pub fn release_through(&self, day: i64) -> Dataset {
        let mut out = Dataset::new();
        for (_, users) in self.store.range(..=day) {
            for trajectory in users.values() {
                out.push(trajectory.clone());
            }
        }
        out
    }

    /// The full release over every admitted day.
    pub fn release(&self) -> Dataset {
        match self.store.keys().next_back() {
            Some(&last) => self.release_through(last),
            None => Dataset::new(),
        }
    }
}

/// Per-window collect-layer audit of a federated ingestion stream — the
/// federated sibling of [`crate::streaming::IngestDelta`], carried into
/// campaign provenance so a degraded window can never masquerade as a
/// clean one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationDelta {
    /// The day this window closed.
    pub day: i64,
    /// The config version the window was assembled under.
    pub config_version: u64,
    /// Protected records admitted for this day's slot.
    pub protected_records: u64,
    /// Records admitted for *earlier* days since the previous close —
    /// version-bump catch-up re-uploads. Non-zero means earlier published
    /// windows have been superseded by this version's data.
    pub reuploaded_records: u64,
    /// Whole batches quarantined because their version was obsolete.
    pub stale_batches: u64,
    /// Records inside those stale batches.
    pub stale_records: u64,
    /// Devices that uploaded stale batches since the previous close.
    pub stale_devices: u64,
    /// Records rejected by the plausibility gate since the previous close.
    pub implausible_records: u64,
    /// Devices flagged by the gate so far (cumulative — poisoning sticks).
    pub poisoned_devices: u64,
    /// Registered devices that have not finished reporting this day under
    /// the current version.
    pub straggler_devices: u64,
}

impl FederationDelta {
    /// A zeroed delta for `day` under `config_version`.
    pub fn new(day: i64, config_version: u64) -> Self {
        Self {
            day,
            config_version,
            protected_records: 0,
            reuploaded_records: 0,
            stale_batches: 0,
            stale_records: 0,
            stale_devices: 0,
            implausible_records: 0,
            poisoned_devices: 0,
            straggler_devices: 0,
        }
    }

    /// Whether the window was assembled with no degradation: no stale or
    /// implausible uploads, no stragglers, no superseding re-uploads.
    pub fn is_clean(&self) -> bool {
        self.reuploaded_records == 0
            && self.stale_batches == 0
            && self.stale_records == 0
            && self.stale_devices == 0
            && self.implausible_records == 0
            && self.poisoned_devices == 0
            && self.straggler_devices == 0
    }
}

impl fmt::Display for FederationDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "day {} v{}: {} protected (+{} reuploaded), {} stale batches \
             ({} records, {} devices), {} implausible ({} poisoned devices), \
             {} stragglers",
            self.day,
            self.config_version,
            self.protected_records,
            self.reuploaded_records,
            self.stale_batches,
            self.stale_records,
            self.stale_devices,
            self.implausible_records,
            self.poisoned_devices,
            self.straggler_devices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{LocationRecord, Timestamp, WindowedDataset, DAY_SECONDS};

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn two_day_dataset() -> Dataset {
        Dataset::from_records(vec![
            rec(1, 100, 45.70, 4.80),
            rec(1, 900, 45.71, 4.81),
            rec(2, 200, 45.72, 4.82),
            rec(1, DAY_SECONDS + 100, 45.73, 4.83),
            rec(2, DAY_SECONDS + 300, 45.74, 4.84),
        ])
    }

    fn specs() -> Vec<StrategySpec> {
        vec![
            StrategySpec::SpeedSmoothing { epsilon_m: 100.0 },
            StrategySpec::GeoIndistinguishability { epsilon: 0.01 },
            StrategySpec::SpatialCloaking { cell_m: 250.0 },
            StrategySpec::GaussianPerturbation { sigma_m: 100.0 },
            StrategySpec::TemporalDownsampling { window_s: 600 },
            StrategySpec::Identity,
        ]
    }

    fn config_for(spec: StrategySpec, raw: &Dataset) -> StrategyConfig {
        StrategyConfig {
            version: 1,
            spec,
            seed: 42,
            grid_anchor: spec
                .requires_anchor()
                .then(|| raw.bounding_box().unwrap().grid_anchor()),
        }
    }

    /// The tentpole in miniature: device-by-device `anonymize_user` over
    /// day slices, re-interleaved by the session, equals the one-shot
    /// central release for every spec.
    #[test]
    fn session_reassembles_central_release_for_every_spec() {
        let raw = two_day_dataset();
        let windows = WindowedDataset::partition(&raw);
        for spec in specs() {
            let config = config_for(spec, &raw);
            let strategy = config.instantiate().unwrap();
            let mut session = FederatedSession::new();
            assert!(session.install(config));
            for window in &windows {
                for &user in &window.users() {
                    // Each "device" sees only its own day slice.
                    let local = Dataset::from_trajectories(
                        window
                            .dataset()
                            .trajectories_of(user)
                            .into_iter()
                            .cloned()
                            .collect(),
                    );
                    let protected = strategy.anonymize_user(&local, user, config.seed);
                    assert_eq!(protected.len(), 1, "one trajectory per (user, day)");
                    session.accept(config.version, window.day(), user, (*protected[0]).clone());
                }
            }
            let prefix = windows.prefix(windows.len() - 1);
            let central = central_release(&prefix, &config).unwrap();
            assert_eq!(session.release(), central, "spec {spec} must re-interleave");
            assert_eq!(session.release_through(0).user_count(), 2);
        }
    }

    #[test]
    fn version_bump_clears_the_store_and_stale_uploads_quarantine() {
        let raw = two_day_dataset();
        let config = config_for(StrategySpec::Identity, &raw);
        let mut session = FederatedSession::new();
        let t = Trajectory::new(UserId(1), vec![rec(1, 100, 45.7, 4.8)]);
        assert_eq!(
            session.accept(1, 0, UserId(1), t.clone()),
            Admission::Unconfigured
        );
        assert!(session.install(config));
        assert!(!session.install(config), "redelivery is idempotent");
        assert_eq!(
            session.accept(1, 0, UserId(1), t.clone()),
            Admission::Accepted
        );
        assert_eq!(session.release().record_count(), 1);

        let v2 = StrategyConfig {
            version: 2,
            ..config
        };
        assert!(session.install(v2));
        assert_eq!(session.release().record_count(), 0, "bump invalidates");
        assert_eq!(
            session.accept(1, 0, UserId(1), t.clone()),
            Admission::Stale { current: 2, got: 1 }
        );
        assert_eq!(session.totals().stale_records, 1);
        assert!(session.stale_users().contains(&UserId(1)));
        assert_eq!(session.accept(2, 0, UserId(1), t), Admission::Accepted);
        assert_eq!(session.release().record_count(), 1, "catch-up restores");
    }

    #[test]
    fn cohort_is_deterministic_and_salt_sensitive() {
        let users: Vec<UserId> = (0..50).map(UserId).collect();
        let a = calibration_cohort(&users, 5, 7);
        let b = calibration_cohort(&users, 5, 7);
        let c = calibration_cohort(&users, 5, 8);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
        assert_ne!(a, c, "different salt draws a different cohort");
        assert!(calibration_cohort(&users, 100, 7).len() == 50);
    }

    #[test]
    fn policy_rejects_non_federable_pools() {
        let policy = FederationPolicy::new(2);
        assert!(policy.validate_pool(&StrategyPool::default_pool()).is_ok());

        struct Opaque;
        impl AnonymizationStrategy for Opaque {
            fn info(&self) -> crate::strategy::StrategyInfo {
                crate::strategy::StrategyInfo {
                    name: "opaque".into(),
                    params: String::new(),
                }
            }
            fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
                dataset.clone()
            }
        }
        let pool = StrategyPool::default_pool().with(Box::new(Opaque));
        let err = policy.validate_pool(&pool).unwrap_err();
        assert!(matches!(err, PrivapiError::NonFederable { .. }));
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn anchored_spec_requires_its_anchor() {
        let spec = StrategySpec::SpatialCloaking { cell_m: 250.0 };
        assert!(spec.requires_anchor());
        let err = spec.instantiate(None).unwrap_err();
        assert!(matches!(err, PrivapiError::MissingGridAnchor { .. }));
        let raw = two_day_dataset();
        let anchor = raw.bounding_box().unwrap().grid_anchor();
        assert!(spec.instantiate(Some(&anchor)).is_ok());
    }

    #[test]
    fn corrupt_spec_parameters_are_rejected() {
        assert!(StrategySpec::SpeedSmoothing { epsilon_m: -1.0 }
            .instantiate(None)
            .is_err());
        assert!(StrategySpec::TemporalDownsampling { window_s: 0 }
            .instantiate(None)
            .is_err());
    }

    #[test]
    fn plausible_region_scales_with_the_mechanism() {
        let raw = two_day_dataset();
        let region = raw.bounding_box().unwrap();
        let tight = StrategySpec::Identity.plausible_region(&region);
        let wide =
            StrategySpec::GeoIndistinguishability { epsilon: 0.005 }.plausible_region(&region);
        assert!(tight.contains(&GeoPoint::new(45.70, 4.80).unwrap()));
        let probe = GeoPoint::new(45.70, 4.90).unwrap(); // ~7.8 km east
        assert!(
            !tight.contains(&probe),
            "identity tolerates no displacement"
        );
        assert!(
            wide.contains(&probe),
            "geo-I at eps=0.005 must tolerate 8 km"
        );
    }

    #[test]
    fn delta_display_and_cleanliness() {
        let mut d = FederationDelta::new(3, 2);
        assert!(d.is_clean());
        d.stale_batches = 1;
        d.stale_records = 4;
        assert!(!d.is_clean());
        let s = d.to_string();
        assert!(s.contains("day 3 v2"));
        assert!(s.contains("1 stale batches"));
    }

    #[test]
    fn spec_roundtrips_through_the_pool() {
        // Every default-pool candidate exposes a spec that reconstructs an
        // identical mechanism (same info, same outputs).
        let raw = two_day_dataset();
        let anchor = raw.bounding_box().unwrap().grid_anchor();
        for strategy in StrategyPool::default_pool().iter() {
            let spec = strategy.spec().expect("default pool is federable");
            let rebuilt = spec.instantiate(Some(&anchor)).unwrap();
            assert_eq!(rebuilt.info().name, strategy.info().name);
            if !spec.requires_anchor() {
                assert_eq!(
                    rebuilt.anonymize(&raw, 9),
                    strategy.anonymize(&raw, 9),
                    "spec {spec} must reconstruct the exact mechanism"
                );
            }
        }
    }
}
