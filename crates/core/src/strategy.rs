//! The anonymization-strategy abstraction.
//!
//! "We believe there is not one unique anonymization strategy that always
//! performs well but many from which we can choose the one that fits the
//! best to the usage that will be done with the anonymized dataset."
//! (paper, §3). Every mechanism implements [`AnonymizationStrategy`]; the
//! [`crate::selection`] module searches over boxed strategies.

use crate::federated::StrategySpec;
use mobility::{Dataset, Trajectory, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How much of the dataset one user's protected output depends on — the
/// determinism contract behind per-user incremental re-anonymization.
///
/// A streaming deployment re-publishes a growing prefix every day. Whether
/// yesterday's protected output (and the self-attack shards derived from
/// it) can be reused for a user who contributed no new records depends on
/// what [`AnonymizationStrategy::anonymize`] actually reads, so every
/// strategy *declares* it here and the per-strategy session cache
/// ([`crate::streaming::StrategySessionCache`]) turns the declaration into
/// an invalidation rule:
///
/// * [`UserLocality::UserLocal`] — user `u`'s output trajectories depend
///   only on `u`'s own records and the run seed. Unchanged users keep
///   their cached protected trajectories across windows. Randomized
///   mechanisms qualify only when their randomness is derived per
///   user/trajectory (as the strategies' shared `trajectory_rng` seed
///   derivation does) — a
///   mechanism drawing from one dataset-wide RNG stream would couple users
///   through record ordering and must declare [`UserLocality::NonLocal`].
/// * [`UserLocality::GridAnchored`] — like `UserLocal`, plus the dataset's
///   bounding box (the strategy anchors a grid/tessellation on its
///   *quantized* padded form, [`geo::BoundingBox::grid_anchor`], e.g.
///   [`crate::strategies::SpatialCloaking`]). A window that widens the
///   prefix bounding box past a lattice line shifts every cell and
///   invalidates **every** user's cached output for this strategy;
///   drift inside the lattice — the common case — and windows touching
///   only some users re-anonymize the changed users alone.
/// * [`UserLocality::NonLocal`] — the output may depend on anything in the
///   dataset. Nothing is cached: every window re-runs the full
///   [`AnonymizationStrategy::anonymize`] and a full protected-side
///   extraction. This is the safe default for external implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserLocality {
    /// Output for user `u` is a function of (`u`'s records, seed) only.
    UserLocal,
    /// Output for user `u` is a function of (`u`'s records, seed, dataset
    /// bounding box) only — and of the box only through its quantized
    /// anchor form ([`geo::BoundingBox::grid_anchor`]).
    GridAnchored,
    /// Output may depend on the whole dataset (the conservative default).
    NonLocal,
}

/// Identity card of a strategy instance: mechanism name plus the parameter
/// setting, used in reports and tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyInfo {
    /// Mechanism family name, e.g. `"speed-smoothing"`.
    pub name: String,
    /// Human-readable parameter description, e.g. `"epsilon=100m"`.
    pub params: String,
}

impl fmt::Display for StrategyInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.params.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}({})", self.name, self.params)
        }
    }
}

/// A location-privacy protection mechanism.
///
/// Strategies are deterministic given `(dataset, seed)` so experiments are
/// replayable; randomized mechanisms derive their randomness from the seed.
///
/// Implementations must be `Send + Sync` so the selector can evaluate
/// candidates from worker threads.
pub trait AnonymizationStrategy: Send + Sync {
    /// Mechanism name and parameters.
    fn info(&self) -> StrategyInfo;

    /// Produces the protected version of `dataset`.
    ///
    /// The whole dataset is available — PRIVAPI "leverages the global
    /// knowledge of the whole system" (paper, §3) — though most mechanisms
    /// rewrite trajectories independently.
    fn anonymize(&self, dataset: &Dataset, seed: u64) -> Dataset;

    /// The declared determinism scope of per-user output — see
    /// [`UserLocality`]. Defaults to the conservative
    /// [`UserLocality::NonLocal`] (no per-user reuse).
    fn locality(&self) -> UserLocality {
        UserLocality::NonLocal
    }

    /// A serializable description of this instance that a gateway can
    /// broadcast so a *device* reconstructs the exact mechanism (see
    /// [`crate::federated::StrategySpec`]). `None` — the default — marks
    /// the strategy as non-federable: it can only run centrally. Built-in
    /// mechanisms override this; an implementation returning `Some` must
    /// guarantee `spec().instantiate(..)` rebuilds a mechanism whose
    /// outputs are byte-identical to its own.
    fn spec(&self) -> Option<StrategySpec> {
        None
    }

    /// The per-user incremental surface: protected trajectories of `user`,
    /// equal to filtering [`AnonymizationStrategy::anonymize`]'s output to
    /// that user.
    ///
    /// # Contract
    ///
    /// For *any* strategy, `anonymize_user(d, u, s)` must equal the
    /// trajectories of user `u` in `anonymize(d, s)`, in the same relative
    /// order. Strategies declaring [`UserLocality::UserLocal`] or
    /// [`UserLocality::GridAnchored`] additionally promise:
    ///
    /// * **locality** — the result depends only on `u`'s records, the
    ///   seed and (for `GridAnchored`) the dataset bounding box, so an
    ///   unchanged user's cached output stays valid as the dataset grows;
    /// * **shape preservation** — `anonymize` maps each input trajectory
    ///   to exactly one output trajectory (possibly emptied), preserving
    ///   dataset order, so per-user outputs can be re-interleaved into the
    ///   full protected dataset byte-identically.
    ///
    /// The default implementation anonymizes the whole dataset and filters
    /// — always correct, never cheaper; local strategies override it to
    /// touch only `user`'s trajectories. Outputs are shared handles so the
    /// streaming cache can store and re-interleave them without copying
    /// record data.
    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        self.anonymize(dataset, seed)
            .into_shared()
            .into_iter()
            .filter(|t| t.user() == user)
            .collect()
    }
}

impl fmt::Debug for dyn AnonymizationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnonymizationStrategy({})", self.info())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_display() {
        let with_params = StrategyInfo {
            name: "geo-i".into(),
            params: "epsilon=0.01".into(),
        };
        assert_eq!(with_params.to_string(), "geo-i(epsilon=0.01)");
        let bare = StrategyInfo {
            name: "identity".into(),
            params: String::new(),
        };
        assert_eq!(bare.to_string(), "identity");
    }

    #[test]
    fn trait_is_object_safe_and_debug() {
        struct Noop;
        impl AnonymizationStrategy for Noop {
            fn info(&self) -> StrategyInfo {
                StrategyInfo {
                    name: "noop".into(),
                    params: String::new(),
                }
            }
            fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
                dataset.clone()
            }
        }
        let boxed: Box<dyn AnonymizationStrategy> = Box::new(Noop);
        assert_eq!(format!("{boxed:?}"), "AnonymizationStrategy(noop)");
        let ds = Dataset::new();
        assert_eq!(boxed.anonymize(&ds, 0), ds);
        // External implementations default to the conservative contract.
        assert_eq!(boxed.locality(), UserLocality::NonLocal);
    }

    #[test]
    fn default_anonymize_user_filters_the_full_output() {
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp};
        struct Noop;
        impl AnonymizationStrategy for Noop {
            fn info(&self) -> StrategyInfo {
                StrategyInfo {
                    name: "noop".into(),
                    params: String::new(),
                }
            }
            fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
                dataset.clone()
            }
        }
        let rec = |u: u64, t: i64| {
            LocationRecord::new(
                UserId(u),
                Timestamp::new(t),
                GeoPoint::new(45.0, 4.0).unwrap(),
            )
        };
        let ds = Dataset::from_trajectories(vec![
            Trajectory::new(UserId(1), vec![rec(1, 0)]),
            Trajectory::new(UserId(2), vec![rec(2, 0)]),
            Trajectory::new(UserId(1), vec![rec(1, 86_400)]),
        ]);
        let out = Noop.anonymize_user(&ds, UserId(1), 0);
        assert_eq!(out.len(), 2, "both of user 1's trajectories, in order");
        assert_eq!(out[0].records()[0].time, Timestamp::new(0));
        assert_eq!(out[1].records()[0].time, Timestamp::new(86_400));
        assert!(Noop.anonymize_user(&ds, UserId(9), 0).is_empty());
    }
}
