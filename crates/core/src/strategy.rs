//! The anonymization-strategy abstraction.
//!
//! "We believe there is not one unique anonymization strategy that always
//! performs well but many from which we can choose the one that fits the
//! best to the usage that will be done with the anonymized dataset."
//! (paper, §3). Every mechanism implements [`AnonymizationStrategy`]; the
//! [`crate::selection`] module searches over boxed strategies.

use mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity card of a strategy instance: mechanism name plus the parameter
/// setting, used in reports and tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyInfo {
    /// Mechanism family name, e.g. `"speed-smoothing"`.
    pub name: String,
    /// Human-readable parameter description, e.g. `"epsilon=100m"`.
    pub params: String,
}

impl fmt::Display for StrategyInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.params.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}({})", self.name, self.params)
        }
    }
}

/// A location-privacy protection mechanism.
///
/// Strategies are deterministic given `(dataset, seed)` so experiments are
/// replayable; randomized mechanisms derive their randomness from the seed.
///
/// Implementations must be `Send + Sync` so the selector can evaluate
/// candidates from worker threads.
pub trait AnonymizationStrategy: Send + Sync {
    /// Mechanism name and parameters.
    fn info(&self) -> StrategyInfo;

    /// Produces the protected version of `dataset`.
    ///
    /// The whole dataset is available — PRIVAPI "leverages the global
    /// knowledge of the whole system" (paper, §3) — though most mechanisms
    /// rewrite trajectories independently.
    fn anonymize(&self, dataset: &Dataset, seed: u64) -> Dataset;
}

impl fmt::Debug for dyn AnonymizationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnonymizationStrategy({})", self.info())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_display() {
        let with_params = StrategyInfo {
            name: "geo-i".into(),
            params: "epsilon=0.01".into(),
        };
        assert_eq!(with_params.to_string(), "geo-i(epsilon=0.01)");
        let bare = StrategyInfo {
            name: "identity".into(),
            params: String::new(),
        };
        assert_eq!(bare.to_string(), "identity");
    }

    #[test]
    fn trait_is_object_safe_and_debug() {
        struct Noop;
        impl AnonymizationStrategy for Noop {
            fn info(&self) -> StrategyInfo {
                StrategyInfo {
                    name: "noop".into(),
                    params: String::new(),
                }
            }
            fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
                dataset.clone()
            }
        }
        let boxed: Box<dyn AnonymizationStrategy> = Box::new(Noop);
        assert_eq!(format!("{boxed:?}"), "AnonymizationStrategy(noop)");
        let ds = Dataset::new();
        assert_eq!(boxed.anonymize(&ds, 0), ds);
    }
}
