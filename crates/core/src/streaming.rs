//! Streaming publication: day windows with cross-release shard and index
//! reuse.
//!
//! The batch path ([`crate::pipeline::PrivApi::publish`]) treats every
//! release as a from-scratch job: it re-extracts every user's POI exposure
//! and rebuilds the reference index even when yesterday's release already
//! computed almost all of it. A continuously running deployment publishes
//! *day windows* instead, and almost everything about the original-side
//! attack state carries over from one window to the next:
//!
//! * the per-user [`UserAttackShard`]s — a user without new records today
//!   has exactly yesterday's shard;
//! * the [`ReferenceIndex`] — unchanged users keep their per-user
//!   [`geo::PointIndex`]; changed users are amended in place
//!   ([`ReferenceIndex::update_user`]).
//!
//! [`SessionCache`] owns that cross-window state and
//! [`SessionCache::advance`] folds one [`DatasetWindow`] into it, tracking
//! what was reused vs. re-extracted in a [`WindowDelta`].
//! [`StreamingPublisher`] pairs a cache with a
//! [`crate::pipeline::PrivApi`] and publishes window after window through
//! [`crate::pipeline::PrivApi::publish_window`].
//!
//! # Invalidation rules
//!
//! A cached shard for user `u` is valid for the grown prefix iff
//!
//! 1. `u` has **no records in the new window** (their merged record
//!    history, and hence their dwell field, is unchanged), **and**
//! 2. the **extraction grid is unchanged** — the dwell grid is anchored on
//!    the prefix's bounding box, so a window that widens the bounding box
//!    shifts every user's cell boundaries and invalidates *all* shards.
//!
//! Either way no *full-dataset* extraction pass runs on the original side:
//! refreshes go through the per-user [`PoiAttack::extract_user`] delta
//! path (fanned out over the cores).
//!
//! # The protected side: per-strategy caches
//!
//! The original-side cache alone still leaves the dominant per-window
//! cost untouched: every candidate strategy re-anonymizes the whole
//! prefix and re-extracts every user's protected POIs on every window.
//! [`StrategySessionCache`] extends the same per-user reuse to each
//! candidate's *protected* data, keyed on the determinism contract the
//! strategy declares through
//! [`crate::strategy::AnonymizationStrategy::locality`]:
//!
//! * a [`UserLocality::UserLocal`] candidate re-anonymizes only users
//!   with new records; everyone else's cached protected trajectories —
//!   and, while the candidate's protected bounding box holds still, their
//!   protected-side [`UserAttackShard`]s — carry over;
//! * a [`UserLocality::GridAnchored`] candidate additionally re-anonymizes
//!   everyone when the prefix bounding box widens (its tessellation moved);
//! * a [`UserLocality::NonLocal`] candidate is never cached and re-runs
//!   the full anonymize + self-attack, exactly as batch publish would.
//!
//! Together the two layers make the [`PoiAttack::extractions`] probe read
//! **zero** full passes per window for a fully-local pool (batch pays
//! `pool + 1` per release), and keep [`PoiAttack::user_extractions`]
//! proportional to the users a window actually changed.
//!
//! # The winners-parity invariant
//!
//! Publishing window `i` incrementally selects **byte-identical** winners
//! (same [`crate::selection::SelectionReport`], same released dataset) as
//! a batch [`crate::pipeline::PrivApi::publish`] over the concatenated
//! prefix [`mobility::WindowedDataset::prefix`]`(i)`. The cache never
//! approximates: refreshed shards are extracted from the *full* accumulated
//! prefix (cross-midnight dwell included), and amended per-user indexes
//! are structurally identical to freshly built ones. Property tests across
//! generator seeds enforce this.

use crate::attack::{
    PoiAttack, PoiAttackConfig, ReferenceIndex, ReferencePois, UserAttackShard,
};
use crate::engine::{EvalContext, ObjectiveBaseline};
use crate::error::PrivapiError;
use crate::metrics::{CrowdedBaseline, TrafficBaseline};
use crate::pipeline::{PrivApi, PrivApiConfig, PublishedDataset};
use crate::pool::StrategyPool;
use crate::selection::Objective;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::{BoundingBox, CellId, Meters, UniformGrid};
use mobility::{
    Dataset, DatasetWindow, LocationRecord, Timestamp, Trajectory, UserId, WindowedDataset,
};
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Reserved synthetic user id used to pin a per-user mini-dataset's
/// bounding box to the full prefix box (see `pinned_view`); never a real
/// participant — a dataset that does contain it falls back to full-prefix
/// per-user anonymization rather than risking a pin collision.
const BBOX_PIN_USER: UserId = UserId(u64::MAX);

/// What [`SessionCache::advance`] did with one day window — the audit
/// record of the incremental path's cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDelta {
    /// Day index of the ingested window.
    pub day: i64,
    /// Users re-extracted over the grown prefix (new records, or a grid
    /// rebuild touched everyone).
    pub users_refreshed: usize,
    /// Users whose cached shard (and per-user index) was reused untouched.
    pub users_reused: usize,
    /// Refreshed users whose per-user [`geo::PointIndex`] was extended in
    /// place (new POIs appended) instead of rebuilt.
    pub indexes_extended: usize,
    /// Whether the window widened the prefix bounding box, forcing a new
    /// extraction grid and a full per-user refresh.
    pub grid_rebuilt: bool,
    /// Users whose shard was **derived** from a donor cache's extraction
    /// ([`PopulationCache::advance_derived`]) instead of re-extracted —
    /// the multi-campaign orchestrator's shared-extraction savings.
    /// Always zero on the single-session [`PopulationCache::advance`]
    /// path.
    pub users_derived: usize,
    /// Lattice pitch of the padded extraction-grid anchor, in millidegrees
    /// ([`geo::GRID_ANCHOR_QUANTUM_DEG`]): the documented tolerance within
    /// which bounding-box growth does **not** move the grid. Recorded in
    /// every delta so downstream audit rows carry the padding factor the
    /// `grid_rebuilt` flag was judged under.
    pub grid_quantum_millideg: u32,
}

/// [`WindowDelta::grid_quantum_millideg`], derived from the geo constant.
fn grid_quantum_millideg() -> u32 {
    (geo::GRID_ANCHOR_QUANTUM_DEG * 1000.0).round() as u32
}

/// Feed a window delta into the `streaming.*` obs instruments. The delta
/// type is unchanged — observability rides alongside the audit structs,
/// and is a no-op while recording is off.
fn record_window_delta(delta: &WindowDelta) {
    if !obs::enabled() {
        return;
    }
    obs::count("streaming.users_refreshed", delta.users_refreshed as u64);
    obs::count("streaming.users_reused", delta.users_reused as u64);
    obs::count("streaming.users_derived", delta.users_derived as u64);
    obs::count("streaming.indexes_extended", delta.indexes_extended as u64);
    obs::count("streaming.grid_rebuilds", delta.grid_rebuilt as u64);
    obs::count("streaming.windows_ingested", 1);
}

/// Feed a baseline-fold delta into the `streaming.baseline_*` obs
/// instruments (no-op while recording is off).
fn record_baseline_delta(delta: &BaselineDelta) {
    if !obs::enabled() {
        return;
    }
    obs::count("streaming.baseline_reuses", delta.reused as u64);
    obs::count("streaming.baseline_rebuilds", delta.rebuilt as u64);
    obs::count(
        "streaming.baseline_cells_updated",
        delta.cells_updated as u64,
    );
}

/// Original-side audit of the incremental utility-baseline fold for one
/// published window: whether the per-objective projection (crowded top-k /
/// traffic day histograms) was folded forward from the cached counts or
/// rebuilt from scratch, and how much it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineDelta {
    /// The cached fold was discarded and rebuilt over the whole prefix
    /// (first window for this objective, an objective change, or a
    /// quantized-grid move).
    pub rebuilt: bool,
    /// The cached fold was reused and extended by only the new window's
    /// trajectories.
    pub reused: bool,
    /// Distinct baseline cells (crowded) or `(cell, hour)` day-histogram
    /// entries (traffic) touched while folding this window.
    pub cells_updated: usize,
}

/// Per-window audit of what the reliable ingestion layer fed the stream —
/// the degraded-mode record of a window assembled under network faults.
///
/// The ingestion protocol (the platform's `collect` endpoint) guarantees
/// the strictly-ascending-day contract of [`PopulationCache::advance`] by
/// construction: a day window is closed exactly once, in order, after a
/// delivery deadline. Data that misses its deadline — e.g. a partitioned
/// region's stragglers — is **quarantined into the next window** instead of
/// poisoning the stream with a stale day, and this struct counts exactly
/// what happened so every published window carries its provenance.
///
/// A fault-free run has [`IngestDelta::is_clean`] deltas everywhere; the
/// chaos tests assert that such runs publish byte-identical windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestDelta {
    /// Day index of the closed window.
    pub day: i64,
    /// Day batches folded into this window (deduplicated, in order).
    pub batches_applied: u64,
    /// Duplicate batch deliveries absorbed by the (device, sequence)
    /// watermark — retransmissions and fault-injected copies.
    pub batches_duplicate: u64,
    /// Records published in this window for its own day.
    pub records: u64,
    /// Records for earlier, already-closed days quarantined into this
    /// window (stragglers that eventually arrived).
    pub records_quarantined: u64,
    /// Devices that had not completed this window's day when it closed.
    pub straggler_devices: u64,
    /// Records for this day (or earlier) already delivered to the endpoint
    /// but still stuck behind a sequence gap in a device's reorder buffer
    /// at close time — once the gap fills they are released and quarantined
    /// into a later window.
    pub records_deferred: u64,
}

impl IngestDelta {
    /// A zeroed delta for `day`.
    pub fn new(day: i64) -> Self {
        Self {
            day,
            ..Self::default()
        }
    }

    /// Whether the window was assembled without degradation: nothing
    /// quarantined, nothing deferred, no straggler devices.
    pub fn is_clean(&self) -> bool {
        self.records_quarantined == 0
            && self.straggler_devices == 0
            && self.records_deferred == 0
    }
}

impl std::fmt::Display for IngestDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "day {}: {} batches ({} dup), {} records",
            self.day, self.batches_applied, self.batches_duplicate, self.records
        )?;
        if !self.is_clean() {
            write!(
                f,
                " [degraded: {} quarantined, {} deferred, {} stragglers]",
                self.records_quarantined, self.records_deferred, self.straggler_devices
            )?;
        }
        Ok(())
    }
}

/// Cross-window **original-side** attack state: the accumulated prefix,
/// the per-user shards extracted from it, and the reference POIs + spatial
/// index the engine scores candidates against.
///
/// This is the population-level half of the streaming state, usable on its
/// own: the multi-campaign orchestrator keeps *one* `PopulationCache` per
/// attack configuration and lets every same-configuration campaign read
/// it, so the original-side extraction work is paid once per window
/// instead of once per campaign. The single-campaign [`SessionCache`]
/// pairs one `PopulationCache` with one [`StrategySessionCache`].
///
/// The cache is pure state — it holds no attack of its own.
/// [`PopulationCache::advance`] borrows the caller's [`PoiAttack`] so the
/// extraction accounting (and any custom attack parameters) stay with the
/// publisher that owns the session.
#[derive(Debug, Default)]
pub struct PopulationCache {
    prefix: Dataset,
    /// The prefix decomposed per user: each user's trajectories in prefix
    /// order, as shared handles into the same allocations `prefix` holds.
    /// This is what makes every per-user path — shard re-extraction,
    /// per-user re-anonymization, protected-prefix assembly — O(that
    /// user's history) instead of O(prefix): a mini-dataset view is a
    /// `Vec<Arc>` clone, never a record copy or a full-prefix filter scan.
    by_user: BTreeMap<UserId, Vec<Arc<Trajectory>>>,
    /// The prefix's bounding box, maintained incrementally
    /// ([`geo::BoundingBox::union`] per window — exact under append, so
    /// the derived grid equals a from-scratch scan's without re-touching
    /// old records).
    bbox: Option<geo::BoundingBox>,
    /// The quantized anchor ([`geo::BoundingBox::grid_anchor`]) of `bbox`
    /// after the last window — the box the extraction grid is actually
    /// built on. Shards are invalidated when *this* moves, not on every
    /// raw-box drift: growth inside the padded 0.05° lattice keeps every
    /// cached shard valid.
    grid_box: Option<geo::BoundingBox>,
    shards: BTreeMap<UserId, UserAttackShard>,
    reference: ReferencePois,
    index: Option<ReferenceIndex>,
    windows_ingested: usize,
    last_day: Option<i64>,
    /// Fingerprint of the attack parameters the cached shards, reference
    /// and index were derived under. A session advanced by an attack with
    /// a different configuration drops the derived state (the prefix
    /// itself stays valid) and re-extracts everyone instead of silently
    /// matching at stale parameters.
    attack_config: Option<PoiAttackConfig>,
    /// Incrementally folded per-objective utility baselines (interior
    /// mutability: folding is a cache amendment, not an observable state
    /// change — `publish_session` borrows the population immutably).
    baselines: Mutex<BaselineFold>,
}

/// The incrementally folded original-side utility projections, one slot
/// per objective the session has been published under.
#[derive(Debug, Default)]
struct BaselineFold {
    slots: Vec<BaselineSlot>,
}

/// One objective's folded projection of the prefix.
#[derive(Debug)]
struct BaselineSlot {
    objective: Objective,
    /// The quantized prefix box the slot's grid is anchored on; a window
    /// that moves it invalidates every folded count.
    grid_box: BoundingBox,
    /// Number of prefix trajectories folded so far — the lazy-fold cursor
    /// into [`PopulationCache::prefix`].
    folded: usize,
    kind: SlotKind,
}

/// The objective-specific folded counts.
#[derive(Debug)]
enum SlotKind {
    /// Crowded places: distinct visitors per cell (insert-only under
    /// append, so the fold needs no retraction logic).
    Crowded {
        grid: UniformGrid,
        visitors: HashMap<CellId, HashSet<UserId>>,
    },
    /// Traffic: hourly `(cell, hour)` histograms per day — the day keys
    /// give the train/eval split, the last day's map is the ground truth.
    Traffic {
        grid: UniformGrid,
        by_day: BTreeMap<i64, HashMap<(CellId, i64), f64>>,
    },
}

impl SlotKind {
    /// An empty fold for `objective` on the already-quantized `grid_box`,
    /// or `None` when the objective's parameters cannot back a baseline
    /// (zero `k`, invalid cell size) — mirroring the constructor errors
    /// the legacy per-window build mapped to the `Unavailable` baseline.
    fn fresh(objective: Objective, grid_box: BoundingBox) -> Option<Self> {
        match objective {
            Objective::CrowdedPlaces { cell, k } => {
                if k == 0 {
                    return None;
                }
                let grid = UniformGrid::new(grid_box, cell).ok()?;
                Some(SlotKind::Crowded {
                    grid,
                    visitors: HashMap::new(),
                })
            }
            Objective::Traffic { cell } => {
                let grid = UniformGrid::new(grid_box, cell).ok()?;
                Some(SlotKind::Traffic {
                    grid,
                    by_day: BTreeMap::new(),
                })
            }
            Objective::Distortion => None,
        }
    }
}

impl BaselineSlot {
    /// Folds the trajectories appended since the last call into the
    /// counts, returning how many distinct cells / day-histogram entries
    /// were touched.
    fn fold(&mut self, trajectories: &[Arc<Trajectory>]) -> usize {
        let fresh = &trajectories[self.folded..];
        self.folded = trajectories.len();
        let mut touched: HashSet<(CellId, i64)> = HashSet::new();
        match &mut self.kind {
            SlotKind::Crowded { grid, visitors } => {
                for t in fresh {
                    for r in t.records() {
                        let cell = grid.cell_of(&r.point);
                        visitors.entry(cell).or_default().insert(r.user);
                        touched.insert((cell, 0));
                    }
                }
            }
            SlotKind::Traffic { grid, by_day } => {
                for t in fresh {
                    for r in t.records() {
                        let cell = grid.cell_of(&r.point);
                        let hour = r.time.hour_of_day();
                        *by_day
                            .entry(r.time.day_index())
                            .or_default()
                            .entry((cell, hour))
                            .or_insert(0.0) += 1.0;
                        touched.insert((cell, hour));
                    }
                }
            }
        }
        touched.len()
    }

    /// Projects the folded counts into the engine's baseline — the same
    /// values [`CrowdedBaseline::new`]/[`TrafficBaseline::new`] compute
    /// from scratch, handed through their `from_parts` surface so the
    /// scoring arithmetic stays in the metrics module.
    fn project(&self, objective: Objective) -> ObjectiveBaseline {
        match (&self.kind, objective) {
            (SlotKind::Crowded { grid, visitors }, Objective::CrowdedPlaces { cell, k }) => {
                let counts: HashMap<CellId, u64> = visitors
                    .iter()
                    .map(|(cell, users)| (*cell, users.len() as u64))
                    .collect();
                let top: HashSet<CellId> = UniformGrid::top_k(&counts, k)
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect();
                ObjectiveBaseline::Crowded(CrowdedBaseline::from_parts(
                    grid.clone(),
                    top,
                    k,
                    cell,
                ))
            }
            (SlotKind::Traffic { grid, by_day }, Objective::Traffic { .. }) => {
                if by_day.len() < 2 {
                    // No train/eval split possible yet — same zero-utility
                    // outcome as the legacy single-day constructor error.
                    return ObjectiveBaseline::Unavailable;
                }
                let eval_day = *by_day.keys().next_back().expect("non-empty");
                let train_days = (by_day.len() - 1) as f64;
                let truth = by_day[&eval_day].clone();
                ObjectiveBaseline::Traffic(TrafficBaseline::from_parts(
                    grid.clone(),
                    eval_day,
                    train_days,
                    truth,
                ))
            }
            _ => ObjectiveBaseline::Unavailable,
        }
    }
}

impl PopulationCache {
    /// Creates an empty cache (no windows ingested).
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated prefix: every ingested window's trajectories,
    /// concatenated in ingestion order. Equals
    /// [`mobility::WindowedDataset::prefix`] of the same windows.
    pub fn prefix(&self) -> &Dataset {
        &self.prefix
    }

    /// The cached per-user shards, keyed by user.
    pub fn shards(&self) -> &BTreeMap<UserId, UserAttackShard> {
        &self.shards
    }

    /// The reference POIs extracted from the prefix (one entry per user).
    pub fn reference(&self) -> &ReferencePois {
        &self.reference
    }

    /// The amended spatial index over [`PopulationCache::reference`], or
    /// `None` before the first window.
    pub fn reference_index(&self) -> Option<&ReferenceIndex> {
        self.index.as_ref()
    }

    /// Number of windows folded into this cache.
    pub fn windows_ingested(&self) -> usize {
        self.windows_ingested
    }

    /// Day index of the most recently ingested window.
    pub fn last_day(&self) -> Option<i64> {
        self.last_day
    }

    /// The prefix's bounding box after the last ingested window.
    pub fn bounding_box(&self) -> Option<geo::BoundingBox> {
        self.bbox
    }

    /// The quantized anchor box the extraction grid is built on — moves
    /// only when the raw box crosses the padded 0.05° lattice.
    pub fn grid_box(&self) -> Option<geo::BoundingBox> {
        self.grid_box
    }

    /// The prefix decomposed per user (shared handles, prefix order).
    pub(crate) fn by_user(&self) -> &BTreeMap<UserId, Vec<Arc<Trajectory>>> {
        &self.by_user
    }

    /// The original-side utility projection for `objective` over the
    /// current prefix, folded **incrementally**: only trajectories
    /// appended since the last call for the same objective are touched,
    /// instead of re-gridding the whole prefix every window. Byte-exact by
    /// construction — visitor sets and integer-valued `f64` counts are
    /// order-independent, and the projection goes through the same
    /// [`CrowdedBaseline`]/[`TrafficBaseline`] scoring arithmetic as a
    /// from-scratch build (pinned by parity property tests).
    ///
    /// An objective change or a quantized-grid move discards the stale
    /// fold and rebuilds (reported in the [`BaselineDelta`]); several
    /// objectives can stay folded side by side for multi-campaign use.
    pub(crate) fn baseline_for(
        &self,
        objective: Objective,
    ) -> (ObjectiveBaseline, BaselineDelta) {
        let mut delta = BaselineDelta::default();
        let (Some(grid_box), false) = (self.grid_box, self.prefix.record_count() == 0) else {
            // Empty prefix: mirror the legacy per-window build, which
            // errors into the zero-utility `Unavailable` baseline.
            return (ObjectiveBaseline::Unavailable, delta);
        };
        if matches!(objective, Objective::Distortion) {
            // Distortion has no original-only projection to fold.
            return (ObjectiveBaseline::Distortion, delta);
        }
        let mut fold = self.baselines.lock().unwrap_or_else(|e| e.into_inner());
        let slot = match fold
            .slots
            .iter()
            .position(|s| s.objective == objective && s.grid_box == grid_box)
        {
            Some(at) => {
                delta.reused = true;
                &mut fold.slots[at]
            }
            None => {
                // Discard any stale fold of the same objective (moved
                // grid) before starting a fresh one. A rebuild is only
                // reported when a fold actually existed and was thrown
                // away — a session's first build is not a rebuild.
                let had_stale = fold.slots.iter().any(|s| s.objective == objective);
                fold.slots.retain(|s| s.objective != objective);
                let Some(kind) = SlotKind::fresh(objective, grid_box) else {
                    return (ObjectiveBaseline::Unavailable, delta);
                };
                delta.rebuilt = had_stale;
                fold.slots.push(BaselineSlot {
                    objective,
                    grid_box,
                    folded: 0,
                    kind,
                });
                fold.slots.last_mut().expect("just pushed")
            }
        };
        delta.cells_updated = slot.fold(self.prefix.trajectories());
        record_baseline_delta(&delta);
        (slot.project(objective), delta)
    }

    /// The attack configuration the cached extraction was derived under
    /// (`None` before the first window).
    pub fn attack_config(&self) -> Option<&PoiAttackConfig> {
        self.attack_config.as_ref()
    }

    /// Folds one day window into the cache: appends its trajectories to
    /// the prefix, re-extracts (only) the invalidated users' shards over
    /// the grown prefix via the [`PoiAttack::extract_user`] delta path,
    /// and amends the reference POIs and their spatial index.
    ///
    /// Per-window cost is `O(window + refreshed users)`: the prefix
    /// bounding box is maintained by [`geo::BoundingBox::union`] (exact
    /// under append), never by rescanning the accumulated records.
    /// Refreshes are fanned out over the available cores; results are
    /// folded back in `UserId` order, so the cache state is deterministic
    /// regardless of scheduling.
    ///
    /// The cache fingerprints the attack configuration it was advanced
    /// with: ingesting a window through an attack with *different*
    /// parameters (grid cell, thresholds, match distance) drops all
    /// derived state — shards, reference POIs, index — and re-extracts
    /// every user under the new parameters (reported as a grid rebuild),
    /// so a mid-session attack swap can never silently match at stale
    /// distances.
    ///
    /// # Errors
    ///
    /// Windows must arrive in strictly ascending day order. A window
    /// whose day is not past [`PopulationCache::last_day`] — a duplicate
    /// ingest, or an out-of-order replay — is rejected with
    /// [`PrivapiError::StreamError`] *before* touching any state, so the
    /// prefix can never silently double-count a day's records.
    pub fn advance(
        &mut self,
        attack: &PoiAttack,
        window: &DatasetWindow,
    ) -> Result<WindowDelta, PrivapiError> {
        self.advance_derived(attack, window, None)
    }

    /// [`PopulationCache::advance`] with a **donor**: a cache holding the
    /// same attack configuration over a *superset* population whose
    /// per-user record histories bitwise contain this cache's (a
    /// user-subset view of the same window stream). When the donor has
    /// already ingested this window and both caches agree on the prefix
    /// bounding box (hence on the extraction grid), invalidated users'
    /// shards are **cloned from the donor** instead of re-extracted —
    /// byte-identical by determinism of [`PoiAttack::extract_user`], and
    /// free of [`PoiAttack::user_extractions`] cost. Users the donor does
    /// not hold, or any mismatch in configuration, day, or bounding box,
    /// fall back to a real extraction, so a donor can never change
    /// results — only skip work. The derived count is reported in
    /// [`WindowDelta::users_derived`].
    ///
    /// The *caller* is responsible for the superset-records contract
    /// (e.g. only passing a donor when this cache's view is a pure
    /// user-subset filter of the donor's stream); everything else is
    /// verified here.
    ///
    /// # Errors
    ///
    /// Same contract as [`PopulationCache::advance`].
    pub fn advance_derived(
        &mut self,
        attack: &PoiAttack,
        window: &DatasetWindow,
        donor: Option<&PopulationCache>,
    ) -> Result<WindowDelta, PrivapiError> {
        let mut span = obs::span("streaming.advance");
        span.set_attr("day", window.day());
        if let Some(last) = self.last_day {
            if window.day() <= last {
                return Err(PrivapiError::StreamError {
                    day: window.day(),
                    last_day: last,
                });
            }
        }
        // The cached shards, reference POIs and index were all derived
        // under the attack parameters of the sessions before this one: a
        // different configuration (grid cell, thresholds, match distance)
        // makes every derived value stale even though the prefix itself is
        // still good. Drop the derived state and re-extract everyone.
        let config_changed = self.attack_config.is_some()
            && self.attack_config.as_ref() != Some(attack.config());
        if config_changed {
            self.shards.clear();
            self.reference.clear();
            self.index = None;
        }
        if self.attack_config.as_ref() != Some(attack.config()) {
            self.attack_config = Some(attack.config().clone());
        }
        let changed = window.users();
        for t in window.dataset().trajectories() {
            self.by_user
                .entry(t.user())
                .or_default()
                .push(Arc::clone(t));
        }
        self.prefix
            .extend(window.dataset().trajectories().iter().cloned());
        self.windows_ingested += 1;
        self.last_day = Some(window.day());
        let merged_bbox = match (self.bbox, window.dataset().bounding_box()) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, None) => a,
            (None, b) => b,
        };
        let Some(bbox) = merged_bbox else {
            // Empty prefix: nothing to extract yet.
            return Ok(WindowDelta {
                day: window.day(),
                users_refreshed: 0,
                users_reused: 0,
                indexes_extended: 0,
                grid_rebuilt: false,
                users_derived: 0,
                grid_quantum_millideg: grid_quantum_millideg(),
            });
        };
        // The extraction grid is anchored on the *quantized* padded box:
        // raw bounding-box growth inside the 0.05° lattice keeps every
        // cached shard valid, so only a lattice crossing rebuilds.
        let grid_box = bbox.grid_anchor();
        let grid_rebuilt =
            config_changed || (self.grid_box.is_some() && self.grid_box != Some(grid_box));
        let to_refresh: Vec<UserId> = if grid_rebuilt {
            self.by_user.keys().copied().collect()
        } else {
            changed
        };
        // A donor's shard for user `u` equals our own extraction iff the
        // donor extracted under the same attack parameters, over the same
        // accumulated stream position, on the same grid (same quantized
        // anchor box) — and, per the caller's contract, holds bitwise our
        // records for `u`. Anything else disqualifies the donor entirely.
        let donor = donor.filter(|d| {
            d.attack_config.as_ref() == Some(attack.config())
                && d.last_day == Some(window.day())
                && d.grid_box == Some(grid_box)
        });
        let mut derived: Vec<UserAttackShard> = Vec::new();
        let mut to_extract: Vec<UserId> = Vec::new();
        match donor {
            Some(donor) => {
                for &user in &to_refresh {
                    match donor.shards.get(&user) {
                        Some(shard) => derived.push(shard.clone()),
                        None => to_extract.push(user),
                    }
                }
            }
            None => to_extract = to_refresh.clone(),
        }
        let grid = attack.grid_for(bbox);
        // Each refresh reads only the user's own history through the
        // per-user decomposition — a `Vec<Arc>` clone, not a prefix scan.
        let refreshed: Vec<UserAttackShard> = to_extract
            .par_iter()
            .map(|&user| {
                let history =
                    Dataset::from_shared(self.by_user.get(&user).cloned().unwrap_or_default());
                attack.extract_user(&history, user, &grid)
            })
            .collect();
        let index = self
            .index
            .get_or_insert_with(|| ReferenceIndex::empty(attack.config().match_distance));
        let mut indexes_extended = 0;
        let users_derived = derived.len();
        for shard in derived.into_iter().chain(refreshed) {
            if index.update_user(shard.user, &shard.pois) {
                indexes_extended += 1;
            }
            self.reference.insert(shard.user, shard.pois.clone());
            self.shards.insert(shard.user, shard);
        }
        self.bbox = Some(bbox);
        self.grid_box = Some(grid_box);
        let delta = WindowDelta {
            day: window.day(),
            users_refreshed: to_refresh.len() - users_derived,
            users_reused: self.shards.len() - to_refresh.len(),
            indexes_extended,
            grid_rebuilt,
            users_derived,
            grid_quantum_millideg: grid_quantum_millideg(),
        };
        record_window_delta(&delta);
        Ok(delta)
    }
}

/// Cross-window state of one streaming publication session: the
/// original-side [`PopulationCache`] paired with the per-candidate
/// protected-side [`StrategySessionCache`].
#[derive(Debug, Default)]
pub struct SessionCache {
    population: PopulationCache,
    /// The protected-side twin: per-candidate caches of each strategy's
    /// protected prefix and self-attack shards.
    strategies: StrategySessionCache,
}

impl SessionCache {
    /// Creates an empty session (no windows ingested).
    pub fn new() -> Self {
        Self::default()
    }

    /// The original-side half of the session.
    pub fn population(&self) -> &PopulationCache {
        &self.population
    }

    /// The accumulated prefix: every ingested window's trajectories,
    /// concatenated in ingestion order. Equals
    /// [`mobility::WindowedDataset::prefix`] of the same windows.
    pub fn prefix(&self) -> &Dataset {
        self.population.prefix()
    }

    /// The cached per-user shards, keyed by user.
    pub fn shards(&self) -> &BTreeMap<UserId, UserAttackShard> {
        self.population.shards()
    }

    /// The reference POIs extracted from the prefix (one entry per user).
    pub fn reference(&self) -> &ReferencePois {
        self.population.reference()
    }

    /// The amended spatial index over [`SessionCache::reference`], or
    /// `None` before the first window.
    pub fn reference_index(&self) -> Option<&ReferenceIndex> {
        self.population.reference_index()
    }

    /// Number of windows folded into this session.
    pub fn windows_ingested(&self) -> usize {
        self.population.windows_ingested()
    }

    /// Day index of the most recently ingested window.
    pub fn last_day(&self) -> Option<i64> {
        self.population.last_day()
    }

    /// The per-strategy protected-side caches this session maintains
    /// alongside the original-side state.
    pub fn strategies(&self) -> &StrategySessionCache {
        &self.strategies
    }

    /// Splits the session into the borrow shape
    /// [`crate::pipeline::PrivApi::publish_window`] needs: the
    /// original-side state read-only (it feeds
    /// [`crate::engine::EvalContext::from_cache`]) and the per-strategy
    /// caches mutably (the engine refreshes them while sweeping the pool).
    pub(crate) fn split_for_evaluation(
        &mut self,
    ) -> (&PopulationCache, &mut StrategySessionCache) {
        (&self.population, &mut self.strategies)
    }

    /// Folds one day window into the session's original-side state — see
    /// [`PopulationCache::advance`].
    ///
    /// # Errors
    ///
    /// [`PrivapiError::StreamError`] for a duplicate or out-of-order
    /// window day (nothing ingested).
    pub fn advance(
        &mut self,
        attack: &PoiAttack,
        window: &DatasetWindow,
    ) -> Result<WindowDelta, PrivapiError> {
        self.population.advance(attack, window)
    }
}

/// What one window changed about the accumulated prefix, from the
/// perspective of the per-strategy caches: which users contributed new
/// records, and whether the prefix bounding box (and with it every
/// grid anchored on it) moved.
///
/// Produced by [`crate::pipeline::PrivApi::publish_window`] right after
/// [`SessionCache::advance`] and consumed by
/// [`crate::engine::EvaluationEngine::evaluate_release_with`] to decide,
/// per candidate strategy, which cached protected outputs survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowUpdate {
    /// Users with records in the ingested window (sorted, deduplicated).
    pub changed_users: Vec<UserId>,
    /// Whether the window widened the prefix bounding box — which
    /// invalidates every [`UserLocality::GridAnchored`] candidate's cached
    /// output wholesale.
    pub grid_rebuilt: bool,
}

/// Protected-side audit of one candidate strategy for one window: what its
/// [`StrategySessionCache`] entry reused vs. recomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateDelta {
    /// The candidate this delta describes.
    pub info: StrategyInfo,
    /// The locality contract the candidate declared.
    pub locality: UserLocality,
    /// Users re-anonymized over the grown prefix
    /// ([`AnonymizationStrategy::anonymize_user`] calls).
    pub users_refreshed: usize,
    /// Users whose cached protected trajectories were reused untouched.
    pub users_reused: usize,
    /// Users whose protected trajectories were **adopted from a donor
    /// campaign's** already-refreshed state ([`StrategyDonor`]) — zero
    /// anonymization work here; always zero outside the multi-campaign
    /// orchestrator's donor path.
    pub users_donated: usize,
    /// Users whose protected-side [`UserAttackShard`] was re-extracted via
    /// the per-user delta path.
    pub shards_refreshed: usize,
    /// Users whose cached protected-side shard was reused untouched.
    pub shards_reused: usize,
    /// Protected-side shards adopted from a donor campaign's state —
    /// the cross-campaign twin of `shards_reused`.
    pub shards_donated: usize,
    /// Whether the candidate's **protected** bounding box moved, forcing a
    /// new extraction grid and a full per-user shard refresh (independent
    /// of the original-side grid: noise can widen a protected box on a
    /// window that left the original box alone).
    pub protected_grid_rebuilt: bool,
    /// Whether the candidate fell back to the uncached path (declared
    /// [`UserLocality::NonLocal`], or violated the shape contract): a full
    /// re-anonymization plus a full protected-side extraction.
    pub full_fallback: bool,
}

/// Pool-wide aggregate of [`CandidateDelta`]s for one window — the
/// protected-side counterpart of [`WindowDelta`], reported in
/// [`PublishedWindow::strategies`] and summed by the e11 bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrategyCacheDelta {
    /// Candidates evaluated.
    pub candidates: usize,
    /// Total per-candidate users re-anonymized.
    pub users_refreshed: usize,
    /// Total per-candidate users whose protected trajectories were reused.
    pub users_reused: usize,
    /// Total per-candidate users adopted from a donor campaign's state.
    pub users_donated: usize,
    /// Total per-candidate protected-side shard re-extractions.
    pub shards_refreshed: usize,
    /// Total per-candidate protected-side shards reused untouched.
    pub shards_reused: usize,
    /// Total protected-side shards adopted from a donor campaign's state.
    pub shards_donated: usize,
    /// Candidates whose protected extraction grid moved this window.
    pub protected_grid_rebuilds: usize,
    /// Candidates that took the full uncached path.
    pub full_fallbacks: usize,
}

impl StrategyCacheDelta {
    /// Sums per-candidate deltas into the pool-wide aggregate.
    pub fn aggregate(deltas: &[CandidateDelta]) -> Self {
        let mut total = Self {
            candidates: deltas.len(),
            ..Self::default()
        };
        for d in deltas {
            total.users_refreshed += d.users_refreshed;
            total.users_reused += d.users_reused;
            total.users_donated += d.users_donated;
            total.shards_refreshed += d.shards_refreshed;
            total.shards_reused += d.shards_reused;
            total.shards_donated += d.shards_donated;
            total.protected_grid_rebuilds += usize::from(d.protected_grid_rebuilt);
            total.full_fallbacks += usize::from(d.full_fallback);
        }
        total
    }
}

/// One candidate strategy's cross-window protected-side state: the
/// per-user protected trajectories of the accumulated prefix, the
/// protected bounding box the extraction grid is anchored on, and the
/// per-user self-attack shards extracted from the protected data.
#[derive(Debug, Default, Clone)]
pub(crate) struct CandidateState {
    /// Identity card of the candidate this state belongs to (`None` until
    /// first primed). A pool edit that changes the candidate at this slot
    /// resets the state.
    pub(crate) info: Option<StrategyInfo>,
    /// Protected trajectories per user, each in the user's prefix order —
    /// shared handles, so cloning a state (the donor path) or assembling
    /// the release copies pointers, never record data.
    protected: BTreeMap<UserId, Vec<Arc<Trajectory>>>,
    /// Per-user bounding boxes of the protected trajectories, so the
    /// protected prefix box is a union fold over users — O(users) —
    /// instead of a record scan over the assembled dataset.
    boxes: BTreeMap<UserId, Option<geo::BoundingBox>>,
    /// Bounding box of the protected prefix after the last window (union
    /// of `boxes`).
    bbox: Option<geo::BoundingBox>,
    /// The quantized anchor ([`geo::BoundingBox::grid_anchor`]) of `bbox`
    /// — the box the protected-side extraction grid is actually built on.
    /// Shards survive raw protected-box drift inside the padded lattice.
    grid_box: Option<geo::BoundingBox>,
    /// Per-user protected-side shards (the candidate's own self-attack
    /// decomposition), shared so donor clones are pointer copies.
    shards: BTreeMap<UserId, Arc<UserAttackShard>>,
    /// Incrementally maintained protected-side utility counts, keyed on
    /// the *baseline* grid.
    utility: UtilityCache,
    /// Whether this state has absorbed at least one window.
    primed: bool,
}

/// The protected side of the incremental utility computation: per-user
/// contributions to the objective's histogram plus the folded global
/// counts, so a window re-scores `O(changed users' records)` instead of
/// re-histogramming the whole assembled protected prefix.
///
/// Keyed on the **baseline** grid (anchor box + cell size): a baseline
/// whose grid moved — prefix crossed the anchor lattice, objective changed
/// — mismatches the key and forces a rebuild over all users.
#[derive(Debug, Clone, Default)]
enum UtilityCache {
    /// No incremental projection (distortion / unavailable baseline).
    #[default]
    None,
    /// Crowded places. Distinct-visitor semantics need refcounts: a cell's
    /// count is the number of distinct `(cell, record-user)` pairs alive,
    /// and a pair stays alive while *any* map-user's trajectories carry it
    /// — exact for arbitrary record ownership, not just the common
    /// `record.user == trajectory.user` case.
    Crowded {
        anchor: BoundingBox,
        cell: Meters,
        /// Each user's distinct `(cell, record-user)` contribution.
        by_user: BTreeMap<UserId, Vec<(CellId, UserId)>>,
        /// How many users contribute each pair.
        pair_refs: HashMap<(CellId, UserId), u32>,
        /// Distinct visitors per cell — fed to
        /// [`CrowdedBaseline::score_counts`] verbatim.
        counts: HashMap<CellId, u64>,
    },
    /// Traffic. Counts are additive, so plain per-user histograms keyed
    /// `(cell, hour, day)` suffice; the train histogram for eval day `d`
    /// is `total − by_day[d]` with exact-zero keys pruned (integer-valued
    /// `f64`, so the subtraction is exact).
    Traffic {
        anchor: BoundingBox,
        cell: Meters,
        by_user: BTreeMap<UserId, HashMap<(CellId, i64, i64), f64>>,
        total: HashMap<(CellId, i64), f64>,
        by_day: BTreeMap<i64, HashMap<(CellId, i64), f64>>,
    },
}

impl CandidateState {
    /// Drops all cached data (keeps the identity card).
    fn clear(&mut self) {
        self.protected.clear();
        self.boxes.clear();
        self.bbox = None;
        self.grid_box = None;
        self.shards.clear();
        self.utility = UtilityCache::None;
        self.primed = false;
    }

    /// Re-interleaves the cached per-user protected trajectories into the
    /// full protected dataset, in `original`'s trajectory order — the
    /// inverse of the per-user decomposition, byte-identical to
    /// [`AnonymizationStrategy::anonymize`] under the shape-preservation
    /// contract.
    ///
    /// Returns `None` when the cached shape cannot be aligned with
    /// `original` (a strategy violating the one-output-per-input-trajectory
    /// contract, or a stale cache) — the caller must fall back to a full
    /// re-anonymization.
    fn assemble(&self, original: &Dataset) -> Option<Dataset> {
        let mut cursors: BTreeMap<UserId, usize> =
            self.protected.keys().map(|u| (*u, 0usize)).collect();
        let mut trajectories = Vec::with_capacity(original.trajectory_count());
        for t in original.trajectories() {
            let cursor = cursors.get_mut(&t.user())?;
            trajectories.push(Arc::clone(self.protected.get(&t.user())?.get(*cursor)?));
            *cursor += 1;
        }
        // Every cached trajectory must have been consumed: leftovers mean
        // the cache holds users or trajectories the prefix no longer has.
        for (user, cursor) in &cursors {
            if self.protected[user].len() != *cursor {
                return None;
            }
        }
        Some(Dataset::from_shared(trajectories))
    }

    /// The assembled protected prefix of a *primed* state — what the last
    /// [`CandidateState::refresh`] scored, re-materialized from the cache
    /// by pure clones. This is how the winner's release dataset is
    /// produced without re-running its strategy over the whole prefix.
    pub(crate) fn assembled_release(&self, original: &Dataset) -> Option<Dataset> {
        if !self.primed {
            return None;
        }
        self.assemble(original)
    }

    /// The candidate's extracted protected-side POIs, re-keyed from the
    /// cached shards — what [`PoiAttack::extract`] over its assembled
    /// protected prefix would return.
    pub(crate) fn extracted_pois(&self) -> ReferencePois {
        self.shards
            .iter()
            .map(|(user, shard)| (*user, shard.pois.clone()))
            .collect()
    }

    /// Number of protected-side shards currently cached.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Utility of this (primed) state under `context`, **without**
    /// refreshing anything: scores the incrementally maintained counts
    /// when their key matches the context's baseline grid, and otherwise
    /// falls back to assembling the protected prefix (pointer clones) and
    /// scoring it whole. `None` only when the cached shape cannot be
    /// aligned with the context's original — a donated state from a
    /// different prefix, which the caller must reject.
    pub(crate) fn utility_for(&self, context: &EvalContext<'_>) -> Option<f64> {
        match (context.baseline(), &self.utility) {
            (ObjectiveBaseline::Unavailable, _) => Some(0.0),
            (
                ObjectiveBaseline::Crowded(b),
                UtilityCache::Crowded {
                    anchor,
                    cell,
                    counts,
                    ..
                },
            ) if *anchor == b.grid().bbox() && *cell == b.grid().cell_size() => {
                Some(b.score_counts(counts).precision_at_k)
            }
            (
                ObjectiveBaseline::Traffic(b),
                UtilityCache::Traffic {
                    anchor,
                    cell,
                    total,
                    by_day,
                    ..
                },
            ) if *anchor == b.grid().bbox() && *cell == b.grid().cell_size() => Some(
                b.score_train(&Self::traffic_train(total, by_day, b.eval_day()))
                    .utility_score(),
            ),
            _ => self
                .assemble(context.original())
                .map(|assembled| context.utility_of(&assembled)),
        }
    }

    /// Folds one window into this candidate's cache: re-anonymizes the
    /// invalidated users (per the declared [`UserLocality`]), re-extracts
    /// the invalidated protected-side shards, folds the refreshed users
    /// into the incremental utility counts, and returns the extracted POIs
    /// plus the utility score — exactly what [`PoiAttack::extract`] +
    /// utility scoring over a fresh [`AnonymizationStrategy::anonymize`]
    /// would produce, without paying for the unchanged users.
    ///
    /// Returns `(None, delta)` when the candidate cannot be cached
    /// ([`UserLocality::NonLocal`], or a shape-contract violation): the
    /// caller must evaluate it through the full uncached path.
    pub(crate) fn refresh(
        &mut self,
        strategy: &dyn AnonymizationStrategy,
        attack: &PoiAttack,
        context: &EvalContext<'_>,
        update: &WindowUpdate,
        all_users: &[UserId],
        seed: u64,
    ) -> (Option<(ReferencePois, f64)>, CandidateDelta) {
        let info = strategy.info();
        let locality = strategy.locality();
        let mut delta = CandidateDelta {
            info: info.clone(),
            locality,
            users_refreshed: 0,
            users_reused: 0,
            users_donated: 0,
            shards_refreshed: 0,
            shards_reused: 0,
            shards_donated: 0,
            protected_grid_rebuilt: false,
            full_fallback: false,
        };
        self.info = Some(info);
        if locality == UserLocality::NonLocal {
            self.clear();
            delta.full_fallback = true;
            return (None, delta);
        }
        let original = context.original();
        let to_refresh: &[UserId] = if !self.primed
            || (locality == UserLocality::GridAnchored && update.grid_rebuilt)
        {
            all_users
        } else {
            &update.changed_users
        };
        delta.users_refreshed = to_refresh.len();
        delta.users_reused = all_users.len() - to_refresh.len();
        let full = to_refresh.len() == all_users.len();
        if full {
            // Full refresh (first window, or a grid-anchored candidate
            // after a quantized-anchor move): one whole-dataset `anonymize`
            // pass, decomposed per user, beats `users` separate
            // `anonymize_user` scans over the full trajectory list — and
            // is the canonical output the per-user surface must agree
            // with anyway.
            let mut grouped: BTreeMap<UserId, Vec<Arc<Trajectory>>> = BTreeMap::new();
            for trajectory in strategy.anonymize(original, seed).into_shared() {
                grouped
                    .entry(trajectory.user())
                    .or_default()
                    .push(trajectory);
            }
            self.boxes = grouped
                .iter()
                .map(|(user, mine)| (*user, user_bounding_box(mine)))
                .collect();
            self.protected = grouped;
        } else {
            let refreshed: Vec<(UserId, Vec<Arc<Trajectory>>)> = to_refresh
                .par_iter()
                .map(|&user| (user, anonymize_one_user(strategy, context, user, seed)))
                .collect();
            for (user, trajectories) in refreshed {
                self.boxes.insert(user, user_bounding_box(&trajectories));
                self.protected.insert(user, trajectories);
            }
        }
        // Shape check, O(users): the cached decomposition re-interleaves
        // into the prefix iff it covers exactly the prefix's users with
        // exactly the prefix's per-user trajectory counts (the
        // one-output-per-input contract).
        let mut expected: BTreeMap<UserId, usize> = BTreeMap::new();
        for t in original.trajectories() {
            *expected.entry(t.user()).or_insert(0) += 1;
        }
        let shape_ok = expected.len() == self.protected.len()
            && expected
                .iter()
                .all(|(user, n)| self.protected.get(user).map(Vec::len) == Some(*n));
        if !shape_ok {
            // Shape-contract violation: drop everything and let the caller
            // take the always-correct full path.
            self.clear();
            delta.full_fallback = true;
            delta.users_refreshed = 0;
            delta.users_reused = 0;
            return (None, delta);
        }
        // The protected-side extraction grid is anchored on the *protected*
        // bounding box — through its quantized padded form, so drift inside
        // the lattice reuses every shard; only an anchor move invalidates
        // them all, no matter whose records changed.
        let bbox = union_of(&self.boxes);
        let grid_box = bbox.map(|b| b.grid_anchor());
        delta.protected_grid_rebuilt = self.primed && grid_box != self.grid_box;
        let shard_refresh: &[UserId] = if !self.primed || delta.protected_grid_rebuilt {
            all_users
        } else {
            to_refresh
        };
        delta.shards_refreshed = shard_refresh.len();
        delta.shards_reused = all_users.len() - shard_refresh.len();
        match bbox {
            Some(bbox) => {
                let grid = attack.grid_for(bbox);
                let shards: Vec<UserAttackShard> = shard_refresh
                    .par_iter()
                    .map(|&user| {
                        // The shard depends only on the user's own records
                        // and the grid: extract from the user's protected
                        // trajectories alone instead of the assembled
                        // prefix.
                        let mine = Dataset::from_shared(
                            self.protected.get(&user).cloned().unwrap_or_default(),
                        );
                        attack.extract_user(&mine, user, &grid)
                    })
                    .collect();
                for shard in shards {
                    self.shards.insert(shard.user, Arc::new(shard));
                }
            }
            None => {
                // An entirely emptied protected prefix extracts nothing —
                // mirror `PoiAttack::extract` on a record-less dataset.
                delta.shards_refreshed = 0;
                delta.shards_reused = 0;
                self.shards.clear();
            }
        }
        self.bbox = bbox;
        self.grid_box = grid_box;
        self.primed = true;
        let utility = self.refresh_utility(context, to_refresh, full);
        (Some((self.extracted_pois(), utility)), delta)
    }

    /// Folds the `refreshed` users into the incremental utility counts
    /// (rebuilding them when `full` or when the baseline grid moved) and
    /// scores the candidate — byte-identical to scoring the assembled
    /// protected prefix, because [`CrowdedBaseline::score_counts`] /
    /// [`TrafficBaseline::score_train`] are fed histograms equal to what
    /// the full per-record scan would produce.
    fn refresh_utility(
        &mut self,
        context: &EvalContext<'_>,
        refreshed: &[UserId],
        full: bool,
    ) -> f64 {
        match context.baseline() {
            ObjectiveBaseline::Crowded(b) => {
                let grid = b.grid();
                let keyed = matches!(
                    &self.utility,
                    UtilityCache::Crowded { anchor, cell, .. }
                        if *anchor == grid.bbox() && *cell == grid.cell_size()
                );
                let rebuild = full || !keyed;
                if rebuild {
                    self.utility = UtilityCache::Crowded {
                        anchor: grid.bbox(),
                        cell: grid.cell_size(),
                        by_user: BTreeMap::new(),
                        pair_refs: HashMap::new(),
                        counts: HashMap::new(),
                    };
                }
                let users: Vec<UserId> = if rebuild {
                    self.protected.keys().copied().collect()
                } else {
                    refreshed.to_vec()
                };
                let protected = &self.protected;
                let UtilityCache::Crowded {
                    by_user,
                    pair_refs,
                    counts,
                    ..
                } = &mut self.utility
                else {
                    unreachable!("rebuilt above")
                };
                for user in users {
                    Self::fold_crowded(protected, grid, user, by_user, pair_refs, counts);
                }
                b.score_counts(counts).precision_at_k
            }
            ObjectiveBaseline::Traffic(b) => {
                let grid = b.grid();
                let keyed = matches!(
                    &self.utility,
                    UtilityCache::Traffic { anchor, cell, .. }
                        if *anchor == grid.bbox() && *cell == grid.cell_size()
                );
                let rebuild = full || !keyed;
                if rebuild {
                    self.utility = UtilityCache::Traffic {
                        anchor: grid.bbox(),
                        cell: grid.cell_size(),
                        by_user: BTreeMap::new(),
                        total: HashMap::new(),
                        by_day: BTreeMap::new(),
                    };
                }
                let users: Vec<UserId> = if rebuild {
                    self.protected.keys().copied().collect()
                } else {
                    refreshed.to_vec()
                };
                let protected = &self.protected;
                let UtilityCache::Traffic {
                    by_user,
                    total,
                    by_day,
                    ..
                } = &mut self.utility
                else {
                    unreachable!("rebuilt above")
                };
                for user in users {
                    Self::fold_traffic(protected, grid, user, by_user, total, by_day);
                }
                b.score_train(&Self::traffic_train(total, by_day, b.eval_day()))
                    .utility_score()
            }
            ObjectiveBaseline::Distortion => {
                // Distortion pairs original and protected records directly;
                // there is no histogram to maintain. Assembling is pointer
                // clones, so the candidate still avoids re-anonymization.
                self.utility = UtilityCache::None;
                let assembled = self
                    .assemble(context.original())
                    .expect("shape checked before scoring");
                context.utility_of(&assembled)
            }
            ObjectiveBaseline::Unavailable => {
                self.utility = UtilityCache::None;
                0.0
            }
        }
    }

    /// Replaces `user`'s contribution to the crowded-places visitor counts:
    /// refcounted `(cell, record-user)` pairs make removal exact even when
    /// several map-users carry records of the same record-user.
    fn fold_crowded(
        protected: &BTreeMap<UserId, Vec<Arc<Trajectory>>>,
        grid: &UniformGrid,
        user: UserId,
        by_user: &mut BTreeMap<UserId, Vec<(CellId, UserId)>>,
        pair_refs: &mut HashMap<(CellId, UserId), u32>,
        counts: &mut HashMap<CellId, u64>,
    ) {
        if let Some(old) = by_user.remove(&user) {
            for pair in old {
                let Some(refs) = pair_refs.get_mut(&pair) else {
                    continue;
                };
                *refs -= 1;
                if *refs == 0 {
                    pair_refs.remove(&pair);
                    if let Some(count) = counts.get_mut(&pair.0) {
                        *count -= 1;
                        if *count == 0 {
                            counts.remove(&pair.0);
                        }
                    }
                }
            }
        }
        let mut distinct: HashSet<(CellId, UserId)> = HashSet::new();
        if let Some(mine) = protected.get(&user) {
            for t in mine {
                for r in t.records() {
                    distinct.insert((grid.cell_of(&r.point), r.user));
                }
            }
        }
        let pairs: Vec<(CellId, UserId)> = distinct.into_iter().collect();
        for &pair in &pairs {
            let refs = pair_refs.entry(pair).or_insert(0);
            *refs += 1;
            if *refs == 1 {
                *counts.entry(pair.0).or_insert(0) += 1;
            }
        }
        by_user.insert(user, pairs);
    }

    /// Replaces `user`'s contribution to the traffic histograms. All counts
    /// are integer-valued `f64` sums of `1.0`, so additions and the removal
    /// subtractions are exact in any order; entries are pruned at exact
    /// zero so key sets match what a fresh scan would produce.
    fn fold_traffic(
        protected: &BTreeMap<UserId, Vec<Arc<Trajectory>>>,
        grid: &UniformGrid,
        user: UserId,
        by_user: &mut BTreeMap<UserId, HashMap<(CellId, i64, i64), f64>>,
        total: &mut HashMap<(CellId, i64), f64>,
        by_day: &mut BTreeMap<i64, HashMap<(CellId, i64), f64>>,
    ) {
        if let Some(old) = by_user.remove(&user) {
            for ((cell, hour, day), v) in old {
                let key = (cell, hour);
                if let Some(t) = total.get_mut(&key) {
                    *t -= v;
                    if *t == 0.0 {
                        total.remove(&key);
                    }
                }
                if let Some(day_map) = by_day.get_mut(&day) {
                    if let Some(t) = day_map.get_mut(&key) {
                        *t -= v;
                        if *t == 0.0 {
                            day_map.remove(&key);
                        }
                    }
                    if day_map.is_empty() {
                        by_day.remove(&day);
                    }
                }
            }
        }
        let mut mine: HashMap<(CellId, i64, i64), f64> = HashMap::new();
        if let Some(ts) = protected.get(&user) {
            for t in ts {
                for r in t.records() {
                    let key = (
                        grid.cell_of(&r.point),
                        r.time.hour_of_day(),
                        r.time.day_index(),
                    );
                    *mine.entry(key).or_insert(0.0) += 1.0;
                }
            }
        }
        for (&(cell, hour, day), &v) in &mine {
            *total.entry((cell, hour)).or_insert(0.0) += v;
            *by_day
                .entry(day)
                .or_default()
                .entry((cell, hour))
                .or_insert(0.0) += v;
        }
        by_user.insert(user, mine);
    }

    /// The protected-side training histogram for `eval_day`:
    /// `total − by_day[eval_day]`, pruned at exact zero — equal to
    /// `hourly_histogram(assembled, grid, |d| d != eval_day)`.
    fn traffic_train(
        total: &HashMap<(CellId, i64), f64>,
        by_day: &BTreeMap<i64, HashMap<(CellId, i64), f64>>,
        eval_day: i64,
    ) -> HashMap<(CellId, i64), f64> {
        let mut train = total.clone();
        if let Some(eval) = by_day.get(&eval_day) {
            for (key, v) in eval {
                if let Some(t) = train.get_mut(key) {
                    *t -= v;
                    if *t == 0.0 {
                        train.remove(key);
                    }
                }
            }
        }
        train
    }
}

/// Re-anonymizes one user against a minimal view of the prefix: a
/// [`UserLocality::UserLocal`] candidate sees only the user's own (shared)
/// trajectories; a [`UserLocality::GridAnchored`] candidate sees them plus
/// two synthetic single-record pins at the prefix bounding box's corners
/// ([`pinned_view`]), so the view's box — the only dataset-global input the
/// locality contract admits — equals the prefix box and the output is
/// byte-identical to a full-prefix `anonymize_user` at `O(user records)`
/// cost. Falls back to the full-prefix scan when the context carries no
/// per-user decomposition or the pin id collides with a real participant.
fn anonymize_one_user(
    strategy: &dyn AnonymizationStrategy,
    context: &EvalContext<'_>,
    user: UserId,
    seed: u64,
) -> Vec<Arc<Trajectory>> {
    let original = context.original();
    let Some(by_user) = context.original_by_user() else {
        return strategy.anonymize_user(original, user, seed);
    };
    if by_user.contains_key(&BBOX_PIN_USER) {
        return strategy.anonymize_user(original, user, seed);
    }
    let mine = by_user.get(&user).cloned().unwrap_or_default();
    match strategy.locality() {
        UserLocality::UserLocal => {
            let view = Dataset::from_shared(mine);
            strategy.anonymize_user(&view, user, seed)
        }
        UserLocality::GridAnchored => {
            let Some(bbox) = context.original_bbox().or_else(|| original.bounding_box()) else {
                return strategy.anonymize_user(original, user, seed);
            };
            let view = pinned_view(mine, bbox);
            strategy.anonymize_user(&view, user, seed)
        }
        // NonLocal never reaches the per-user path; keep the correct
        // full-prefix fallback anyway.
        UserLocality::NonLocal => strategy.anonymize_user(original, user, seed),
    }
}

/// A mini-dataset whose bounding box is pinned to `bbox`: the user's shared
/// trajectories plus two single-record [`BBOX_PIN_USER`] trajectories at the
/// box corners. The pin user's protected output is discarded by the
/// `anonymize_user` filter.
fn pinned_view(mut mine: Vec<Arc<Trajectory>>, bbox: BoundingBox) -> Dataset {
    let pin = |point| {
        Arc::new(Trajectory::new(
            BBOX_PIN_USER,
            vec![LocationRecord::new(BBOX_PIN_USER, Timestamp::new(0), point)],
        ))
    };
    mine.push(pin(bbox.min()));
    mine.push(pin(bbox.max()));
    Dataset::from_shared(mine)
}

/// Bounding box of one user's protected trajectories (`None` when they hold
/// no records).
fn user_bounding_box(trajectories: &[Arc<Trajectory>]) -> Option<BoundingBox> {
    BoundingBox::from_points(
        trajectories
            .iter()
            .flat_map(|t| t.records().iter().map(|r| &r.point)),
    )
    .ok()
}

/// Union of the per-user boxes — the protected prefix's bounding box as an
/// O(users) fold.
fn union_of(boxes: &BTreeMap<UserId, Option<BoundingBox>>) -> Option<BoundingBox> {
    boxes.values().flatten().copied().reduce(|a, b| a.union(&b))
}

/// A frozen snapshot of one campaign's protected-side caches, offered to
/// *follower* campaigns whose `(pool, seed, attack)` fingerprint matches:
/// their per-candidate states become pointer-cloned copies of the donor's,
/// so the whole pool's anonymize + self-attack for the window is paid once
/// per fingerprint instead of once per campaign. Privacy matching and the
/// feasibility verdict still run per follower (floors differ), and
/// validity is structural — a primed `CandidateState` is a pure function
/// of `(prefix, seed, attack, strategy)`, all of which the fingerprint
/// pins.
#[derive(Debug, Clone)]
pub struct StrategyDonor {
    seed: u64,
    attack_config: PoiAttackConfig,
    windows: usize,
    states: Vec<CandidateState>,
}

impl StrategyDonor {
    /// Whether this snapshot may seed a follower at `(seed, attack)` that
    /// has ingested exactly `windows` windows of the same shared prefix.
    pub fn compatible(&self, seed: u64, attack: &PoiAttackConfig, windows: usize) -> bool {
        self.seed == seed && &self.attack_config == attack && self.windows == windows
    }

    /// The donated state for candidate slot `index`, if it is primed and
    /// carries the expected identity card.
    pub(crate) fn state_for(
        &self,
        index: usize,
        info: &StrategyInfo,
    ) -> Option<&CandidateState> {
        let state = self.states.get(index)?;
        (state.primed && state.info.as_ref() == Some(info)).then_some(state)
    }
}

/// Cross-window **protected-side** attack state, one entry per candidate
/// strategy of the evaluated pool: each candidate's protected prefix
/// (per-user trajectories) and the [`UserAttackShard`]s of its self-attack.
///
/// This is the protected-side twin of [`SessionCache`]. The original-side
/// cache makes the *reference* extraction incremental; this one makes the
/// per-candidate *self-attacks* — the measured dominant per-window cost —
/// incremental too, under the determinism contract each strategy declares
/// through [`AnonymizationStrategy::locality`]:
///
/// * [`UserLocality::UserLocal`] candidates refresh only the users with
///   new records;
/// * [`UserLocality::GridAnchored`] candidates additionally refresh
///   everyone when the prefix bounding box widens;
/// * [`UserLocality::NonLocal`] candidates are never cached — every window
///   re-runs their full anonymize + self-attack, exactly as batch publish
///   would.
///
/// Whatever a candidate's locality, its protected-side *shards* are only
/// reused while the candidate's own protected bounding box (which anchors
/// the extraction grid) is unchanged — tracked per candidate, since noise
/// mechanisms can widen their protected box on a window that leaves the
/// original box alone.
///
/// The cache is self-validating: it fingerprints the pool (per-slot
/// [`StrategyInfo`]), the selection seed and the attack parameters, and
/// resets any entry whose fingerprint no longer matches, so a session that
/// swaps pools, seeds or attacks mid-stream degrades to correct full
/// recomputation instead of reusing stale state.
#[derive(Debug, Default)]
pub struct StrategySessionCache {
    seed: Option<u64>,
    attack_config: Option<PoiAttackConfig>,
    pub(crate) states: Vec<CandidateState>,
    pub(crate) last_deltas: Vec<CandidateDelta>,
}

impl StrategySessionCache {
    /// Creates an empty cache (sized lazily to the evaluated pool).
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-candidate audit of the most recent window, in pool order.
    /// Empty before the first cached evaluation.
    pub fn last_deltas(&self) -> &[CandidateDelta] {
        &self.last_deltas
    }

    /// Pool-wide aggregate of [`StrategySessionCache::last_deltas`].
    pub fn last_window(&self) -> StrategyCacheDelta {
        StrategyCacheDelta::aggregate(&self.last_deltas)
    }

    /// Number of candidate slots currently tracked.
    pub fn candidates(&self) -> usize {
        self.states.len()
    }

    /// Whether the cache holds no candidate state yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Freezes this cache's per-candidate states into a [`StrategyDonor`]
    /// for follower campaigns that have ingested exactly `windows` windows
    /// of the same shared prefix. Pointer clones only — the states' record
    /// data is shared, not copied. `None` before the first cached sweep
    /// (nothing to donate).
    pub fn donor_snapshot(&self, windows: usize) -> Option<StrategyDonor> {
        Some(StrategyDonor {
            seed: self.seed?,
            attack_config: self.attack_config.clone()?,
            windows,
            states: self.states.clone(),
        })
    }

    /// Sizes the cache to `pool` and resets every slot whose fingerprint
    /// (candidate identity, seed, attack parameters) no longer matches —
    /// called by the engine before each cached sweep.
    pub(crate) fn align(&mut self, pool: &StrategyPool, seed: u64, attack: &PoiAttack) {
        if self.seed != Some(seed) || self.attack_config.as_ref() != Some(attack.config()) {
            self.states.clear();
            self.seed = Some(seed);
            self.attack_config = Some(attack.config().clone());
        }
        let infos = pool.infos();
        self.states.truncate(infos.len());
        self.states
            .resize_with(infos.len(), CandidateState::default);
        for (state, info) in self.states.iter_mut().zip(&infos) {
            if state.info.as_ref() != Some(info) {
                *state = CandidateState::default();
            }
        }
    }
}

/// One incremental release: the protected prefix plus the audit trail of
/// both the selection and the cache behaviour that produced it.
#[derive(Debug)]
pub struct PublishedWindow {
    /// Day index of the window that triggered this release.
    pub day: i64,
    /// What the session cache reused vs. refreshed for this window.
    pub delta: WindowDelta,
    /// What the per-strategy protected-side caches reused vs. recomputed
    /// for this window, summed over the pool.
    pub strategies: StrategyCacheDelta,
    /// Whether the original-side utility baseline was folded forward from
    /// the cached counts or rebuilt, and how much it touched.
    pub baseline: BaselineDelta,
    /// The release over the full accumulated prefix — same shape as a
    /// batch [`crate::pipeline::PrivApi::publish`] of that prefix.
    pub published: PublishedDataset,
}

/// A [`PrivApi`] paired with a [`SessionCache`]: the streaming publication
/// front end.
///
/// # Example
///
/// ```
/// use mobility::gen::{CityModel, PopulationConfig};
/// use mobility::WindowedDataset;
/// use privapi::streaming::StreamingPublisher;
/// use privapi::pipeline::PrivApiConfig;
///
/// let data = CityModel::builder().seed(3).build().generate_population(
///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
/// );
/// let windows = WindowedDataset::partition(&data);
/// let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
/// for window in &windows {
///     let release = publisher.publish_window(window).unwrap();
///     assert_eq!(release.day, window.day());
/// }
/// assert_eq!(publisher.cache().windows_ingested(), windows.len());
/// ```
#[derive(Debug)]
pub struct StreamingPublisher {
    privapi: PrivApi,
    cache: SessionCache,
}

impl StreamingPublisher {
    /// Creates a publisher with the given configuration and the shared
    /// default pool, starting an empty session.
    pub fn new(config: PrivApiConfig) -> Self {
        Self::from_privapi(PrivApi::new(config))
    }

    /// Wraps an already-configured middleware (custom pool, attack or
    /// execution mode), starting an empty session.
    pub fn from_privapi(privapi: PrivApi) -> Self {
        Self {
            privapi,
            cache: SessionCache::new(),
        }
    }

    /// The wrapped middleware.
    pub fn privapi(&self) -> &PrivApi {
        &self.privapi
    }

    /// The session's cross-window cache state.
    pub fn cache(&self) -> &SessionCache {
        &self.cache
    }

    /// Publishes one day window incrementally — see
    /// [`crate::pipeline::PrivApi::publish_window`].
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] for an empty window;
    /// * [`PrivapiError::NoFeasibleStrategy`] when no pooled strategy can
    ///   meet the privacy floor on the accumulated prefix.
    pub fn publish_window(
        &mut self,
        window: &DatasetWindow,
    ) -> Result<PublishedWindow, PrivapiError> {
        self.privapi.publish_window(&mut self.cache, window)
    }

    /// Replays every window of a partitioned dataset through
    /// [`StreamingPublisher::publish_window`], oldest first, returning the
    /// per-window releases.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first window-publication error.
    pub fn publish_all(
        &mut self,
        windows: &WindowedDataset,
    ) -> Result<Vec<PublishedWindow>, PrivapiError> {
        windows.iter().map(|w| self.publish_window(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PrivApi;
    use mobility::gen::{CityModel, PopulationConfig};

    fn dataset(seed: u64, users: usize, days: usize) -> Dataset {
        CityModel::builder()
            .seed(seed)
            .build()
            .generate_population(&PopulationConfig {
                users,
                days,
                sampling_interval_s: 240,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn streaming_matches_batch_prefix_publish() {
        // The acceptance invariant, exercised window by window: the
        // incremental release of window i is byte-identical (selection
        // report, strategy, privacy report, released data) to a batch
        // publish of the concatenated prefix 0..=i.
        let ds = dataset(61, 4, 3);
        let windows = WindowedDataset::partition(&ds);
        assert!(windows.len() >= 3, "want several windows");
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        for (i, window) in windows.iter().enumerate() {
            let incremental = publisher.publish_window(window).unwrap();
            let batch = PrivApi::default().publish(&windows.prefix(i)).unwrap();
            assert_eq!(
                incremental.published.selection, batch.selection,
                "window {i}"
            );
            assert_eq!(incremental.published.strategy, batch.strategy, "window {i}");
            assert_eq!(incremental.published.privacy, batch.privacy, "window {i}");
            assert_eq!(incremental.published.dataset, batch.dataset, "window {i}");
        }
    }

    #[test]
    fn windows_skip_every_full_extraction_with_a_local_pool() {
        // Batch publish costs pool + 1 full extractions per release (one
        // original-side pass plus one full self-attack per candidate). The
        // streaming path pays neither: the original side goes through the
        // session cache's per-user delta path, and every default-pool
        // candidate declares a cacheable locality, so its self-attack goes
        // through the per-strategy shard cache. The full-pass probe must
        // therefore read zero on every window — the only full passes left
        // are those of non-local candidates, of which the default pool has
        // none.
        let ds = dataset(93, 4, 3);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let pool = publisher.privapi().pool().len();
        let probe = publisher.privapi().attack().clone();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            let release = publisher.publish_window(window).unwrap();
            let per_window = probe.extractions() - before;
            assert!(
                per_window < pool,
                "window {i}: {per_window} full extractions, want fewer than pool = {pool}"
            );
            assert_eq!(per_window, 0, "window {i}: every candidate is cached");
            assert_eq!(release.strategies.candidates, pool);
            assert_eq!(release.strategies.full_fallbacks, 0);
        }
    }

    #[test]
    fn sparse_window_costs_scale_with_changed_users() {
        // Two users on day 0; only user 1 has day-1 records (inside the
        // day-0 box), so day 1 must re-anonymize and re-extract exactly
        // one user per user-local candidate — the acceptance counting
        // test: strictly fewer than `pool` full protected-side
        // extractions, and per-user work proportional to the *changed*
        // users rather than the population.
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let site = |lon: f64| GeoPoint::new(45.75, lon).unwrap();
        let mut records = Vec::new();
        for day in 0..2i64 {
            for i in 0..240i64 {
                let lon = 4.80 + 0.0004 * (i.min(60)) as f64;
                records.push(LocationRecord::new(
                    UserId(1),
                    Timestamp::new(day * DAY_SECONDS + i * 300),
                    site(lon),
                ));
            }
        }
        for i in 0..240i64 {
            records.push(LocationRecord::new(
                UserId(2),
                Timestamp::new(i * 300),
                site(4.81),
            ));
        }
        let windows = WindowedDataset::partition(&Dataset::from_records(records));
        assert_eq!(windows.len(), 2);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let pool = publisher.privapi().pool().len();
        let probe = publisher.privapi().attack().clone();
        publisher.publish_window(&windows.windows()[0]).unwrap();

        let full_before = probe.extractions();
        let per_user_before = probe.user_extractions();
        let release = publisher.publish_window(&windows.windows()[1]).unwrap();
        assert!(
            probe.extractions() - full_before < pool,
            "an inactive user must spare full protected-side extractions"
        );
        // Batch would pay (pool + 1) full passes × 2 users of per-user
        // extraction work; the delta paths must beat that.
        let per_user_spent = probe.user_extractions() - per_user_before;
        assert!(
            per_user_spent < (pool + 1) * 2,
            "{per_user_spent} per-user extractions is no better than batch"
        );
        // Every user-local candidate re-anonymized exactly the changed
        // user and reused the inactive one's protected trajectories.
        assert!(!release.delta.grid_rebuilt);
        for candidate in publisher.cache().strategies().last_deltas() {
            assert!(!candidate.full_fallback, "{}", candidate.info);
            assert_eq!(
                candidate.users_refreshed, 1,
                "{}: only user 1 changed",
                candidate.info
            );
            assert_eq!(candidate.users_reused, 1, "{}", candidate.info);
        }
        assert_eq!(release.strategies.users_refreshed, pool);
        assert_eq!(release.strategies.users_reused, pool);
    }

    #[test]
    fn cache_reuses_unchanged_users_and_tracks_deltas() {
        // Two users on day 0; only one of them has day-1 records that stay
        // inside the day-0 bounding box, so day 1 must refresh exactly that
        // user and reuse the other's shard.
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let site = |lon: f64| GeoPoint::new(45.75, lon).unwrap();
        let mut records = Vec::new();
        // User 1: a commute plus long dwells on both days, spanning the box.
        for day in 0..2i64 {
            for i in 0..240i64 {
                let lon = 4.80 + 0.0004 * (i.min(60)) as f64;
                records.push(LocationRecord::new(
                    UserId(1),
                    Timestamp::new(day * DAY_SECONDS + i * 300),
                    site(lon),
                ));
            }
        }
        // User 2: day 0 only, dwelling inside the same box.
        for i in 0..240i64 {
            records.push(LocationRecord::new(
                UserId(2),
                Timestamp::new(i * 300),
                site(4.81),
            ));
        }
        let ds = Dataset::from_records(records);
        let windows = WindowedDataset::partition(&ds);
        assert_eq!(windows.len(), 2);

        let attack = PoiAttack::default();
        let mut cache = SessionCache::new();
        let d0 = cache.advance(&attack, &windows.windows()[0]).unwrap();
        assert_eq!(d0.users_refreshed, 2);
        assert_eq!(d0.users_reused, 0);
        assert!(!d0.grid_rebuilt, "first window never reports a rebuild");
        let user2_day0 = cache.shards()[&UserId(2)].clone();

        let d1 = cache.advance(&attack, &windows.windows()[1]).unwrap();
        assert!(!d1.grid_rebuilt, "day 1 stays inside the day-0 bbox");
        assert_eq!(d1.users_refreshed, 1, "only user 1 has new records");
        assert_eq!(d1.users_reused, 1);
        // The reused shard is bitwise yesterday's.
        assert_eq!(cache.shards()[&UserId(2)].pois, user2_day0.pois);
        assert_eq!(
            cache.shards()[&UserId(2)].threshold_s,
            user2_day0.threshold_s
        );
        assert_eq!(cache.windows_ingested(), 2);
        assert_eq!(cache.reference().len(), 2);
        assert_eq!(
            cache.reference_index().unwrap().user_count(),
            2,
            "index covers both users"
        );
    }

    #[test]
    fn bbox_growth_invalidates_every_shard() {
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let mut records = Vec::new();
        for user in 1..=2u64 {
            for i in 0..60i64 {
                records.push(LocationRecord::new(
                    UserId(user),
                    Timestamp::new(i * 300),
                    GeoPoint::new(45.75, 4.80 + 0.001 * user as f64).unwrap(),
                ));
            }
        }
        // Day 1: user 1 wanders far outside the day-0 box.
        for i in 0..60i64 {
            records.push(LocationRecord::new(
                UserId(1),
                Timestamp::new(DAY_SECONDS + i * 300),
                GeoPoint::new(45.95, 5.10).unwrap(),
            ));
        }
        let windows = WindowedDataset::partition(&Dataset::from_records(records));
        let attack = PoiAttack::default();
        let mut cache = SessionCache::new();
        cache.advance(&attack, &windows.windows()[0]).unwrap();
        let d1 = cache.advance(&attack, &windows.windows()[1]).unwrap();
        assert!(d1.grid_rebuilt, "widened bbox must rebuild the grid");
        assert_eq!(d1.users_refreshed, 2, "a grid rebuild touches everyone");
        assert_eq!(d1.users_reused, 0);
    }

    #[test]
    fn bbox_growth_invalidates_only_grid_anchored_anonymizations() {
        // Same shape as `bbox_growth_invalidates_every_shard`, driven
        // through the full publish path: when day 1 widens the prefix
        // bounding box, only the grid-anchored candidates (spatial
        // cloaking) must re-anonymize *everyone*; user-local candidates
        // re-anonymize just the user who moved. (Their protected-side
        // *shards* may still refresh wholesale — the protected box of a
        // noise mechanism widens with the original — which is what the
        // separate shard counters track.)
        use crate::strategy::UserLocality;
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let mut records = Vec::new();
        for user in 1..=2u64 {
            for i in 0..240i64 {
                records.push(LocationRecord::new(
                    UserId(user),
                    Timestamp::new(i * 300),
                    GeoPoint::new(45.75, 4.80 + 0.001 * user as f64 + 0.0004 * (i % 50) as f64)
                        .unwrap(),
                ));
            }
        }
        for i in 0..240i64 {
            records.push(LocationRecord::new(
                UserId(1),
                Timestamp::new(DAY_SECONDS + i * 300),
                GeoPoint::new(45.95, 5.10 + 0.0004 * (i % 50) as f64).unwrap(),
            ));
        }
        let windows = WindowedDataset::partition(&Dataset::from_records(records));
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        publisher.publish_window(&windows.windows()[0]).unwrap();
        let release = publisher.publish_window(&windows.windows()[1]).unwrap();
        assert!(release.delta.grid_rebuilt, "day 1 widens the prefix box");
        let deltas = publisher.cache().strategies().last_deltas();
        assert!(!deltas.is_empty());
        for candidate in deltas {
            match candidate.locality {
                UserLocality::GridAnchored => {
                    assert_eq!(
                        candidate.users_refreshed, 2,
                        "{}: a widened box shifts every cloaking cell",
                        candidate.info
                    );
                    assert_eq!(candidate.users_reused, 0, "{}", candidate.info);
                }
                UserLocality::UserLocal => {
                    assert_eq!(
                        candidate.users_refreshed, 1,
                        "{}: only user 1 moved",
                        candidate.info
                    );
                    assert_eq!(candidate.users_reused, 1, "{}", candidate.info);
                }
                UserLocality::NonLocal => {
                    panic!(
                        "{}: default pool has no non-local candidate",
                        candidate.info
                    )
                }
            }
        }
    }

    /// A strategy that never overrides the incremental surface: the
    /// conservative [`UserLocality::NonLocal`] default.
    struct OpaqueShift;
    impl crate::strategy::AnonymizationStrategy for OpaqueShift {
        fn info(&self) -> crate::strategy::StrategyInfo {
            crate::strategy::StrategyInfo {
                name: "opaque-shift".into(),
                params: String::new(),
            }
        }
        fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
            // A whole-dataset rewrite (translate everything towards the
            // dataset centroid) that genuinely couples users.
            let n = dataset.record_count().max(1) as f64;
            let mean_lat = dataset
                .iter_records()
                .map(|r| r.point.latitude())
                .sum::<f64>()
                / n;
            let mean_lon = dataset
                .iter_records()
                .map(|r| r.point.longitude())
                .sum::<f64>()
                / n;
            dataset.map_trajectories(|t| {
                let records = t
                    .records()
                    .iter()
                    .map(|r| {
                        mobility::LocationRecord::new(
                            r.user,
                            r.time,
                            geo::GeoPoint::clamped(
                                r.point.latitude() * 0.7 + mean_lat * 0.3,
                                r.point.longitude() * 0.7 + mean_lon * 0.3,
                            ),
                        )
                    })
                    .collect();
                mobility::Trajectory::new(t.user(), records)
            })
        }
    }

    #[test]
    fn non_local_candidates_always_fall_back_to_full_extraction() {
        use crate::pipeline::PrivApi;
        use crate::pool::StrategyPool;
        let ds = dataset(7, 3, 3);
        let windows = WindowedDataset::partition(&ds);
        let make = || {
            PrivApi::new(PrivApiConfig {
                privacy_floor: 1.0, // keep every candidate feasible
                ..PrivApiConfig::default()
            })
            .with_pool(
                StrategyPool::new()
                    .with_speed_smoothing(&[100.0])
                    .unwrap()
                    .with(Box::new(OpaqueShift)),
            )
        };
        let privapi = make();
        let probe = privapi.attack().clone();
        let mut cache = SessionCache::new();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            let release = privapi.publish_window(&mut cache, window).unwrap();
            // Exactly one full protected-side extraction per window: the
            // non-local candidate. The local candidate stays cached.
            assert_eq!(
                probe.extractions() - before,
                1,
                "window {i}: only the non-local candidate pays a full pass"
            );
            assert_eq!(release.strategies.full_fallbacks, 1, "window {i}");
            let deltas = cache.strategies().last_deltas();
            assert!(deltas[1].full_fallback, "window {i}");
            assert!(!deltas[0].full_fallback, "window {i}");
            // And the cached sweep still matches a batch publish.
            let batch = make().publish(&windows.prefix(i)).unwrap();
            assert_eq!(release.published.selection, batch.selection, "window {i}");
            assert_eq!(release.published.dataset, batch.dataset, "window {i}");
        }
    }

    #[test]
    fn attack_config_change_mid_session_resets_derived_state() {
        // The original-side cache fingerprints the attack parameters:
        // advancing the same session with a different configuration must
        // drop the cached shards/reference/index and re-extract under the
        // new parameters instead of silently matching at stale distances.
        // Parity with a batch publish under the new attack is the proof.
        let ds = dataset(31, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut cache = SessionCache::new();
        PrivApi::default()
            .publish_window(&mut cache, &windows.windows()[0])
            .unwrap();
        let custom = PoiAttack::new(PoiAttackConfig {
            match_distance: geo::Meters::new(500.0),
            ..PoiAttackConfig::default()
        });
        let release = PrivApi::default()
            .with_attack(custom.clone())
            .publish_window(&mut cache, &windows.windows()[1])
            .unwrap();
        let batch = PrivApi::default()
            .with_attack(custom)
            .publish(&windows.prefix(1))
            .unwrap();
        assert_eq!(release.published.selection, batch.selection);
        assert_eq!(release.published.privacy, batch.privacy);
        assert_eq!(release.published.dataset, batch.dataset);
        assert!(
            release.delta.grid_rebuilt,
            "a config change must be reported as a grid rebuild"
        );
        assert_eq!(release.delta.users_reused, 0, "nothing stale survives");
    }

    #[test]
    fn seed_change_mid_session_resets_the_strategy_cache() {
        // The cache fingerprints the selection seed: publishing the same
        // session through a middleware with a different seed must not
        // reuse protected data anonymized under the old one. Parity with a
        // batch publish at the *new* seed is the proof.
        let ds = dataset(47, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut cache = SessionCache::new();
        let first = PrivApi::new(PrivApiConfig {
            seed: 1,
            ..PrivApiConfig::default()
        });
        first
            .publish_window(&mut cache, &windows.windows()[0])
            .unwrap();
        let second = PrivApi::new(PrivApiConfig {
            seed: 2,
            ..PrivApiConfig::default()
        });
        let release = second
            .publish_window(&mut cache, &windows.windows()[1])
            .unwrap();
        let batch = PrivApi::new(PrivApiConfig {
            seed: 2,
            ..PrivApiConfig::default()
        })
        .publish(&windows.prefix(1))
        .unwrap();
        assert_eq!(release.published.selection, batch.selection);
        assert_eq!(release.published.dataset, batch.dataset);
        // The reset shows up as a full re-prime: nothing reused.
        assert_eq!(release.strategies.users_reused, 0);
    }

    #[test]
    fn duplicate_or_out_of_order_windows_are_rejected_without_ingesting() {
        let ds = dataset(29, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        publisher.publish_window(&windows.windows()[1]).unwrap();
        let records_before = publisher.cache().prefix().record_count();
        let strategy_deltas_before = publisher.cache().strategies().last_deltas().to_vec();
        assert!(!strategy_deltas_before.is_empty());
        // Re-sending the same window (a retry after a failed release, or a
        // bug) must fail loudly and leave the session untouched — the
        // original-side prefix *and* the per-strategy protected caches.
        for stale in [&windows.windows()[1], &windows.windows()[0]] {
            let err = publisher.publish_window(stale).unwrap_err();
            // The typed rejection carries both the offending day and the
            // session's high-water mark, at every layer of the stack.
            assert!(
                matches!(
                    err,
                    PrivapiError::StreamError { day, last_day }
                        if day == stale.day() && last_day == windows.windows()[1].day()
                ),
                "got {err}"
            );
            assert_eq!(publisher.cache().prefix().record_count(), records_before);
            assert_eq!(publisher.cache().windows_ingested(), 1);
            assert_eq!(
                publisher.cache().strategies().last_deltas(),
                strategy_deltas_before.as_slice(),
                "a rejected window must not touch the strategy caches"
            );
        }
        assert_eq!(
            publisher.cache().last_day(),
            Some(windows.windows()[1].day())
        );
    }

    #[test]
    fn donor_derivation_is_byte_identical_and_skips_extraction() {
        // A population of three users where users 1 and 2 attain the
        // bounding-box extremes; the {1, 2} subset view therefore shares
        // the population's extraction grid, and its shards can be cloned
        // from the population cache instead of re-extracted.
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let mut records = Vec::new();
        for day in 0..2i64 {
            for i in 0..120i64 {
                let t = |s: i64| Timestamp::new(day * DAY_SECONDS + s * 300);
                records.push(LocationRecord::new(
                    UserId(1),
                    t(i),
                    GeoPoint::new(45.70, 4.78).unwrap(),
                ));
                records.push(LocationRecord::new(
                    UserId(2),
                    t(i),
                    GeoPoint::new(45.80, 4.90).unwrap(),
                ));
                records.push(LocationRecord::new(
                    UserId(3),
                    t(i),
                    GeoPoint::new(45.75, 4.85).unwrap(),
                ));
            }
        }
        let population = Dataset::from_records(records);
        let filter = mobility::ParticipantFilter::users([UserId(1), UserId(2)]);
        let subset = filter.filter_dataset(&population);
        assert_eq!(subset.bounding_box(), population.bounding_box());
        let pop_windows = WindowedDataset::partition(&population);
        let sub_windows = WindowedDataset::partition(&subset);

        let attack = PoiAttack::default();
        let mut donor = PopulationCache::new();
        let mut derived = PopulationCache::new();
        let mut standalone = PopulationCache::new();
        for (pop_w, sub_w) in pop_windows.iter().zip(sub_windows.iter()) {
            donor.advance(&attack, pop_w).unwrap();
            let before = attack.user_extractions();
            let delta = derived
                .advance_derived(&attack, sub_w, Some(&donor))
                .unwrap();
            assert_eq!(delta.users_derived, 2, "both subset users derive");
            assert_eq!(delta.users_refreshed, 0, "nothing re-extracted");
            assert_eq!(
                attack.user_extractions(),
                before,
                "derivation must not pay the per-user probe"
            );
            standalone.advance(&attack, sub_w).unwrap();
            assert_eq!(derived.shards(), standalone.shards(), "shards drifted");
            assert_eq!(derived.reference(), standalone.reference());
        }

        // A donor whose grid does not match (here: a fresh cache that
        // never ingested the window) is ignored, not trusted.
        let mut no_donor_match = PopulationCache::new();
        let stale_donor = PopulationCache::new();
        let delta = no_donor_match
            .advance_derived(&attack, &sub_windows.windows()[0], Some(&stale_donor))
            .unwrap();
        assert_eq!(delta.users_derived, 0);
        assert_eq!(delta.users_refreshed, 2);
        assert_eq!(
            no_donor_match.shards(),
            &standalone_prefix_shards(&attack, &sub_windows)
        );
    }

    /// Shards of a from-scratch cache over the first window only.
    fn standalone_prefix_shards(
        attack: &PoiAttack,
        windows: &WindowedDataset,
    ) -> BTreeMap<UserId, UserAttackShard> {
        let mut cache = PopulationCache::new();
        cache.advance(attack, &windows.windows()[0]).unwrap();
        cache.shards().clone()
    }

    #[test]
    fn fresh_session_is_empty() {
        let cache = SessionCache::new();
        assert_eq!(cache.windows_ingested(), 0);
        assert!(cache.reference_index().is_none());
        assert_eq!(cache.prefix().record_count(), 0);
        assert!(cache.shards().is_empty());
        assert!(cache.reference().is_empty());
        assert!(cache.strategies().is_empty());
        assert_eq!(cache.strategies().candidates(), 0);
        assert!(cache.strategies().last_deltas().is_empty());
        assert_eq!(
            cache.strategies().last_window(),
            StrategyCacheDelta::default()
        );
        assert!(WindowedDataset::partition(&Dataset::new()).is_empty());
    }

    #[test]
    fn publish_all_replays_every_window() {
        let ds = dataset(17, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let releases = publisher.publish_all(&windows).unwrap();
        assert_eq!(releases.len(), windows.len());
        assert_eq!(
            releases.iter().map(|r| r.day).collect::<Vec<_>>(),
            windows.days()
        );
        assert_eq!(publisher.cache().windows_ingested(), windows.len());
        // The final release covers the whole dataset's record count.
        let last = releases.last().unwrap();
        assert_eq!(publisher.cache().prefix().record_count(), ds.record_count());
        assert!(last.published.selection.winner().is_some());
    }
}
