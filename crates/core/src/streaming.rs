//! Streaming publication: day windows with cross-release shard and index
//! reuse.
//!
//! The batch path ([`crate::pipeline::PrivApi::publish`]) treats every
//! release as a from-scratch job: it re-extracts every user's POI exposure
//! and rebuilds the reference index even when yesterday's release already
//! computed almost all of it. A continuously running deployment publishes
//! *day windows* instead, and almost everything about the original-side
//! attack state carries over from one window to the next:
//!
//! * the per-user [`UserAttackShard`]s — a user without new records today
//!   has exactly yesterday's shard;
//! * the [`ReferenceIndex`] — unchanged users keep their per-user
//!   [`geo::PointIndex`]; changed users are amended in place
//!   ([`ReferenceIndex::update_user`]).
//!
//! [`SessionCache`] owns that cross-window state and
//! [`SessionCache::advance`] folds one [`DatasetWindow`] into it, tracking
//! what was reused vs. re-extracted in a [`WindowDelta`].
//! [`StreamingPublisher`] pairs a cache with a
//! [`crate::pipeline::PrivApi`] and publishes window after window through
//! [`crate::pipeline::PrivApi::publish_window`].
//!
//! # Invalidation rules
//!
//! A cached shard for user `u` is valid for the grown prefix iff
//!
//! 1. `u` has **no records in the new window** (their merged record
//!    history, and hence their dwell field, is unchanged), **and**
//! 2. the **extraction grid is unchanged** — the dwell grid is anchored on
//!    the prefix's bounding box, so a window that widens the bounding box
//!    shifts every user's cell boundaries and invalidates *all* shards.
//!
//! Either way no *full-dataset* extraction pass runs on the original side:
//! refreshes go through the per-user [`PoiAttack::extract_user`] delta
//! path (fanned out over the cores), which keeps the
//! [`PoiAttack::extractions`] probe strictly below `pool + 1` per window
//! after the first — the budget batch publish pays on every release.
//!
//! # The winners-parity invariant
//!
//! Publishing window `i` incrementally selects **byte-identical** winners
//! (same [`crate::selection::SelectionReport`], same released dataset) as
//! a batch [`crate::pipeline::PrivApi::publish`] over the concatenated
//! prefix [`mobility::WindowedDataset::prefix`]`(i)`. The cache never
//! approximates: refreshed shards are extracted from the *full* accumulated
//! prefix (cross-midnight dwell included), and amended per-user indexes
//! are structurally identical to freshly built ones. Property tests across
//! generator seeds enforce this.

use crate::attack::{PoiAttack, ReferenceIndex, ReferencePois, UserAttackShard};
use crate::error::PrivapiError;
use crate::pipeline::{PrivApi, PrivApiConfig, PublishedDataset};
use mobility::{Dataset, DatasetWindow, UserId, WindowedDataset};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// What [`SessionCache::advance`] did with one day window — the audit
/// record of the incremental path's cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDelta {
    /// Day index of the ingested window.
    pub day: i64,
    /// Users re-extracted over the grown prefix (new records, or a grid
    /// rebuild touched everyone).
    pub users_refreshed: usize,
    /// Users whose cached shard (and per-user index) was reused untouched.
    pub users_reused: usize,
    /// Refreshed users whose per-user [`geo::PointIndex`] was extended in
    /// place (new POIs appended) instead of rebuilt.
    pub indexes_extended: usize,
    /// Whether the window widened the prefix bounding box, forcing a new
    /// extraction grid and a full per-user refresh.
    pub grid_rebuilt: bool,
}

/// Cross-window original-side attack state: the accumulated prefix, the
/// per-user shards extracted from it, and the reference POIs + spatial
/// index the engine scores candidates against.
///
/// The cache is pure state — it holds no attack of its own.
/// [`SessionCache::advance`] borrows the publisher's [`PoiAttack`] so the
/// extraction accounting (and any custom attack parameters) stay with the
/// publisher that owns the session.
#[derive(Debug, Default)]
pub struct SessionCache {
    prefix: Dataset,
    /// The prefix's bounding box, maintained incrementally
    /// ([`geo::BoundingBox::union`] per window — exact under append, so
    /// the derived grid equals a from-scratch scan's without re-touching
    /// old records).
    bbox: Option<geo::BoundingBox>,
    shards: BTreeMap<UserId, UserAttackShard>,
    reference: ReferencePois,
    index: Option<ReferenceIndex>,
    windows_ingested: usize,
    last_day: Option<i64>,
}

impl SessionCache {
    /// Creates an empty session (no windows ingested).
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated prefix: every ingested window's trajectories,
    /// concatenated in ingestion order. Equals
    /// [`mobility::WindowedDataset::prefix`] of the same windows.
    pub fn prefix(&self) -> &Dataset {
        &self.prefix
    }

    /// The cached per-user shards, keyed by user.
    pub fn shards(&self) -> &BTreeMap<UserId, UserAttackShard> {
        &self.shards
    }

    /// The reference POIs extracted from the prefix (one entry per user).
    pub fn reference(&self) -> &ReferencePois {
        &self.reference
    }

    /// The amended spatial index over [`SessionCache::reference`], or
    /// `None` before the first window.
    pub fn reference_index(&self) -> Option<&ReferenceIndex> {
        self.index.as_ref()
    }

    /// Number of windows folded into this session.
    pub fn windows_ingested(&self) -> usize {
        self.windows_ingested
    }

    /// Day index of the most recently ingested window.
    pub fn last_day(&self) -> Option<i64> {
        self.last_day
    }

    /// Folds one day window into the session: appends its trajectories to
    /// the prefix, re-extracts (only) the invalidated users' shards over
    /// the grown prefix via the [`PoiAttack::extract_user`] delta path,
    /// and amends the reference POIs and their spatial index.
    ///
    /// Per-window cost is `O(window + refreshed users)`: the prefix
    /// bounding box is maintained by [`geo::BoundingBox::union`] (exact
    /// under append), never by rescanning the accumulated records.
    /// Refreshes are fanned out over the available cores; results are
    /// folded back in `UserId` order, so the cache state is deterministic
    /// regardless of scheduling.
    ///
    /// # Errors
    ///
    /// Windows must arrive in strictly ascending day order. A window
    /// whose day is not past [`SessionCache::last_day`] — a duplicate
    /// ingest, or an out-of-order replay — is rejected with
    /// [`PrivapiError::InvalidParameter`] *before* touching any state, so
    /// the prefix can never silently double-count a day's records.
    pub fn advance(
        &mut self,
        attack: &PoiAttack,
        window: &DatasetWindow,
    ) -> Result<WindowDelta, PrivapiError> {
        if let Some(last) = self.last_day {
            if window.day() <= last {
                return Err(PrivapiError::InvalidParameter {
                    name: "window.day",
                    value: format!(
                        "day {} after day {last}: windows must ascend strictly \
                         (duplicate ingest of an already-published window?)",
                        window.day()
                    ),
                });
            }
        }
        let changed = window.users();
        self.prefix
            .extend(window.dataset().trajectories().iter().cloned());
        self.windows_ingested += 1;
        self.last_day = Some(window.day());
        let merged_bbox = match (self.bbox, window.dataset().bounding_box()) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, None) => a,
            (None, b) => b,
        };
        let Some(bbox) = merged_bbox else {
            // Empty prefix: nothing to extract yet.
            return Ok(WindowDelta {
                day: window.day(),
                users_refreshed: 0,
                users_reused: 0,
                indexes_extended: 0,
                grid_rebuilt: false,
            });
        };
        let grid_rebuilt = self.bbox.is_some() && self.bbox != Some(bbox);
        let grid = attack.grid_for(bbox);
        let to_refresh: Vec<UserId> = if grid_rebuilt {
            self.prefix.users()
        } else {
            changed
        };
        let refreshed: Vec<UserAttackShard> = to_refresh
            .par_iter()
            .map(|&user| attack.extract_user(&self.prefix, user, &grid))
            .collect();
        let index = self
            .index
            .get_or_insert_with(|| ReferenceIndex::empty(attack.config().match_distance));
        let mut indexes_extended = 0;
        for shard in refreshed {
            if index.update_user(shard.user, &shard.pois) {
                indexes_extended += 1;
            }
            self.reference.insert(shard.user, shard.pois.clone());
            self.shards.insert(shard.user, shard);
        }
        self.bbox = Some(bbox);
        Ok(WindowDelta {
            day: window.day(),
            users_refreshed: to_refresh.len(),
            users_reused: self.shards.len() - to_refresh.len(),
            indexes_extended,
            grid_rebuilt,
        })
    }
}

/// One incremental release: the protected prefix plus the audit trail of
/// both the selection and the cache behaviour that produced it.
#[derive(Debug)]
pub struct PublishedWindow {
    /// Day index of the window that triggered this release.
    pub day: i64,
    /// What the session cache reused vs. refreshed for this window.
    pub delta: WindowDelta,
    /// The release over the full accumulated prefix — same shape as a
    /// batch [`crate::pipeline::PrivApi::publish`] of that prefix.
    pub published: PublishedDataset,
}

/// A [`PrivApi`] paired with a [`SessionCache`]: the streaming publication
/// front end.
///
/// # Example
///
/// ```
/// use mobility::gen::{CityModel, PopulationConfig};
/// use mobility::WindowedDataset;
/// use privapi::streaming::StreamingPublisher;
/// use privapi::pipeline::PrivApiConfig;
///
/// let data = CityModel::builder().seed(3).build().generate_population(
///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
/// );
/// let windows = WindowedDataset::partition(&data);
/// let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
/// for window in &windows {
///     let release = publisher.publish_window(window).unwrap();
///     assert_eq!(release.day, window.day());
/// }
/// assert_eq!(publisher.cache().windows_ingested(), windows.len());
/// ```
#[derive(Debug)]
pub struct StreamingPublisher {
    privapi: PrivApi,
    cache: SessionCache,
}

impl StreamingPublisher {
    /// Creates a publisher with the given configuration and the shared
    /// default pool, starting an empty session.
    pub fn new(config: PrivApiConfig) -> Self {
        Self::from_privapi(PrivApi::new(config))
    }

    /// Wraps an already-configured middleware (custom pool, attack or
    /// execution mode), starting an empty session.
    pub fn from_privapi(privapi: PrivApi) -> Self {
        Self {
            privapi,
            cache: SessionCache::new(),
        }
    }

    /// The wrapped middleware.
    pub fn privapi(&self) -> &PrivApi {
        &self.privapi
    }

    /// The session's cross-window cache state.
    pub fn cache(&self) -> &SessionCache {
        &self.cache
    }

    /// Publishes one day window incrementally — see
    /// [`crate::pipeline::PrivApi::publish_window`].
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] for an empty window;
    /// * [`PrivapiError::NoFeasibleStrategy`] when no pooled strategy can
    ///   meet the privacy floor on the accumulated prefix.
    pub fn publish_window(
        &mut self,
        window: &DatasetWindow,
    ) -> Result<PublishedWindow, PrivapiError> {
        self.privapi.publish_window(&mut self.cache, window)
    }

    /// Replays every window of a partitioned dataset through
    /// [`StreamingPublisher::publish_window`], oldest first, returning the
    /// per-window releases.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first window-publication error.
    pub fn publish_all(
        &mut self,
        windows: &WindowedDataset,
    ) -> Result<Vec<PublishedWindow>, PrivapiError> {
        windows.iter().map(|w| self.publish_window(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PrivApi;
    use mobility::gen::{CityModel, PopulationConfig};

    fn dataset(seed: u64, users: usize, days: usize) -> Dataset {
        CityModel::builder()
            .seed(seed)
            .build()
            .generate_population(&PopulationConfig {
                users,
                days,
                sampling_interval_s: 240,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn streaming_matches_batch_prefix_publish() {
        // The acceptance invariant, exercised window by window: the
        // incremental release of window i is byte-identical (selection
        // report, strategy, privacy report, released data) to a batch
        // publish of the concatenated prefix 0..=i.
        let ds = dataset(61, 4, 3);
        let windows = WindowedDataset::partition(&ds);
        assert!(windows.len() >= 3, "want several windows");
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        for (i, window) in windows.iter().enumerate() {
            let incremental = publisher.publish_window(window).unwrap();
            let batch = PrivApi::default().publish(&windows.prefix(i)).unwrap();
            assert_eq!(
                incremental.published.selection, batch.selection,
                "window {i}"
            );
            assert_eq!(incremental.published.strategy, batch.strategy, "window {i}");
            assert_eq!(incremental.published.privacy, batch.privacy, "window {i}");
            assert_eq!(incremental.published.dataset, batch.dataset, "window {i}");
        }
    }

    #[test]
    fn subsequent_windows_skip_the_full_original_extraction() {
        // Batch publish costs pool + 1 full extractions per release (one
        // original-side pass plus one self-attack per candidate). The
        // streaming path must never pay the original-side pass: every
        // window stays at pool full extractions — strictly fewer than
        // pool + 1 — because original-side refreshes go through the
        // per-user delta path, which the probe does not count.
        let ds = dataset(93, 4, 3);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let pool = publisher.privapi().pool().len();
        let probe = publisher.privapi().attack().clone();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            publisher.publish_window(window).unwrap();
            let per_window = probe.extractions() - before;
            assert!(
                per_window < pool + 1,
                "window {i}: {per_window} full extractions, batch budget is {}",
                pool + 1
            );
            assert_eq!(
                per_window, pool,
                "window {i}: one self-attack per candidate"
            );
        }
    }

    #[test]
    fn cache_reuses_unchanged_users_and_tracks_deltas() {
        // Two users on day 0; only one of them has day-1 records that stay
        // inside the day-0 bounding box, so day 1 must refresh exactly that
        // user and reuse the other's shard.
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let site = |lon: f64| GeoPoint::new(45.75, lon).unwrap();
        let mut records = Vec::new();
        // User 1: a commute plus long dwells on both days, spanning the box.
        for day in 0..2i64 {
            for i in 0..240i64 {
                let lon = 4.80 + 0.0004 * (i.min(60)) as f64;
                records.push(LocationRecord::new(
                    UserId(1),
                    Timestamp::new(day * DAY_SECONDS + i * 300),
                    site(lon),
                ));
            }
        }
        // User 2: day 0 only, dwelling inside the same box.
        for i in 0..240i64 {
            records.push(LocationRecord::new(
                UserId(2),
                Timestamp::new(i * 300),
                site(4.81),
            ));
        }
        let ds = Dataset::from_records(records);
        let windows = WindowedDataset::partition(&ds);
        assert_eq!(windows.len(), 2);

        let attack = PoiAttack::default();
        let mut cache = SessionCache::new();
        let d0 = cache.advance(&attack, &windows.windows()[0]).unwrap();
        assert_eq!(d0.users_refreshed, 2);
        assert_eq!(d0.users_reused, 0);
        assert!(!d0.grid_rebuilt, "first window never reports a rebuild");
        let user2_day0 = cache.shards()[&UserId(2)].clone();

        let d1 = cache.advance(&attack, &windows.windows()[1]).unwrap();
        assert!(!d1.grid_rebuilt, "day 1 stays inside the day-0 bbox");
        assert_eq!(d1.users_refreshed, 1, "only user 1 has new records");
        assert_eq!(d1.users_reused, 1);
        // The reused shard is bitwise yesterday's.
        assert_eq!(cache.shards()[&UserId(2)].pois, user2_day0.pois);
        assert_eq!(
            cache.shards()[&UserId(2)].threshold_s,
            user2_day0.threshold_s
        );
        assert_eq!(cache.windows_ingested(), 2);
        assert_eq!(cache.reference().len(), 2);
        assert_eq!(
            cache.reference_index().unwrap().user_count(),
            2,
            "index covers both users"
        );
    }

    #[test]
    fn bbox_growth_invalidates_every_shard() {
        use geo::GeoPoint;
        use mobility::{LocationRecord, Timestamp, DAY_SECONDS};
        let mut records = Vec::new();
        for user in 1..=2u64 {
            for i in 0..60i64 {
                records.push(LocationRecord::new(
                    UserId(user),
                    Timestamp::new(i * 300),
                    GeoPoint::new(45.75, 4.80 + 0.001 * user as f64).unwrap(),
                ));
            }
        }
        // Day 1: user 1 wanders far outside the day-0 box.
        for i in 0..60i64 {
            records.push(LocationRecord::new(
                UserId(1),
                Timestamp::new(DAY_SECONDS + i * 300),
                GeoPoint::new(45.95, 5.10).unwrap(),
            ));
        }
        let windows = WindowedDataset::partition(&Dataset::from_records(records));
        let attack = PoiAttack::default();
        let mut cache = SessionCache::new();
        cache.advance(&attack, &windows.windows()[0]).unwrap();
        let d1 = cache.advance(&attack, &windows.windows()[1]).unwrap();
        assert!(d1.grid_rebuilt, "widened bbox must rebuild the grid");
        assert_eq!(d1.users_refreshed, 2, "a grid rebuild touches everyone");
        assert_eq!(d1.users_reused, 0);
    }

    #[test]
    fn duplicate_or_out_of_order_windows_are_rejected_without_ingesting() {
        let ds = dataset(29, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        publisher.publish_window(&windows.windows()[1]).unwrap();
        let records_before = publisher.cache().prefix().record_count();
        // Re-sending the same window (a retry after a failed release, or a
        // bug) must fail loudly and leave the session untouched.
        for stale in [&windows.windows()[1], &windows.windows()[0]] {
            let err = publisher.publish_window(stale).unwrap_err();
            assert!(
                matches!(
                    err,
                    PrivapiError::InvalidParameter {
                        name: "window.day",
                        ..
                    }
                ),
                "got {err}"
            );
            assert_eq!(publisher.cache().prefix().record_count(), records_before);
            assert_eq!(publisher.cache().windows_ingested(), 1);
        }
        assert_eq!(
            publisher.cache().last_day(),
            Some(windows.windows()[1].day())
        );
    }

    #[test]
    fn fresh_session_is_empty() {
        let cache = SessionCache::new();
        assert_eq!(cache.windows_ingested(), 0);
        assert!(cache.reference_index().is_none());
        assert_eq!(cache.prefix().record_count(), 0);
        assert!(cache.shards().is_empty());
        assert!(cache.reference().is_empty());
        assert!(WindowedDataset::partition(&Dataset::new()).is_empty());
    }

    #[test]
    fn publish_all_replays_every_window() {
        let ds = dataset(17, 3, 2);
        let windows = WindowedDataset::partition(&ds);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let releases = publisher.publish_all(&windows).unwrap();
        assert_eq!(releases.len(), windows.len());
        assert_eq!(
            releases.iter().map(|r| r.day).collect::<Vec<_>>(),
            windows.days()
        );
        assert_eq!(publisher.cache().windows_ingested(), windows.len());
        // The final release covers the whole dataset's record count.
        let last = releases.last().unwrap();
        assert_eq!(publisher.cache().prefix().record_count(), ds.record_count());
        assert!(last.published.selection.winner().is_some());
    }
}
