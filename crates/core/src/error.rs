//! Error type for PRIVAPI operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the PRIVAPI middleware.
#[derive(Debug)]
pub enum PrivapiError {
    /// A strategy parameter was invalid (name, offending value).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
    /// The selector had no candidate satisfying the privacy floor.
    NoFeasibleStrategy {
        /// The privacy floor that was requested (max tolerated POI recall).
        floor: f64,
        /// Best (lowest) POI recall achieved by any candidate.
        best_recall: f64,
    },
    /// The dataset was empty where data was required.
    EmptyDataset,
    /// A streaming day window arrived out of order: its day is not past
    /// the session's most recently ingested day (a duplicate ingest, or an
    /// out-of-order replay). Nothing was ingested.
    StreamError {
        /// Day index of the rejected window.
        day: i64,
        /// Day index of the most recently ingested window.
        last_day: i64,
    },
    /// An underlying mobility-layer error.
    Mobility(mobility::MobilityError),
    /// A federated deployment was asked to run a strategy that cannot be
    /// executed device-locally: it declares
    /// [`crate::strategy::UserLocality::NonLocal`] or exposes no
    /// serializable [`crate::federated::StrategySpec`].
    NonFederable {
        /// The offending candidate, rendered as `name(params)`.
        strategy: String,
    },
    /// A grid-anchored strategy config was instantiated without the
    /// broadcast grid anchor it needs to cloak deterministically.
    MissingGridAnchor {
        /// The mechanism that needed the anchor.
        strategy: String,
    },
}

impl fmt::Display for PrivapiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivapiError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name}: {value}")
            }
            PrivapiError::NoFeasibleStrategy { floor, best_recall } => write!(
                f,
                "no strategy satisfies privacy floor {floor:.2} (best achievable POI recall {best_recall:.2})"
            ),
            PrivapiError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            PrivapiError::StreamError { day, last_day } => write!(
                f,
                "window for day {day} arrived after day {last_day}: streaming windows must \
                 ascend strictly (duplicate ingest of an already-published window?)"
            ),
            PrivapiError::Mobility(e) => write!(f, "mobility error: {e}"),
            PrivapiError::NonFederable { strategy } => write!(
                f,
                "strategy {strategy} cannot run device-locally: federated release \
                 requires UserLocal (or anchored GridAnchored) candidates with a \
                 serializable spec"
            ),
            PrivapiError::MissingGridAnchor { strategy } => write!(
                f,
                "strategy {strategy} is grid-anchored but no grid anchor was \
                 broadcast in the strategy config"
            ),
        }
    }
}

impl Error for PrivapiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PrivapiError::Mobility(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mobility::MobilityError> for PrivapiError {
    fn from(e: mobility::MobilityError) -> Self {
        PrivapiError::Mobility(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PrivapiError::NoFeasibleStrategy {
            floor: 0.1,
            best_recall: 0.4,
        };
        assert!(e.to_string().contains("0.10"));
        assert!(e.to_string().contains("0.40"));
        assert!(PrivapiError::EmptyDataset.to_string().contains("non-empty"));
        let stream = PrivapiError::StreamError {
            day: 3,
            last_day: 5,
        };
        assert!(stream.to_string().contains("day 3"));
        assert!(stream.to_string().contains("day 5"));
        assert!(stream.to_string().contains("ascend strictly"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PrivapiError>();
    }
}
