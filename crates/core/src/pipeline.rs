//! The PRIVAPI middleware facade.
//!
//! "PRIVAPI is a generic middleware that can be integrated with any
//! crowd-sensing platform. […] Thanks to its knowledge on the whole dataset
//! it can use an optimal anonymization strategy on mobility data while still
//! offering a satisfactory level of utility." (paper, §1)
//!
//! [`PrivApi::publish`] is the single entry point a platform calls before
//! releasing a collected mobility dataset: it extracts the dataset's own POI
//! exposure, searches the strategy pool for the best utility under the
//! privacy floor, and returns the protected dataset together with a full
//! audit report.

use crate::attack::{PoiAttack, PoiAttackReport};
use crate::engine::{EvalContext, EvaluationEngine, ExecutionMode};
use crate::error::PrivapiError;
use crate::pool::StrategyPool;
use crate::selection::{Objective, SelectionReport};
use crate::strategy::StrategyInfo;
use crate::streaming::{
    BaselineDelta, PopulationCache, PublishedWindow, SessionCache, StrategyCacheDelta,
    StrategyDonor, StrategySessionCache, WindowUpdate,
};
use geo::Meters;
use mobility::{Dataset, DatasetWindow};

/// Configuration of the PRIVAPI middleware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivApiConfig {
    /// Maximum tolerated POI recall after protection, in `[0, 1]`.
    /// The paper: "a minimum level of privacy must be enforced, as
    /// parametrized by the users and/or the platform owner".
    pub privacy_floor: f64,
    /// The analysis the release is destined for (drives strategy choice).
    pub objective: Objective,
    /// Seed for all randomized mechanisms (reproducible releases).
    pub seed: u64,
}

impl Default for PrivApiConfig {
    /// Floor of 25 % POI recall, crowded-places objective on a 250 m grid.
    fn default() -> Self {
        Self {
            privacy_floor: 0.25,
            objective: Objective::CrowdedPlaces {
                cell: Meters::new(250.0),
                k: 20,
            },
            seed: 0x9817_AB1D,
        }
    }
}

/// A protected dataset plus the audit trail of how it was produced.
#[derive(Debug)]
pub struct PublishedDataset {
    /// The protected mobility data, safe to hand to analysts.
    pub dataset: Dataset,
    /// Which strategy was applied.
    pub strategy: StrategyInfo,
    /// The privacy measurement of the released data (self-attack).
    pub privacy: PoiAttackReport,
    /// Every candidate's evaluation.
    pub selection: SelectionReport,
}

/// The PRIVAPI middleware.
#[derive(Debug)]
pub struct PrivApi {
    config: PrivApiConfig,
    attack: PoiAttack,
    pool: StrategyPool,
    mode: ExecutionMode,
}

impl PrivApi {
    /// Creates the middleware with the given configuration and the shared
    /// [`StrategyPool::default_pool`].
    pub fn new(config: PrivApiConfig) -> Self {
        Self {
            config,
            attack: PoiAttack::default(),
            pool: StrategyPool::default_pool(),
            mode: ExecutionMode::default(),
        }
    }

    /// Replaces the strategy pool searched on every publication.
    pub fn with_pool(mut self, pool: StrategyPool) -> Self {
        self.pool = pool;
        self
    }

    /// Replaces the attack used to measure POI exposure (e.g. with custom
    /// parameters, or an instrumented probe for extraction accounting).
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the evaluation schedule (parallel by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PrivApiConfig {
        &self.config
    }

    /// The strategy pool searched on every publication.
    pub fn pool(&self) -> &StrategyPool {
        &self.pool
    }

    /// The attack measuring POI exposure (its extraction counter is shared
    /// with the engine's workers, so [`crate::attack::PoiAttack::extractions`]
    /// accounts for the whole publish path).
    pub fn attack(&self) -> &PoiAttack {
        &self.attack
    }

    /// Protects and publishes a collected mobility dataset.
    ///
    /// The pool is searched by the parallel [`EvaluationEngine`] against
    /// per-objective projections of the dataset computed once per call.
    /// The dataset's own POI exposure (the "global knowledge" reference the
    /// self-attack scores against) is extracted **exactly once**, inside
    /// the engine's evaluation context — enforced by a counting test, not
    /// just by construction.
    ///
    /// # Example
    ///
    /// ```
    /// use mobility::gen::{CityModel, PopulationConfig};
    /// use privapi::prelude::*;
    ///
    /// let data = CityModel::builder().seed(9).build().generate_population(
    ///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
    /// );
    /// let privapi = PrivApi::default();
    /// let release = privapi.publish(&data).unwrap();
    /// assert!(release.privacy.recall <= privapi.config().privacy_floor + 1e-9);
    /// assert_eq!(release.dataset.user_count(), data.user_count());
    /// println!("released under {}", release.strategy);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] for an empty input;
    /// * [`PrivapiError::NoFeasibleStrategy`] when no pooled strategy can
    ///   meet the privacy floor on this dataset.
    pub fn publish(&self, dataset: &Dataset) -> Result<PublishedDataset, PrivapiError> {
        if dataset.record_count() == 0 {
            return Err(PrivapiError::EmptyDataset);
        }
        let mut span = obs::span("privapi.publish");
        span.set_attr("records", dataset.record_count());
        let (selection, winner) = self
            .engine()
            .evaluate_release_extracting(&self.pool, dataset)?;
        let Some(winner) = winner else {
            return Err(selection.no_feasible_error());
        };
        self.assemble(selection, winner)
    }

    /// Protects and publishes one **day window** incrementally: the window
    /// is folded into `cache` (per-user shard reuse, amended reference
    /// index — see [`SessionCache::advance`]) and the release is selected
    /// over the full accumulated prefix with **zero** original-side
    /// extraction passes; the per-candidate self-attacks then run against
    /// the session's per-strategy protected-side caches
    /// ([`crate::streaming::StrategySessionCache`]), re-anonymizing and
    /// re-extracting only the users the window changed for every candidate
    /// whose [`crate::strategy::UserLocality`] permits it.
    ///
    /// The release is byte-identical to [`PrivApi::publish`] over the same
    /// prefix — only cheaper: the original's POI exposure is amended from
    /// the session state instead of re-extracted, and cached candidates
    /// skip their full protected-side extraction, so the
    /// [`PoiAttack::extractions`] probe counts only the non-local
    /// candidates per window (zero for the default pool) against the batch
    /// budget of `pool + 1`, and [`PoiAttack::user_extractions`] scales
    /// with the *changed* users instead of the population.
    ///
    /// Use [`crate::streaming::StreamingPublisher`] when one session owns
    /// both the middleware and the cache; this lower-level entry point
    /// exists for callers (like the APISENSE gateway) that manage session
    /// state themselves.
    ///
    /// A successful ingest is permanent: if the *release* then fails
    /// (e.g. [`PrivapiError::NoFeasibleStrategy`]), the window's records
    /// remain part of the session prefix and are **not** rolled back —
    /// re-sending the same window is rejected with the typed
    /// [`PrivapiError::StreamError`] by [`SessionCache::advance`], so a
    /// retry loop can never silently double-ingest a day and corrupt the
    /// batch-parity invariant.
    ///
    /// # Example
    ///
    /// ```
    /// use mobility::gen::{CityModel, PopulationConfig};
    /// use mobility::WindowedDataset;
    /// use privapi::prelude::*;
    ///
    /// let data = CityModel::builder().seed(5).build().generate_population(
    ///     &PopulationConfig { users: 3, days: 2, ..PopulationConfig::default() },
    /// );
    /// let windows = WindowedDataset::partition(&data);
    /// let privapi = PrivApi::default();
    /// let mut session = SessionCache::new();
    /// for window in &windows {
    ///     let release = privapi.publish_window(&mut session, window).unwrap();
    ///     assert_eq!(release.day, window.day());
    /// }
    /// // No full extraction pass ran: the original side and every pooled
    /// // candidate's self-attack went through the per-user cache deltas.
    /// assert_eq!(privapi.attack().extractions(), 0);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] for an empty window;
    /// * [`PrivapiError::StreamError`] for a duplicate or out-of-order
    ///   window day (nothing ingested);
    /// * [`PrivapiError::NoFeasibleStrategy`] when no pooled strategy can
    ///   meet the privacy floor on the accumulated prefix (window
    ///   ingested).
    pub fn publish_window(
        &self,
        cache: &mut SessionCache,
        window: &DatasetWindow,
    ) -> Result<PublishedWindow, PrivapiError> {
        if window.record_count() == 0 {
            return Err(PrivapiError::EmptyDataset);
        }
        // Window-level wall span: `streaming.advance` and `engine.sweep`
        // record as children, giving `obs_report` its per-window
        // breakdown.
        let mut span = obs::span("privapi.window");
        span.set_attr("day", window.day());
        let update = WindowUpdate {
            changed_users: window.users(),
            grid_rebuilt: false,
        };
        let delta = cache.advance(&self.attack, window)?;
        let update = WindowUpdate {
            grid_rebuilt: delta.grid_rebuilt,
            ..update
        };
        let (population, strategies) = cache.split_for_evaluation();
        let (published, strategy_delta, baseline) =
            self.publish_session(population, strategies, &update, None)?;
        Ok(PublishedWindow {
            day: window.day(),
            delta,
            strategies: strategy_delta,
            baseline,
            published,
        })
    }

    /// The evaluation-only half of a streaming step: selects and releases
    /// over an **already-advanced** [`PopulationCache`], refreshing the
    /// caller's per-strategy caches along the way. This is what
    /// [`PrivApi::publish_window`] runs right after
    /// [`SessionCache::advance`], split out so callers that *share* one
    /// population cache across several consumers — the multi-campaign
    /// orchestrator, which advances the population once per window and
    /// then evaluates N campaigns against it — can drive the exact same
    /// code path (winner parity with a standalone session is by
    /// construction, not by re-implementation).
    ///
    /// `update` must describe what the window that advanced `population`
    /// changed (its active users, and whether the extraction grid was
    /// rebuilt), exactly as [`PrivApi::publish_window`] would build it.
    ///
    /// `donor`, when given, is another campaign's frozen protected-side
    /// snapshot for the *same* window: candidates whose slot it covers are
    /// adopted by pointer clone instead of re-anonymized (the orchestrator
    /// pre-checks [`StrategyDonor::compatible`]; per-slot identity is
    /// checked again here). Pass `None` on standalone sessions.
    ///
    /// # Errors
    ///
    /// * [`PrivapiError::EmptyDataset`] when the population cache holds no
    ///   records yet;
    /// * [`PrivapiError::NoFeasibleStrategy`] when no pooled strategy can
    ///   meet the privacy floor on the accumulated prefix.
    pub fn publish_session(
        &self,
        population: &PopulationCache,
        strategies: &mut StrategySessionCache,
        update: &WindowUpdate,
        donor: Option<&StrategyDonor>,
    ) -> Result<(PublishedDataset, StrategyCacheDelta, BaselineDelta), PrivapiError> {
        let Some(index) = population.reference_index() else {
            return Err(PrivapiError::EmptyDataset);
        };
        let donor = donor.filter(|d| {
            d.compatible(
                self.config.seed,
                self.attack.config(),
                population.windows_ingested(),
            )
        });
        let (baseline, baseline_delta) = population.baseline_for(self.config.objective);
        let context = EvalContext::from_cache(
            population.prefix(),
            population.reference(),
            index,
            baseline,
        )
        .with_population(population.by_user(), population.bounding_box());
        let (selection, winner) = self
            .engine()
            .evaluate_release_with(&self.pool, &context, strategies, update, donor)?;
        let strategy_delta = strategies.last_window();
        let Some(winner) = winner else {
            return Err(selection.no_feasible_error());
        };
        Ok((
            self.assemble(selection, winner)?,
            strategy_delta,
            baseline_delta,
        ))
    }

    /// The evaluation engine every publish entry point drives, configured
    /// with this middleware's objective, floor, seed, attack and schedule.
    fn engine(&self) -> EvaluationEngine {
        EvaluationEngine::new(
            self.config.objective,
            self.config.privacy_floor,
            self.config.seed,
        )
        .with_attack(self.attack.clone())
        .with_mode(self.mode)
    }

    /// Folds a winning release into the published audit record.
    fn assemble(
        &self,
        selection: SelectionReport,
        winner: crate::engine::WinnerRelease,
    ) -> Result<PublishedDataset, PrivapiError> {
        let strategy = self.pool.get(winner.index).expect("chosen index in pool");
        Ok(PublishedDataset {
            dataset: winner.dataset,
            strategy: strategy.info(),
            privacy: winner.privacy,
            selection,
        })
    }
}

impl Default for PrivApi {
    fn default() -> Self {
        Self::new(PrivApiConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::gen::{CityModel, PopulationConfig};

    fn dataset() -> Dataset {
        CityModel::builder()
            .seed(29)
            .build()
            .generate_population(&PopulationConfig {
                users: 4,
                days: 3,
                sampling_interval_s: 120,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn publish_meets_privacy_floor() {
        let privapi = PrivApi::default();
        let published = privapi.publish(&dataset()).unwrap();
        assert!(
            published.privacy.recall <= privapi.config().privacy_floor + 1e-9,
            "published recall {} above floor",
            published.privacy.recall
        );
        assert!(!published.strategy.name.is_empty());
        assert!(published.selection.winner().is_some());
    }

    #[test]
    fn publish_preserves_users() {
        let ds = dataset();
        let published = PrivApi::default().publish(&ds).unwrap();
        assert_eq!(published.dataset.user_count(), ds.user_count());
    }

    #[test]
    fn publish_rejects_empty() {
        assert!(matches!(
            PrivApi::default().publish(&Dataset::new()),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn publish_extracts_original_exactly_once() {
        // The invariant behind the EvalContext fold: one publish performs
        // exactly one full-dataset extraction of the *original* (inside the
        // extracting context) plus one per candidate self-attack — nothing
        // more. A regression that re-extracts the original (the legacy
        // double-extraction) shows up as pool_size + 2.
        let privapi = PrivApi::default();
        let ds = dataset();
        assert_eq!(privapi.attack().extractions(), 0);
        privapi.publish(&ds).unwrap();
        assert_eq!(
            privapi.attack().extractions(),
            privapi.pool().len() + 1,
            "expected exactly one original-side extraction plus one per candidate"
        );
        // And the accounting is per publish, not cumulative drift.
        privapi.publish(&ds).unwrap();
        assert_eq!(
            privapi.attack().extractions(),
            2 * (privapi.pool().len() + 1)
        );
    }

    #[test]
    fn identity_is_never_chosen() {
        // The default pool intentionally excludes Identity; even so, the
        // chosen strategy must actually reduce recall vs. raw.
        let ds = dataset();
        let privapi = PrivApi::default();
        let raw_reference = privapi.attack.extract(&ds);
        let raw_self = privapi.attack.evaluate_reference(&ds, &raw_reference);
        let published = privapi.publish(&ds).unwrap();
        assert!(published.privacy.recall < raw_self.recall);
    }
}
