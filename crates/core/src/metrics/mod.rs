//! Utility metrics over anonymized datasets.
//!
//! "Because published data will be used by researchers or industrials, it
//! must guarantee both privacy and utility" (paper, §3). The paper names two
//! target analyses — *finding out crowded places* and *predicting traffic* —
//! plus the generic fidelity of positions. Each gets a metric:
//!
//! * [`spatial_distortion`] — point-wise displacement between the original
//!   and protected data, aligned by time so strategies that change the
//!   sampling (speed smoothing, downsampling) are compared fairly;
//! * [`crowded_places_utility`] — agreement of the top-*k* most-visited grid
//!   cells (precision@k and Jaccard);
//! * [`traffic_utility`] — error of an hourly per-cell visit forecast
//!   trained on protected data and evaluated against the real final day.

mod crowded;
mod distortion;
mod traffic;

pub use crowded::{crowded_places_utility, CrowdedBaseline, CrowdedPlacesReport};
pub use distortion::{spatial_distortion, DistortionReport};
pub use traffic::{traffic_utility, TrafficBaseline, TrafficReport};
