//! Traffic-prediction utility.
//!
//! The analyst trains an hourly per-cell visit forecast on the *protected*
//! dataset (historical average per hour-of-day over all but the last day)
//! and the forecast is scored against the *original* dataset's actual final
//! day. If protection preserved where-and-when people move, the forecast
//! stays accurate.

use crate::error::PrivapiError;
use geo::{CellId, Meters, UniformGrid};
use mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accuracy of the traffic forecast trained on protected data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Total absolute forecast error normalized by total true volume
    /// (0 = perfect; 1 = errors as large as the traffic itself).
    pub relative_volume_error: f64,
    /// Pearson correlation between forecast and truth across (cell, hour)
    /// pairs; `None` when variance is degenerate.
    pub correlation: Option<f64>,
    /// Number of (cell, hour) pairs evaluated.
    pub evaluated_pairs: usize,
    /// The day index used as the evaluation target.
    pub eval_day: i64,
}

impl TrafficReport {
    /// A conventional `[0, 1]` utility score: `max(0, 1 − error)`.
    pub fn utility_score(&self) -> f64 {
        (1.0 - self.relative_volume_error).max(0.0)
    }
}

/// Hourly visit counts per cell, keyed by `(cell, hour_of_day)`, restricted
/// to a day filter.
pub(crate) fn hourly_histogram<F>(
    dataset: &Dataset,
    grid: &UniformGrid,
    day_filter: F,
) -> HashMap<(CellId, i64), f64>
where
    F: Fn(i64) -> bool,
{
    let mut out: HashMap<(CellId, i64), f64> = HashMap::new();
    for r in dataset.iter_records() {
        let day = r.time.day_index();
        if !day_filter(day) {
            continue;
        }
        let key = (grid.cell_of(&r.point), r.time.hour_of_day());
        *out.entry(key).or_insert(0.0) += 1.0;
    }
    out
}

/// The original dataset's side of the traffic-forecast evaluation — grid,
/// train/test day split and ground-truth histogram — computed once and
/// reusable across many protected candidates.
#[derive(Debug, Clone)]
pub struct TrafficBaseline {
    grid: UniformGrid,
    eval_day: i64,
    train_days: f64,
    truth: HashMap<(CellId, i64), f64>,
}

impl TrafficBaseline {
    /// Grids the original dataset and extracts the final-day ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the original dataset is
    /// empty or spans fewer than two days (no train/test split possible).
    pub fn new(original: &Dataset, cell_size: Meters) -> Result<Self, PrivapiError> {
        let bbox = original
            .bounding_box()
            .ok_or(PrivapiError::EmptyDataset)?
            .grid_anchor();
        let grid =
            UniformGrid::new(bbox, cell_size).map_err(|e| PrivapiError::InvalidParameter {
                name: "cell_size",
                value: e.to_string(),
            })?;
        let days: Vec<i64> = {
            let mut d: Vec<i64> = original
                .iter_records()
                .map(|r| r.time.day_index())
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        if days.len() < 2 {
            return Err(PrivapiError::EmptyDataset);
        }
        let eval_day = *days.last().expect("non-empty");
        let train_days = (days.len() - 1) as f64;
        // Truth: original dataset, last day only.
        let truth = hourly_histogram(original, &grid, |d| d == eval_day);
        if truth.is_empty() {
            return Err(PrivapiError::EmptyDataset);
        }
        Ok(Self {
            grid,
            eval_day,
            train_days,
            truth,
        })
    }

    /// Assembles a baseline from already-computed parts — the streaming
    /// cache's projection surface: incrementally folded per-day histograms
    /// yield the day split and final-day truth outside this module and are
    /// handed over here, keeping the scoring arithmetic in one place.
    pub(crate) fn from_parts(
        grid: UniformGrid,
        eval_day: i64,
        train_days: f64,
        truth: HashMap<(CellId, i64), f64>,
    ) -> Self {
        Self {
            grid,
            eval_day,
            train_days,
            truth,
        }
    }

    /// The tessellation both sides are histogrammed on.
    pub(crate) fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The day index used as the evaluation target.
    pub(crate) fn eval_day(&self) -> i64 {
        self.eval_day
    }

    /// Trains the hourly forecast on one protected dataset and scores it
    /// against the precomputed ground truth.
    pub fn score(&self, protected: &Dataset) -> TrafficReport {
        // Train on the protected dataset, all days but the last.
        self.score_train(&hourly_histogram(protected, &self.grid, |d| {
            d != self.eval_day
        }))
    }

    /// Scores an already-built protected-side training histogram (all days
    /// except [`Self::eval_day`]) — the entry point for incrementally
    /// maintained counts; [`Self::score`] is exactly
    /// `score_train(hourly_histogram(..))`, so both paths are
    /// byte-identical by construction. Callers must prune exact-zero
    /// entries the same way `hourly_histogram` never creates them: the key
    /// set feeds `evaluated_pairs` and the correlation.
    pub(crate) fn score_train(&self, train: &HashMap<(CellId, i64), f64>) -> TrafficReport {
        // Forecast for (cell, hour) = mean daily count over training days.
        let mut keys: Vec<(CellId, i64)> = self.truth.keys().copied().collect();
        for k in train.keys() {
            if !self.truth.contains_key(k) {
                keys.push(*k);
            }
        }
        keys.sort();

        let mut abs_err = 0.0;
        let mut total_truth = 0.0;
        let mut pred_vec = Vec::with_capacity(keys.len());
        let mut true_vec = Vec::with_capacity(keys.len());
        for key in &keys {
            let predicted = train.get(key).copied().unwrap_or(0.0) / self.train_days;
            let actual = self.truth.get(key).copied().unwrap_or(0.0);
            abs_err += (predicted - actual).abs();
            total_truth += actual;
            pred_vec.push(predicted);
            true_vec.push(actual);
        }
        let relative = if total_truth == 0.0 {
            1.0
        } else {
            abs_err / total_truth
        };
        TrafficReport {
            relative_volume_error: relative,
            correlation: pearson(&pred_vec, &true_vec),
            evaluated_pairs: keys.len(),
            eval_day: self.eval_day,
        }
    }
}

/// Runs the traffic-forecast evaluation on a `cell_size` grid.
///
/// One-shot wrapper over [`TrafficBaseline`]; when scoring many candidates
/// against the same original, build the baseline once instead.
///
/// # Errors
///
/// Returns [`PrivapiError::EmptyDataset`] when either dataset is empty or
/// spans fewer than two days (no train/test split possible).
pub fn traffic_utility(
    original: &Dataset,
    protected: &Dataset,
    cell_size: Meters,
) -> Result<TrafficReport, PrivapiError> {
    Ok(TrafficBaseline::new(original, cell_size)?.score(protected))
}

/// Pearson correlation; `None` when either vector is degenerate.
fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{LocationRecord, Timestamp, UserId, DAY_SECONDS};

    /// Same commute pattern every day for `days` days: a busy morning cell A
    /// (45 visits) and a quieter evening cell B (15 visits) — distinct
    /// volumes so correlation is well-defined.
    fn periodic_dataset(days: i64) -> Dataset {
        let a = GeoPoint::new(45.70, 4.80).unwrap();
        let b = GeoPoint::new(45.76, 4.88).unwrap();
        let mut records = Vec::new();
        for d in 0..days {
            for i in 0..45 {
                records.push(LocationRecord::new(
                    UserId(1),
                    Timestamp::new(d * DAY_SECONDS + 8 * 3_600 + i * 60),
                    a,
                ));
            }
            for i in 0..15 {
                records.push(LocationRecord::new(
                    UserId(1),
                    Timestamp::new(d * DAY_SECONDS + 18 * 3_600 + i * 60),
                    b,
                ));
            }
        }
        Dataset::from_records(records)
    }

    #[test]
    fn perfectly_periodic_data_forecasts_well() {
        let ds = periodic_dataset(5);
        let report = traffic_utility(&ds, &ds, Meters::new(500.0)).unwrap();
        assert!(
            report.relative_volume_error < 0.05,
            "error {}",
            report.relative_volume_error
        );
        assert!(report.correlation.unwrap() > 0.95);
        assert_eq!(report.eval_day, 4);
        assert!(report.utility_score() > 0.95);
    }

    #[test]
    fn displaced_training_data_forecasts_poorly() {
        let ds = periodic_dataset(5);
        // Train on data moved ~5.5 km north: forecast lands in wrong cells.
        let moved = ds.map_trajectories(|t| {
            let records: Vec<LocationRecord> = t
                .records()
                .iter()
                .map(|r| {
                    LocationRecord::new(
                        r.user,
                        r.time,
                        GeoPoint::new(r.point.latitude() + 0.05, r.point.longitude()).unwrap(),
                    )
                })
                .collect();
            mobility::Trajectory::new(t.user(), records)
        });
        let report = traffic_utility(&ds, &moved, Meters::new(500.0)).unwrap();
        assert!(
            report.relative_volume_error > 0.9,
            "error {}",
            report.relative_volume_error
        );
        assert!(report.utility_score() < 0.1);
    }

    #[test]
    fn single_day_errors() {
        let ds = periodic_dataset(1);
        assert!(matches!(
            traffic_utility(&ds, &ds, Meters::new(500.0)),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn empty_dataset_errors() {
        assert!(traffic_utility(&Dataset::new(), &Dataset::new(), Meters::new(500.0)).is_err());
    }

    #[test]
    fn pearson_sanity() {
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap(), 1.0);
        let anti = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((anti + 1.0).abs() < 1e-12);
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn missing_cells_penalized() {
        let ds = periodic_dataset(4);
        // Protected dataset drops the evening cluster entirely.
        let censored = ds.map_trajectories(|t| {
            let records: Vec<LocationRecord> = t
                .records()
                .iter()
                .filter(|r| r.time.hour_of_day() < 12)
                .copied()
                .collect();
            mobility::Trajectory::new(t.user(), records)
        });
        let report = traffic_utility(&ds, &censored, Meters::new(500.0)).unwrap();
        // The evening quarter of the volume cannot be forecast.
        assert!(
            report.relative_volume_error > 0.2,
            "error {}",
            report.relative_volume_error
        );
    }
}
