//! Crowded-places utility: agreement of the hottest grid cells.

use crate::error::PrivapiError;
use geo::{Meters, UniformGrid};
use mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Distinct-visitor count per cell.
pub(crate) fn visitor_histogram(
    dataset: &Dataset,
    grid: &UniformGrid,
) -> HashMap<geo::CellId, u64> {
    let mut visitors: HashMap<geo::CellId, HashSet<mobility::UserId>> = HashMap::new();
    for r in dataset.iter_records() {
        visitors
            .entry(grid.cell_of(&r.point))
            .or_default()
            .insert(r.user);
    }
    visitors
        .into_iter()
        .map(|(cell, users)| (cell, users.len() as u64))
        .collect()
}

/// Agreement between the top-*k* crowded cells of the original and the
/// protected datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdedPlacesReport {
    /// Requested number of hot cells.
    pub k: usize,
    /// Fraction of the original top-k recovered from protected data.
    pub precision_at_k: f64,
    /// Jaccard similarity of the two top-k sets.
    pub jaccard: f64,
    /// Analysis cell size in metres.
    pub cell_size_m: f64,
}

/// The original dataset's side of the crowded-places comparison, computed
/// once and reusable across many protected candidates.
///
/// The analyst fixes the tessellation before receiving data, so the grid and
/// the original top-`k` hot-cell set depend only on the original dataset —
/// precomputing them here is what lets the selection engine score a whole
/// strategy pool without re-gridding the original per candidate.
#[derive(Debug, Clone)]
pub struct CrowdedBaseline {
    grid: UniformGrid,
    top_orig: HashSet<geo::CellId>,
    k: usize,
    cell_size: Meters,
}

impl CrowdedBaseline {
    /// Grids the original dataset and extracts its top-`k` crowded cells.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the original dataset is
    /// empty and [`PrivapiError::InvalidParameter`] for a zero `k` or
    /// non-positive cell size.
    pub fn new(original: &Dataset, cell_size: Meters, k: usize) -> Result<Self, PrivapiError> {
        if k == 0 {
            return Err(PrivapiError::InvalidParameter {
                name: "k",
                value: "0".into(),
            });
        }
        let bbox = original
            .bounding_box()
            .ok_or(PrivapiError::EmptyDataset)?
            .grid_anchor();
        let grid =
            UniformGrid::new(bbox, cell_size).map_err(|e| PrivapiError::InvalidParameter {
                name: "cell_size",
                value: e.to_string(),
            })?;
        let hist_orig = visitor_histogram(original, &grid);
        let top_orig: HashSet<geo::CellId> = UniformGrid::top_k(&hist_orig, k)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        Ok(Self {
            grid,
            top_orig,
            k,
            cell_size,
        })
    }

    /// Assembles a baseline from already-computed parts — the streaming
    /// cache's projection surface: an incrementally folded visitor
    /// histogram is reduced to (`grid`, top-k set) outside this module and
    /// handed over here, so the scoring arithmetic stays in one place.
    pub(crate) fn from_parts(
        grid: UniformGrid,
        top_orig: HashSet<geo::CellId>,
        k: usize,
        cell_size: Meters,
    ) -> Self {
        Self {
            grid,
            top_orig,
            k,
            cell_size,
        }
    }

    /// The tessellation both sides are histogrammed on.
    pub(crate) fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Scores one protected dataset against the precomputed original top-k.
    pub fn score(&self, protected: &Dataset) -> CrowdedPlacesReport {
        self.score_counts(&visitor_histogram(protected, &self.grid))
    }

    /// Scores a protected-side distinct-visitor histogram directly — the
    /// entry point for incrementally maintained counts; [`Self::score`] is
    /// exactly `score_counts(visitor_histogram(..))`, so both paths are
    /// byte-identical by construction.
    pub(crate) fn score_counts(
        &self,
        hist_prot: &HashMap<geo::CellId, u64>,
    ) -> CrowdedPlacesReport {
        let top_prot: HashSet<geo::CellId> = UniformGrid::top_k(hist_prot, self.k)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        let intersection = self.top_orig.intersection(&top_prot).count();
        let union = self.top_orig.union(&top_prot).count();
        CrowdedPlacesReport {
            k: self.k,
            precision_at_k: if self.top_orig.is_empty() {
                0.0
            } else {
                intersection as f64 / self.top_orig.len() as f64
            },
            jaccard: if union == 0 {
                0.0
            } else {
                intersection as f64 / union as f64
            },
            cell_size_m: self.cell_size.get(),
        }
    }
}

/// Computes crowded-places agreement on a `cell_size` grid.
///
/// A cell's "crowdedness" is the number of **distinct users** observed in it
/// — a crowded place is one *many people* visit, which makes the measure
/// robust to protection mechanisms that change per-user sampling density
/// (speed smoothing, downsampling). Both datasets are histogrammed on the
/// *original* dataset's grid (the analyst fixes the tessellation before
/// receiving data), the top-`k` cells of each are intersected, and
/// precision@k / Jaccard are reported.
///
/// One-shot wrapper over [`CrowdedBaseline`]; when scoring many candidates
/// against the same original, build the baseline once instead.
///
/// # Errors
///
/// Returns [`PrivapiError::EmptyDataset`] when the original dataset is empty
/// and [`PrivapiError::InvalidParameter`] for a zero `k` or non-positive
/// cell size.
pub fn crowded_places_utility(
    original: &Dataset,
    protected: &Dataset,
    cell_size: Meters,
    k: usize,
) -> Result<CrowdedPlacesReport, PrivapiError> {
    Ok(CrowdedBaseline::new(original, cell_size, k)?.score(protected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{LocationRecord, Timestamp, UserId};

    fn cluster(ds: &mut Vec<LocationRecord>, lat: f64, lon: f64, count: usize, t0: i64) {
        // `count` distinct users visit the spot: crowdedness = visitors.
        for i in 0..count {
            ds.push(LocationRecord::new(
                UserId(i as u64),
                Timestamp::new(t0 + i as i64 * 60),
                GeoPoint::new(lat, lon).unwrap(),
            ));
        }
    }

    fn three_hotspots() -> Dataset {
        let mut records = Vec::new();
        cluster(&mut records, 45.70, 4.80, 50, 0);
        cluster(&mut records, 45.75, 4.85, 30, 10_000);
        cluster(&mut records, 45.80, 4.90, 10, 20_000);
        Dataset::from_records(records)
    }

    #[test]
    fn identical_data_full_agreement() {
        let ds = three_hotspots();
        let report = crowded_places_utility(&ds, &ds, Meters::new(250.0), 3).unwrap();
        assert_eq!(report.precision_at_k, 1.0);
        assert_eq!(report.jaccard, 1.0);
        assert_eq!(report.k, 3);
    }

    #[test]
    fn displaced_hotspots_reduce_agreement() {
        let ds = three_hotspots();
        // Move every point ~3 km: all hotspots land in different cells.
        let moved = ds.map_trajectories(|t| {
            let records: Vec<LocationRecord> = t
                .records()
                .iter()
                .map(|r| {
                    LocationRecord::new(
                        r.user,
                        r.time,
                        GeoPoint::new(r.point.latitude() + 0.03, r.point.longitude()).unwrap(),
                    )
                })
                .collect();
            mobility::Trajectory::new(t.user(), records)
        });
        let report = crowded_places_utility(&ds, &moved, Meters::new(250.0), 3).unwrap();
        assert_eq!(report.precision_at_k, 0.0);
        assert_eq!(report.jaccard, 0.0);
    }

    #[test]
    fn small_jitter_keeps_agreement() {
        let ds = three_hotspots();
        // 20 m of displacement is far below the 250 m cell.
        let jittered = ds.map_trajectories(|t| {
            let records: Vec<LocationRecord> = t
                .records()
                .iter()
                .map(|r| {
                    LocationRecord::new(
                        r.user,
                        r.time,
                        GeoPoint::new(r.point.latitude() + 0.00018, r.point.longitude())
                            .unwrap(),
                    )
                })
                .collect();
            mobility::Trajectory::new(t.user(), records)
        });
        let report = crowded_places_utility(&ds, &jittered, Meters::new(250.0), 2).unwrap();
        assert!(report.precision_at_k >= 0.5);
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = three_hotspots();
        assert!(crowded_places_utility(&ds, &ds, Meters::new(250.0), 0).is_err());
        assert!(crowded_places_utility(&ds, &ds, Meters::new(0.0), 3).is_err());
        assert!(crowded_places_utility(&Dataset::new(), &ds, Meters::new(250.0), 3).is_err());
    }

    #[test]
    fn k_larger_than_cells_is_tolerated() {
        let ds = three_hotspots();
        let report = crowded_places_utility(&ds, &ds, Meters::new(250.0), 50).unwrap();
        assert_eq!(report.precision_at_k, 1.0);
    }

    #[test]
    fn empty_protected_dataset_scores_zero() {
        let ds = three_hotspots();
        let report =
            crowded_places_utility(&ds, &Dataset::new(), Meters::new(250.0), 3).unwrap();
        assert_eq!(report.precision_at_k, 0.0);
    }

    #[test]
    fn visitor_semantics_ignore_record_density() {
        // One user hammering a cell with records must not outrank a cell
        // visited by many users: crowdedness counts people, not fixes.
        let mut records = Vec::new();
        // Cell A: 3 distinct visitors, one record each.
        for u in 0..3 {
            records.push(LocationRecord::new(
                UserId(u),
                Timestamp::new(u as i64),
                GeoPoint::new(45.70, 4.80).unwrap(),
            ));
        }
        // Cell B: a single user with 500 records.
        for i in 0..500 {
            records.push(LocationRecord::new(
                UserId(99),
                Timestamp::new(1_000 + i),
                GeoPoint::new(45.76, 4.88).unwrap(),
            ));
        }
        let ds = Dataset::from_records(records);
        let report = crowded_places_utility(&ds, &ds, Meters::new(250.0), 1).unwrap();
        assert_eq!(report.precision_at_k, 1.0);
        // Directly check the ranking through the public metric: comparing
        // against a dataset missing cell A must score 0 at k=1.
        let without_a = ds.map_trajectories(|t| {
            if t.user() == UserId(99) {
                t.clone()
            } else {
                mobility::Trajectory::new(t.user(), Vec::new())
            }
        });
        let degraded = crowded_places_utility(&ds, &without_a, Meters::new(250.0), 1).unwrap();
        assert_eq!(
            degraded.precision_at_k, 0.0,
            "top cell must be the 3-visitor cell, not the 500-record cell"
        );
    }
}
