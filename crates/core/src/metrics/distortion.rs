//! Time-aligned spatial distortion.

use crate::error::PrivapiError;
use mobility::{Dataset, Trajectory, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of point displacements between an original dataset and its
/// protected counterpart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistortionReport {
    /// Mean displacement, metres.
    pub mean_m: f64,
    /// Median displacement, metres.
    pub median_m: f64,
    /// 95th-percentile displacement, metres.
    pub p95_m: f64,
    /// Maximum displacement, metres.
    pub max_m: f64,
    /// Number of original records that could be compared.
    pub compared: usize,
}

impl DistortionReport {
    /// A conventional `[0, 1]` utility score derived from the mean
    /// displacement: `1 / (1 + mean/250 m)`. 0 m → 1.0; 250 m → 0.5.
    pub fn utility_score(&self) -> f64 {
        1.0 / (1.0 + self.mean_m / 250.0)
    }
}

/// Computes time-aligned spatial distortion.
///
/// For every record of the original dataset, the protected position is
/// interpolated *at the same timestamp* from the protected trajectory of the
/// same user covering that day. This makes strategies that resample
/// (speed smoothing) or thin (downsampling) comparable with per-point
/// mechanisms.
///
/// # Errors
///
/// Returns [`PrivapiError::EmptyDataset`] when no record of the original
/// dataset can be matched to a protected trajectory.
pub fn spatial_distortion(
    original: &Dataset,
    protected: &Dataset,
) -> Result<DistortionReport, PrivapiError> {
    // Index protected trajectories by (user, start day).
    let mut index: BTreeMap<(UserId, i64), Vec<&Trajectory>> = BTreeMap::new();
    for t in protected.trajectories() {
        if let Some(start) = t.start_time() {
            index
                .entry((t.user(), start.day_index()))
                .or_default()
                .push(t);
        }
    }
    let mut displacements: Vec<f64> = Vec::new();
    for t in original.trajectories() {
        let Some(start) = t.start_time() else {
            continue;
        };
        let Some(candidates) = index.get(&(t.user(), start.day_index())) else {
            continue;
        };
        for r in t.records() {
            // Use the first candidate trajectory covering this timestamp;
            // fall back to the first candidate (clamped interpolation).
            let pos = candidates
                .iter()
                .find_map(|c| {
                    let s = c.start_time()?;
                    let e = c.end_time()?;
                    if r.time >= s && r.time <= e {
                        c.position_at(r.time)
                    } else {
                        None
                    }
                })
                .or_else(|| candidates.first().and_then(|c| c.position_at(r.time)));
            if let Some(p) = pos {
                displacements.push(r.point.haversine_distance(&p).get());
            }
        }
    }
    if displacements.is_empty() {
        return Err(PrivapiError::EmptyDataset);
    }
    displacements.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let n = displacements.len();
    let mean = displacements.iter().sum::<f64>() / n as f64;
    let median = displacements[n / 2];
    let p95 = displacements[((n as f64) * 0.95) as usize % n.max(1)];
    let max = *displacements.last().expect("non-empty");
    Ok(DistortionReport {
        mean_m: mean,
        median_m: median,
        p95_m: p95,
        max_m: max,
        compared: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{LocationRecord, Timestamp};

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn line_dataset() -> Dataset {
        let records: Vec<LocationRecord> = (0..20)
            .map(|i| rec(1, i * 60, 45.0, 4.0 + 0.001 * i as f64))
            .collect();
        Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)])
    }

    #[test]
    fn identical_datasets_have_zero_distortion() {
        let ds = line_dataset();
        let report = spatial_distortion(&ds, &ds).unwrap();
        // Interpolation arithmetic leaves sub-nanometre residue.
        assert!(report.mean_m < 1e-6, "mean {}", report.mean_m);
        assert!(report.max_m < 1e-6, "max {}", report.max_m);
        assert_eq!(report.compared, 20);
        assert!(report.utility_score() > 0.999_999);
    }

    #[test]
    fn constant_shift_is_measured() {
        let ds = line_dataset();
        let shifted = ds.map_trajectories(|t| {
            let records: Vec<LocationRecord> = t
                .records()
                .iter()
                .map(|r| {
                    rec(
                        r.user.0,
                        r.time.seconds(),
                        r.point.latitude() + 0.001, // ~111 m north
                        r.point.longitude(),
                    )
                })
                .collect();
            Trajectory::new(t.user(), records)
        });
        let report = spatial_distortion(&ds, &shifted).unwrap();
        assert!(
            (report.mean_m - 111.3).abs() < 1.0,
            "mean {}",
            report.mean_m
        );
        assert!((report.median_m - 111.3).abs() < 1.0);
        assert!(report.utility_score() < 0.75);
    }

    #[test]
    fn resampled_data_compares_via_interpolation() {
        // Protected variant keeps every 4th record plus the endpoint;
        // interpolation along the same straight line must yield ~zero
        // distortion.
        let ds = line_dataset();
        let thinned = ds.map_trajectories(|t| {
            let mut records: Vec<LocationRecord> =
                t.records().iter().step_by(4).copied().collect();
            let last = *t.records().last().unwrap();
            if records.last() != Some(&last) {
                records.push(last);
            }
            Trajectory::new(t.user(), records)
        });
        let report = spatial_distortion(&ds, &thinned).unwrap();
        assert!(report.mean_m < 1.0, "mean {}", report.mean_m);
        assert_eq!(report.compared, 20);
    }

    #[test]
    fn empty_comparison_errors() {
        let ds = line_dataset();
        assert!(matches!(
            spatial_distortion(&ds, &Dataset::new()),
            Err(PrivapiError::EmptyDataset)
        ));
        assert!(matches!(
            spatial_distortion(&Dataset::new(), &ds),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn percentiles_are_ordered() {
        let ds = line_dataset();
        // Shift only the last record far away.
        let protected = ds.map_trajectories(|t| {
            let mut records: Vec<LocationRecord> = t.records().to_vec();
            let last = records.last_mut().unwrap();
            *last = rec(1, last.time.seconds(), 45.1, 4.019);
            Trajectory::new(t.user(), records)
        });
        let report = spatial_distortion(&ds, &protected).unwrap();
        assert!(report.median_m <= report.p95_m);
        assert!(report.p95_m <= report.max_m);
        assert!(report.max_m > 1_000.0);
    }
}
