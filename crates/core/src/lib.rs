//! # PRIVAPI — utility-driven privacy-preserving publication of mobility data
//!
//! This crate is the paper's primary contribution: "a generic middleware
//! that can be integrated with any crowd-sensing platform […] it can use an
//! optimal anonymization strategy on mobility data while still offering a
//! satisfactory level of utility" (paper, §1, §3).
//!
//! The crate provides:
//!
//! * [`strategy::AnonymizationStrategy`] — the pluggable mechanism trait,
//!   with implementations in [`strategies`]:
//!   * [`strategies::SpeedSmoothing`] — the paper's novel strategy: resample
//!     each trajectory at constant speed, hiding every place the user
//!     stopped;
//!   * [`strategies::GeoIndistinguishability`] — the differentially private
//!     planar-Laplace baseline the paper's 60 % re-identification claim was
//!     measured against;
//!   * [`strategies::SpatialCloaking`], [`strategies::GaussianPerturbation`],
//!     [`strategies::TemporalDownsampling`], [`strategies::Identity`] —
//!     classic baselines used by the utility-driven selector;
//! * [`attack`] — POI extraction and re-identification attacks used to
//!   *measure* privacy;
//! * [`metrics`] — spatial-distortion, crowded-places and traffic-forecast
//!   utility metrics;
//! * [`selection`] — the utility-driven optimal strategy search under a
//!   privacy floor;
//! * [`pool`] — the shared registry of candidate-strategy pools;
//! * [`engine`] — the parallel, cache-aware evaluation engine behind the
//!   search;
//! * [`pipeline`] — the [`pipeline::PrivApi`] middleware facade a platform
//!   (e.g. APISENSE) plugs in before releasing datasets;
//! * [`federated`] — the device-local release contract: serializable
//!   [`federated::StrategySpec`]/[`federated::StrategyConfig`] broadcast
//!   frames, deterministic calibration-cohort selection, and the
//!   server-side [`federated::FederatedSession`] that re-assembles
//!   per-device protected uploads byte-identically to a central release;
//! * [`streaming`] — day-windowed incremental publication
//!   ([`streaming::StreamingPublisher`]): the original-side
//!   [`streaming::SessionCache`] reuses per-user attack shards and the
//!   reference index across releases, and the per-candidate
//!   [`streaming::StrategySessionCache`] extends the same reuse to every
//!   pooled strategy's protected data and self-attack shards, per the
//!   [`strategy::UserLocality`] contract each strategy declares.
//!
//! # Example
//!
//! ```
//! use mobility::gen::{CityModel, PopulationConfig};
//! use privapi::prelude::*;
//!
//! let city = CityModel::builder().seed(3).build();
//! let data = city.generate_with_truth(&PopulationConfig {
//!     users: 4,
//!     days: 2,
//!     sampling_interval_s: 120,
//!     ..PopulationConfig::default()
//! });
//!
//! // The paper's novel mechanism: constant-speed resampling.
//! let strategy = SpeedSmoothing::new(geo::Meters::new(100.0)).unwrap();
//! let protected = strategy.anonymize(&data.dataset, 42);
//!
//! // Attack the protected dataset and measure what leaked.
//! let attack = PoiAttack::default();
//! let report = attack.evaluate(&protected, &data.truth);
//! assert!(report.recall <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod attack;
pub mod engine;
pub mod federated;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod selection;
pub mod strategies;
pub mod strategy;
pub mod streaming;

pub use error::PrivapiError;

/// Convenient single-import surface for the common PRIVAPI workflow.
pub mod prelude {
    pub use crate::attack::{
        BackgroundProfiles, PoiAttack, PoiAttackConfig, PoiAttackReport, ReferenceIndex,
        ReidentificationAttack, UserAttackShard,
    };
    pub use crate::engine::{
        choose_winner, EvalContext, EvaluationEngine, ExecutionMode, WinnerRelease,
    };
    pub use crate::federated::{
        calibration_cohort, central_release, FederatedSession, FederationDelta,
        FederationPolicy, StrategyConfig, StrategySpec,
    };
    pub use crate::metrics::{
        crowded_places_utility, spatial_distortion, traffic_utility, CrowdedPlacesReport,
        DistortionReport, TrafficReport,
    };
    pub use crate::pipeline::{PrivApi, PrivApiConfig, PublishedDataset};
    pub use crate::pool::StrategyPool;
    pub use crate::selection::{Objective, SelectionReport, StrategySelector};
    pub use crate::strategies::{
        GaussianPerturbation, GeoIndistinguishability, Identity, SpatialCloaking,
        SpeedSmoothing, TemporalDownsampling,
    };
    pub use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
    pub use crate::streaming::{
        CandidateDelta, IngestDelta, PopulationCache, PublishedWindow, SessionCache,
        StrategyCacheDelta, StrategySessionCache, StreamingPublisher, WindowDelta,
        WindowUpdate,
    };
}
