//! The identity (no protection) control strategy.

use crate::federated::StrategySpec;
use crate::strategies::map_user_trajectories;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use mobility::{Dataset, Trajectory, UserId};
use std::sync::Arc;

/// Publishes the dataset unchanged. Used as the utility upper bound and the
/// privacy lower bound in every experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Identity {
    /// Creates the identity strategy.
    pub fn new() -> Self {
        Self
    }
}

impl AnonymizationStrategy for Identity {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "identity".into(),
            params: String::new(),
        }
    }

    fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
        dataset.clone()
    }

    /// The no-op trivially depends on nothing but the user's own records.
    fn locality(&self) -> UserLocality {
        UserLocality::UserLocal
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::Identity)
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        _seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        map_user_trajectories(dataset, user, Trajectory::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{LocationRecord, Timestamp, UserId};

    #[test]
    fn output_equals_input() {
        let ds = Dataset::from_records(vec![LocationRecord::new(
            UserId(1),
            Timestamp::new(0),
            GeoPoint::new(45.0, 4.0).unwrap(),
        )]);
        let out = Identity::new().anonymize(&ds, 123);
        assert_eq!(out, ds);
    }

    #[test]
    fn info_is_bare() {
        assert_eq!(Identity::new().info().to_string(), "identity");
    }
}
