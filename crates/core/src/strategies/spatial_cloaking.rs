//! Spatial cloaking: grid generalization.
//!
//! Every fix is snapped to the centre of a square grid cell, so all points
//! within a cell become indistinguishable. A classic generalization baseline
//! for the utility-driven selector.

use crate::error::PrivapiError;
use crate::strategies::map_user_trajectories;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::{BoundingBox, Meters, UniformGrid};
use mobility::{Dataset, LocationRecord, Trajectory, UserId};
use std::sync::Arc;

/// Grid-cloaking strategy with a configurable cell size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialCloaking {
    cell_size: Meters,
}

impl SpatialCloaking {
    /// Creates the strategy with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for non-positive sizes.
    pub fn new(cell_size: Meters) -> Result<Self, PrivapiError> {
        if cell_size.get() <= 0.0 || !cell_size.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "cell_size",
                value: format!("{}", cell_size.get()),
            });
        }
        Ok(Self { cell_size })
    }

    /// The cloaking cell side.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The dataset-wide tessellation every trajectory is snapped to, or
    /// `None` when the dataset is empty — in which case cloaking is a
    /// no-op. The grid is anchored on the quantized padded box
    /// ([`BoundingBox::grid_anchor`]) so that, in a streaming session,
    /// bounding-box drift inside the 0.05° lattice leaves the tessellation
    /// (and every cached per-user cloaking) untouched; the quantized span
    /// is never degenerate, so single-point datasets need no special case.
    fn cloaking_grid(&self, dataset: &Dataset) -> Option<UniformGrid> {
        let bbox: BoundingBox = dataset.bounding_box()?.grid_anchor();
        UniformGrid::new(bbox, self.cell_size).ok()
    }

    /// Snaps one trajectory to the shared grid — the unit both the full
    /// and the per-user anonymization paths are built from.
    fn cloak_trajectory(&self, t: &Trajectory, grid: &UniformGrid) -> Trajectory {
        let records: Vec<LocationRecord> = t
            .records()
            .iter()
            .map(|r| {
                let cell = grid.cell_of(&r.point);
                LocationRecord::new(r.user, r.time, grid.cell_center(&cell))
            })
            .collect();
        Trajectory::new(t.user(), records)
    }
}

impl AnonymizationStrategy for SpatialCloaking {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "spatial-cloaking".into(),
            params: format!("cell={:.0}m", self.cell_size.get()),
        }
    }

    fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
        // Global knowledge: the grid is anchored on the dataset's own
        // bounding box so the whole release shares one tessellation.
        let Some(grid) = self.cloaking_grid(dataset) else {
            return dataset.clone();
        };
        dataset.map_trajectories(|t| self.cloak_trajectory(t, &grid))
    }

    /// Snapping is per record, but the grid it snaps to is anchored on the
    /// **dataset** bounding box: user `u`'s output depends on `u`'s records
    /// plus that box. A window that widens the box shifts every cell
    /// boundary and invalidates every user's cached output.
    fn locality(&self) -> UserLocality {
        UserLocality::GridAnchored
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        _seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        let grid = self.cloaking_grid(dataset);
        map_user_trajectories(dataset, user, |t| match &grid {
            Some(grid) => self.cloak_trajectory(t, grid),
            None => t.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{Timestamp, UserId};

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn sample() -> Dataset {
        Dataset::from_records(vec![
            rec(1, 0, 45.7000, 4.8000),
            rec(1, 60, 45.7001, 4.8001), // same cell as above at 250 m
            rec(1, 120, 45.7300, 4.8300),
            rec(2, 0, 45.7500, 4.8500),
        ])
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(SpatialCloaking::new(Meters::new(0.0)).is_err());
        assert!(SpatialCloaking::new(Meters::new(-2.0)).is_err());
        assert!(SpatialCloaking::new(Meters::new(250.0)).is_ok());
    }

    #[test]
    fn nearby_points_collapse_to_same_position() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let out = mech.anonymize(&sample(), 0);
        let recs = out.records_of(UserId(1));
        assert_eq!(recs[0].point, recs[1].point, "same cell must cloak equal");
        assert_ne!(recs[0].point, recs[2].point, "distant points stay apart");
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let ds = sample();
        let out = mech.anonymize(&ds, 0);
        let max_displacement = 250.0 * std::f64::consts::SQRT_2 / 2.0 + 1.0;
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            let d = a.point.haversine_distance(&b.point).get();
            assert!(d <= max_displacement, "displaced {d} m");
        }
    }

    #[test]
    fn idempotent() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let once = mech.anonymize(&sample(), 0);
        let twice = mech.anonymize(&once, 0);
        // Cloaked points are cell centres; re-cloaking maps them to
        // (approximately) themselves. Bounding box shrinks, so compare by
        // displacement rather than equality.
        for (a, b) in once.iter_records().zip(twice.iter_records()) {
            assert!(a.point.haversine_distance(&b.point).get() < 250.0);
        }
    }

    #[test]
    fn timestamps_and_counts_unchanged() {
        let mech = SpatialCloaking::new(Meters::new(100.0)).unwrap();
        let ds = sample();
        let out = mech.anonymize(&ds, 0);
        assert_eq!(out.record_count(), ds.record_count());
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn empty_and_single_point_datasets() {
        let mech = SpatialCloaking::new(Meters::new(100.0)).unwrap();
        assert_eq!(mech.anonymize(&Dataset::new(), 0).record_count(), 0);
        let single = Dataset::from_records(vec![rec(1, 0, 45.0, 4.0)]);
        let out = mech.anonymize(&single, 0);
        assert_eq!(out.record_count(), 1);
    }

    #[test]
    fn info_mentions_cell() {
        let mech = SpatialCloaking::new(Meters::new(500.0)).unwrap();
        assert_eq!(mech.info().to_string(), "spatial-cloaking(cell=500m)");
        assert_eq!(mech.cell_size(), Meters::new(500.0));
    }
}
