//! Spatial cloaking: grid generalization.
//!
//! Every fix is snapped to the centre of a square grid cell, so all points
//! within a cell become indistinguishable. A classic generalization baseline
//! for the utility-driven selector.

use crate::error::PrivapiError;
use crate::federated::StrategySpec;
use crate::strategies::map_user_trajectories;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::{BoundingBox, Meters, UniformGrid};
use mobility::{Dataset, LocationRecord, Trajectory, UserId};
use std::sync::Arc;

/// Grid-cloaking strategy with a configurable cell size.
///
/// By default the tessellation is anchored on the *dataset's* quantized
/// bounding box — fine centrally, where everyone sees the same dataset.
/// A federated deployment instead pins the broadcast anchor with
/// [`SpatialCloaking::with_anchor`], so a device cloaking against its own
/// (drifted, partial) local data still lands on exactly the central grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialCloaking {
    cell_size: Meters,
    anchor: Option<BoundingBox>,
}

impl SpatialCloaking {
    /// Creates the strategy with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for non-positive sizes.
    pub fn new(cell_size: Meters) -> Result<Self, PrivapiError> {
        if cell_size.get() <= 0.0 || !cell_size.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "cell_size",
                value: format!("{}", cell_size.get()),
            });
        }
        Ok(Self {
            cell_size,
            anchor: None,
        })
    }

    /// Pins the tessellation to an explicit anchor box instead of deriving
    /// it from each dataset's own bounding box. The box is used verbatim —
    /// every party must pin the *same* bytes, so compute the canonical
    /// form once (e.g. [`BoundingBox::grid_anchor`] of the sensing region,
    /// which is what a federated gateway broadcasts) and distribute that.
    /// Re-normalizing here would shear the grid: `grid_anchor` pads before
    /// quantizing and is therefore not idempotent.
    ///
    /// With a pinned anchor the output no longer reads the dataset
    /// bounding box at all, so [`SpatialCloaking::locality`] strengthens
    /// to [`UserLocality::UserLocal`].
    pub fn with_anchor(mut self, anchor: BoundingBox) -> Self {
        self.anchor = Some(anchor);
        self
    }

    /// The pinned anchor, when cloaking was fixed to a broadcast grid.
    pub fn anchor(&self) -> Option<&BoundingBox> {
        self.anchor.as_ref()
    }

    /// The cloaking cell side.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The dataset-wide tessellation every trajectory is snapped to, or
    /// `None` when the dataset is empty — in which case cloaking is a
    /// no-op. The grid is anchored on the quantized padded box
    /// ([`BoundingBox::grid_anchor`]) so that, in a streaming session,
    /// bounding-box drift inside the 0.05° lattice leaves the tessellation
    /// (and every cached per-user cloaking) untouched; the quantized span
    /// is never degenerate, so single-point datasets need no special case.
    /// A pinned anchor ([`SpatialCloaking::with_anchor`]) takes precedence
    /// and never consults the dataset.
    fn cloaking_grid(&self, dataset: &Dataset) -> Option<UniformGrid> {
        let bbox: BoundingBox = match self.anchor {
            Some(anchor) => anchor,
            None => dataset.bounding_box()?.grid_anchor(),
        };
        UniformGrid::new(bbox, self.cell_size).ok()
    }

    /// Snaps one trajectory to the shared grid — the unit both the full
    /// and the per-user anonymization paths are built from.
    fn cloak_trajectory(&self, t: &Trajectory, grid: &UniformGrid) -> Trajectory {
        let records: Vec<LocationRecord> = t
            .records()
            .iter()
            .map(|r| {
                let cell = grid.cell_of(&r.point);
                LocationRecord::new(r.user, r.time, grid.cell_center(&cell))
            })
            .collect();
        Trajectory::new(t.user(), records)
    }
}

impl AnonymizationStrategy for SpatialCloaking {
    fn info(&self) -> StrategyInfo {
        // Anchored and free-floating instances cloak to different grids,
        // so the anchor is part of the identity (cache/donor fingerprints
        // must not conflate them).
        let params = match &self.anchor {
            Some(a) => format!(
                "cell={:.0}m,anchor=({:.2},{:.2})",
                self.cell_size.get(),
                a.min().latitude(),
                a.min().longitude()
            ),
            None => format!("cell={:.0}m", self.cell_size.get()),
        };
        StrategyInfo {
            name: "spatial-cloaking".into(),
            params,
        }
    }

    fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
        // Global knowledge: the grid is anchored on the dataset's own
        // bounding box so the whole release shares one tessellation.
        let Some(grid) = self.cloaking_grid(dataset) else {
            return dataset.clone();
        };
        dataset.map_trajectories(|t| self.cloak_trajectory(t, &grid))
    }

    /// Snapping is per record, but the grid it snaps to is anchored on the
    /// **dataset** bounding box: user `u`'s output depends on `u`'s records
    /// plus that box. A window that widens the box shifts every cell
    /// boundary and invalidates every user's cached output. A *pinned*
    /// anchor removes the dataset dependence entirely, strengthening the
    /// contract to [`UserLocality::UserLocal`].
    fn locality(&self) -> UserLocality {
        match self.anchor {
            Some(_) => UserLocality::UserLocal,
            None => UserLocality::GridAnchored,
        }
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::SpatialCloaking {
            cell_m: self.cell_size.get(),
        })
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        _seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        let grid = self.cloaking_grid(dataset);
        map_user_trajectories(dataset, user, |t| match &grid {
            Some(grid) => self.cloak_trajectory(t, grid),
            None => t.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{Timestamp, UserId};

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn sample() -> Dataset {
        Dataset::from_records(vec![
            rec(1, 0, 45.7000, 4.8000),
            rec(1, 60, 45.7001, 4.8001), // same cell as above at 250 m
            rec(1, 120, 45.7300, 4.8300),
            rec(2, 0, 45.7500, 4.8500),
        ])
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(SpatialCloaking::new(Meters::new(0.0)).is_err());
        assert!(SpatialCloaking::new(Meters::new(-2.0)).is_err());
        assert!(SpatialCloaking::new(Meters::new(250.0)).is_ok());
    }

    #[test]
    fn nearby_points_collapse_to_same_position() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let out = mech.anonymize(&sample(), 0);
        let recs = out.records_of(UserId(1));
        assert_eq!(recs[0].point, recs[1].point, "same cell must cloak equal");
        assert_ne!(recs[0].point, recs[2].point, "distant points stay apart");
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let ds = sample();
        let out = mech.anonymize(&ds, 0);
        let max_displacement = 250.0 * std::f64::consts::SQRT_2 / 2.0 + 1.0;
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            let d = a.point.haversine_distance(&b.point).get();
            assert!(d <= max_displacement, "displaced {d} m");
        }
    }

    #[test]
    fn idempotent() {
        let mech = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let once = mech.anonymize(&sample(), 0);
        let twice = mech.anonymize(&once, 0);
        // Cloaked points are cell centres; re-cloaking maps them to
        // (approximately) themselves. Bounding box shrinks, so compare by
        // displacement rather than equality.
        for (a, b) in once.iter_records().zip(twice.iter_records()) {
            assert!(a.point.haversine_distance(&b.point).get() < 250.0);
        }
    }

    #[test]
    fn timestamps_and_counts_unchanged() {
        let mech = SpatialCloaking::new(Meters::new(100.0)).unwrap();
        let ds = sample();
        let out = mech.anonymize(&ds, 0);
        assert_eq!(out.record_count(), ds.record_count());
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn empty_and_single_point_datasets() {
        let mech = SpatialCloaking::new(Meters::new(100.0)).unwrap();
        assert_eq!(mech.anonymize(&Dataset::new(), 0).record_count(), 0);
        let single = Dataset::from_records(vec![rec(1, 0, 45.0, 4.0)]);
        let out = mech.anonymize(&single, 0);
        assert_eq!(out.record_count(), 1);
    }

    #[test]
    fn info_mentions_cell() {
        let mech = SpatialCloaking::new(Meters::new(500.0)).unwrap();
        assert_eq!(mech.info().to_string(), "spatial-cloaking(cell=500m)");
        assert_eq!(mech.cell_size(), Meters::new(500.0));
    }

    #[test]
    fn anchored_instances_have_a_distinct_identity_and_stronger_locality() {
        let free = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let anchored = free.with_anchor(sample().bounding_box().unwrap());
        assert_eq!(free.locality(), UserLocality::GridAnchored);
        assert_eq!(anchored.locality(), UserLocality::UserLocal);
        assert_ne!(free.info(), anchored.info(), "anchor is part of identity");
        assert!(anchored.info().params.contains("anchor="));
        assert!(anchored.anchor().is_some());
    }

    /// Satellite regression for the federated fix: a device cloaking its
    /// own partial data — whose *local* bounding box has drifted well away
    /// from the population's — still lands byte-identically on the central
    /// grid, because the anchor is pinned from the broadcast config
    /// instead of derived from whatever dataset the device happens to see.
    #[test]
    fn pinned_anchor_matches_central_under_drifted_local_bbox() {
        let population = sample();
        let central_anchor = population.bounding_box().unwrap().grid_anchor();
        let central = SpatialCloaking::new(Meters::new(250.0))
            .unwrap()
            .anonymize(&population, 0);

        let device = SpatialCloaking::new(Meters::new(250.0))
            .unwrap()
            .with_anchor(central_anchor);
        for &user in &population.users() {
            // The device-local dataset: only this user's records, so its
            // bounding box is a strict (drifted) sub-box of the
            // population's.
            let local = Dataset::from_trajectories(
                population
                    .trajectories_of(user)
                    .into_iter()
                    .cloned()
                    .collect(),
            );
            assert_ne!(
                local.bounding_box().unwrap(),
                population.bounding_box().unwrap(),
                "the premise: local bbox must actually drift"
            );
            let local_out = device.anonymize_user(&local, user, 0);
            let central_of_user = central.shared_of(user);
            assert_eq!(local_out.len(), central_of_user.len());
            for (got, want) in local_out.iter().zip(&central_of_user) {
                assert_eq!(got.records(), want.records(), "user {user:?} must match");
            }
            // Negative control: deriving the grid from the drifted local
            // bbox (no pinned anchor) shears the tessellation for at
            // least one user.
        }
        let unpinned = SpatialCloaking::new(Meters::new(250.0)).unwrap();
        let mismatch = population.users().iter().any(|&user| {
            let local = Dataset::from_trajectories(
                population
                    .trajectories_of(user)
                    .into_iter()
                    .cloned()
                    .collect(),
            );
            let got = unpinned.anonymize_user(&local, user, 0);
            got.iter()
                .zip(&central.shared_of(user))
                .any(|(a, b)| a.records() != b.records())
        });
        assert!(
            mismatch,
            "negative control: local-bbox grids must actually drift for some user"
        );
    }
}
