//! Independent Gaussian perturbation — the naive noise baseline.

use crate::error::PrivapiError;
use crate::federated::StrategySpec;
use crate::strategies::{map_user_trajectories, perturb_trajectory};
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::{GeoPoint, Meters};
use mobility::{Dataset, Trajectory, UserId};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Adds iid Gaussian noise of standard deviation `sigma` to every fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPerturbation {
    sigma: Meters,
}

impl GaussianPerturbation {
    /// Creates the strategy with per-axis noise deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for negative or non-finite
    /// `sigma`. A zero `sigma` is allowed (degenerates to identity), which
    /// the selector uses as a grid anchor.
    pub fn new(sigma: Meters) -> Result<Self, PrivapiError> {
        if sigma.get() < 0.0 || !sigma.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "sigma",
                value: format!("{}", sigma.get()),
            });
        }
        Ok(Self { sigma })
    }

    /// The per-axis noise standard deviation.
    pub fn sigma(&self) -> Meters {
        self.sigma
    }

    fn perturb(&self, p: &GeoPoint, rng: &mut StdRng) -> GeoPoint {
        if self.sigma.get() == 0.0 {
            return *p;
        }
        let gauss = |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let de = gauss(rng) * self.sigma.get();
        let dn = gauss(rng) * self.sigma.get();
        let cos_lat = p.latitude().to_radians().cos().max(0.01);
        GeoPoint::clamped(
            p.latitude() + dn / 111_320.0,
            p.longitude() + de / (111_320.0 * cos_lat),
        )
    }
}

impl AnonymizationStrategy for GaussianPerturbation {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "gaussian".into(),
            params: format!("sigma={:.0}m", self.sigma.get()),
        }
    }

    fn anonymize(&self, dataset: &Dataset, seed: u64) -> Dataset {
        dataset.map_trajectories(|t| perturb_trajectory(t, seed, |p, rng| self.perturb(p, rng)))
    }

    /// Noise is drawn from a per-trajectory RNG keyed by `(seed, user,
    /// start time)`, so user `u`'s output is a function of `u`'s own
    /// records alone.
    fn locality(&self) -> UserLocality {
        UserLocality::UserLocal
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::GaussianPerturbation {
            sigma_m: self.sigma().get(),
        })
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        map_user_trajectories(dataset, user, |t| {
            perturb_trajectory(t, seed, |p, rng| self.perturb(p, rng))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{LocationRecord, Timestamp, UserId};
    use rand::SeedableRng;

    #[test]
    fn rejects_negative_sigma() {
        assert!(GaussianPerturbation::new(Meters::new(-1.0)).is_err());
        assert!(GaussianPerturbation::new(Meters::new(f64::NAN)).is_err());
        assert!(GaussianPerturbation::new(Meters::new(0.0)).is_ok());
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mech = GaussianPerturbation::new(Meters::new(0.0)).unwrap();
        let origin = GeoPoint::new(45.0, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(mech.perturb(&origin, &mut rng), origin);
    }

    #[test]
    fn noise_scale_matches_sigma() {
        let mech = GaussianPerturbation::new(Meters::new(50.0)).unwrap();
        let origin = GeoPoint::new(45.0, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4_000;
        // E[|displacement|] for 2-D isotropic Gaussian = sigma * sqrt(pi/2).
        let mean: f64 = (0..n)
            .map(|_| {
                origin
                    .haversine_distance(&mech.perturb(&origin, &mut rng))
                    .get()
            })
            .sum::<f64>()
            / n as f64;
        let expected = 50.0 * (std::f64::consts::PI / 2.0).sqrt();
        assert!(
            (mean - expected).abs() / expected < 0.08,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn anonymize_preserves_times_and_determinism() {
        let records: Vec<LocationRecord> = (0..20)
            .map(|i| {
                LocationRecord::new(
                    UserId(1),
                    Timestamp::new(i * 30),
                    GeoPoint::new(45.0, 4.0).unwrap(),
                )
            })
            .collect();
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let mech = GaussianPerturbation::new(Meters::new(25.0)).unwrap();
        let a = mech.anonymize(&ds, 3);
        let b = mech.anonymize(&ds, 3);
        assert_eq!(a, b);
        for (x, y) in ds.iter_records().zip(a.iter_records()) {
            assert_eq!(x.time, y.time);
        }
    }

    #[test]
    fn info_string() {
        let mech = GaussianPerturbation::new(Meters::new(75.0)).unwrap();
        assert_eq!(mech.info().to_string(), "gaussian(sigma=75m)");
        assert_eq!(mech.sigma(), Meters::new(75.0));
    }
}
