//! Temporal downsampling: publish at most one fix per time window.

use crate::error::PrivapiError;
use crate::federated::StrategySpec;
use crate::strategies::map_user_trajectories;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use mobility::{Dataset, LocationRecord, Trajectory, UserId};
use std::sync::Arc;

/// Keeps at most one record per `window_s`-second window per trajectory.
///
/// Reduces the attacker's dwell evidence while thinning the dataset; a
/// bandwidth-saving baseline commonly applied by crowd-sensing clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalDownsampling {
    window_s: i64,
}

impl TemporalDownsampling {
    /// Creates the strategy with the given minimum spacing between records.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for non-positive windows.
    pub fn new(window_s: i64) -> Result<Self, PrivapiError> {
        if window_s <= 0 {
            return Err(PrivapiError::InvalidParameter {
                name: "window_s",
                value: format!("{window_s}"),
            });
        }
        Ok(Self { window_s })
    }

    /// The minimum spacing between published records, in seconds.
    pub fn window_s(&self) -> i64 {
        self.window_s
    }

    /// Thins one trajectory — the unit both the full and the per-user
    /// anonymization paths are built from.
    fn thin_trajectory(&self, t: &Trajectory) -> Trajectory {
        let mut kept: Vec<LocationRecord> = Vec::new();
        for r in t.records() {
            match kept.last() {
                Some(last) if r.time - last.time < self.window_s => {}
                _ => kept.push(*r),
            }
        }
        Trajectory::new(t.user(), kept)
    }
}

impl AnonymizationStrategy for TemporalDownsampling {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "temporal-downsampling".into(),
            params: format!("window={}s", self.window_s),
        }
    }

    fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
        dataset.map_trajectories(|t| self.thin_trajectory(t))
    }

    /// Thinning is deterministic per trajectory: user `u`'s output depends
    /// only on `u`'s own records.
    fn locality(&self) -> UserLocality {
        UserLocality::UserLocal
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::TemporalDownsampling {
            window_s: self.window_s(),
        })
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        _seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        map_user_trajectories(dataset, user, |t| self.thin_trajectory(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::{Timestamp, UserId};

    fn traj(times: &[i64]) -> Trajectory {
        Trajectory::new(
            UserId(1),
            times
                .iter()
                .map(|&t| {
                    LocationRecord::new(
                        UserId(1),
                        Timestamp::new(t),
                        GeoPoint::new(45.0, 4.0).unwrap(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn rejects_bad_window() {
        assert!(TemporalDownsampling::new(0).is_err());
        assert!(TemporalDownsampling::new(-10).is_err());
        assert!(TemporalDownsampling::new(300).is_ok());
    }

    #[test]
    fn keeps_first_and_spaced_records() {
        let mech = TemporalDownsampling::new(300).unwrap();
        let ds = Dataset::from_trajectories(vec![traj(&[0, 60, 120, 300, 400, 900])]);
        let out = mech.anonymize(&ds, 0);
        let times: Vec<i64> = out.iter_records().map(|r| r.time.seconds()).collect();
        assert_eq!(times, vec![0, 300, 900]);
    }

    #[test]
    fn window_larger_than_span_keeps_one() {
        let mech = TemporalDownsampling::new(10_000).unwrap();
        let ds = Dataset::from_trajectories(vec![traj(&[0, 60, 120])]);
        assert_eq!(mech.anonymize(&ds, 0).record_count(), 1);
    }

    #[test]
    fn already_sparse_data_untouched() {
        let mech = TemporalDownsampling::new(60).unwrap();
        let ds = Dataset::from_trajectories(vec![traj(&[0, 60, 120, 180])]);
        assert_eq!(mech.anonymize(&ds, 0).record_count(), 4);
    }

    #[test]
    fn empty_dataset() {
        let mech = TemporalDownsampling::new(60).unwrap();
        assert_eq!(mech.anonymize(&Dataset::new(), 0).record_count(), 0);
    }

    #[test]
    fn info_string() {
        let mech = TemporalDownsampling::new(120).unwrap();
        assert_eq!(
            mech.info().to_string(),
            "temporal-downsampling(window=120s)"
        );
        assert_eq!(mech.window_s(), 120);
    }
}
