//! Geo-indistinguishability: the planar Laplace mechanism.
//!
//! This is the "recent state-of-the-art protection mechanism" of the paper's
//! companion study (ref [3], *Differentially Private Location Privacy in
//! Practice*), i.e. the baseline against which the ≥ 60 % POI
//! re-identification figure was measured. Implementation follows Andrés et
//! al., "Geo-indistinguishability: differential privacy for location-based
//! systems" (CCS 2013): each fix is displaced by polar Laplace noise with
//! privacy parameter `epsilon` (in 1/metres); the radius is sampled by
//! inverting the Gamma(2, ε) CDF via the Lambert W₋₁ function.

use crate::error::PrivapiError;
use crate::federated::StrategySpec;
use crate::strategies::{map_user_trajectories, perturb_trajectory};
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::{Degrees, GeoPoint, Meters};
use mobility::{Dataset, Trajectory, UserId};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// The planar Laplace (geo-indistinguishability) mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoIndistinguishability {
    epsilon: f64,
}

impl GeoIndistinguishability {
    /// Creates the mechanism with privacy parameter `epsilon` (1/metres).
    ///
    /// The expected displacement is `2 / epsilon` metres: `epsilon = 0.01`
    /// yields ~200 m average noise. Andrés et al. suggest `epsilon = ln(4)/r`
    /// to protect a radius of `r` metres.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for non-positive or
    /// non-finite `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self, PrivapiError> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "epsilon",
                value: format!("{epsilon}"),
            });
        }
        Ok(Self { epsilon })
    }

    /// Convenience constructor: protects a radius of `r` metres at privacy
    /// level `l = ln(4)` as recommended by Andrés et al.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for non-positive radius.
    pub fn for_radius(r: Meters) -> Result<Self, PrivapiError> {
        if r.get() <= 0.0 || !r.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "radius",
                value: format!("{}", r.get()),
            });
        }
        Self::new(4.0f64.ln() / r.get())
    }

    /// The privacy parameter, in 1/metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Expected displacement magnitude, in metres.
    pub fn expected_noise(&self) -> Meters {
        Meters::new(2.0 / self.epsilon)
    }

    /// Samples a noisy version of one point.
    pub fn perturb(&self, point: &GeoPoint, rng: &mut StdRng) -> GeoPoint {
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let p: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
        // Inverse CDF of the planar Laplace radius (Gamma(2, ε)):
        // r = -(1/ε) * (W₋₁((p-1)/e) + 1)
        let w = lambert_w_minus1((p - 1.0) / std::f64::consts::E);
        let r = -(1.0 / self.epsilon) * (w + 1.0);
        point.destination(Degrees::new(theta.to_degrees()), Meters::new(r))
    }
}

/// The W₋₁ branch of the Lambert W function, for `x ∈ [-1/e, 0)`.
///
/// Newton iteration on `w·eʷ = x` from the standard asymptotic initial guess
/// `ln(-x) - ln(-ln(-x))`; converges in a handful of steps everywhere in the
/// domain.
fn lambert_w_minus1(x: f64) -> f64 {
    debug_assert!(
        (-1.0 / std::f64::consts::E..0.0).contains(&x),
        "lambert_w_minus1 domain violation: {x}"
    );
    // At the branch point the value is exactly -1.
    if x <= -1.0 / std::f64::consts::E + 1e-300 {
        return -1.0;
    }
    let l = (-x).ln(); // ln(-x) < 0
    let mut w = l - (-l).ln();
    for _ in 0..100 {
        let ew = w.exp();
        let f = w * ew - x;
        let fprime = ew * (w + 1.0);
        if fprime.abs() < 1e-300 {
            break;
        }
        let step = f / fprime;
        w -= step;
        if step.abs() < 1e-13 * w.abs().max(1.0) {
            break;
        }
    }
    w
}

impl AnonymizationStrategy for GeoIndistinguishability {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "geo-indistinguishability".into(),
            params: format!("epsilon={:.4}/m", self.epsilon),
        }
    }

    fn anonymize(&self, dataset: &Dataset, seed: u64) -> Dataset {
        dataset.map_trajectories(|t| perturb_trajectory(t, seed, |p, rng| self.perturb(p, rng)))
    }

    /// The planar Laplace noise is drawn from a per-trajectory RNG keyed
    /// by `(seed, user, start time)` — **not** from one dataset-wide
    /// stream — so user `u`'s output is a function of `u`'s own records
    /// alone. An implementation sharing a single RNG across users would
    /// have to declare [`UserLocality::NonLocal`] instead.
    fn locality(&self) -> UserLocality {
        UserLocality::UserLocal
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::GeoIndistinguishability {
            epsilon: self.epsilon(),
        })
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        map_user_trajectories(dataset, user, |t| {
            perturb_trajectory(t, seed, |p, rng| self.perturb(p, rng))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{LocationRecord, Timestamp, UserId};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(GeoIndistinguishability::new(0.0).is_err());
        assert!(GeoIndistinguishability::new(-1.0).is_err());
        assert!(GeoIndistinguishability::new(f64::INFINITY).is_err());
        assert!(GeoIndistinguishability::new(0.01).is_ok());
        assert!(GeoIndistinguishability::for_radius(Meters::new(-5.0)).is_err());
    }

    #[test]
    fn lambert_w_satisfies_definition() {
        for &x in &[-0.3, -0.2, -0.1, -0.05, -0.01, -1e-4, -1e-8] {
            let w = lambert_w_minus1(x);
            assert!(w <= -1.0, "W₋₁({x}) = {w} must be ≤ -1");
            let back = w * w.exp();
            assert!(
                (back - x).abs() < 1e-10 * x.abs().max(1e-12),
                "w e^w = {back}, expected {x}"
            );
        }
        // Branch point.
        assert!((lambert_w_minus1(-1.0 / std::f64::consts::E) - (-1.0)).abs() < 1e-6);
    }

    #[test]
    fn noise_magnitude_matches_theory() {
        // Planar Laplace radius ~ Gamma(2, ε): mean 2/ε.
        let mech = GeoIndistinguishability::new(0.01).unwrap();
        let origin = GeoPoint::new(45.0, 4.0).unwrap();
        let mut r = rng();
        let n = 4_000;
        let mean: f64 = (0..n)
            .map(|_| mech.perturb(&origin, &mut r))
            .map(|q| origin.haversine_distance(&q).get())
            .sum::<f64>()
            / n as f64;
        let expected = mech.expected_noise().get();
        assert!(
            (mean - expected).abs() / expected < 0.08,
            "mean noise {mean}, expected {expected}"
        );
    }

    #[test]
    fn noise_is_isotropic() {
        let mech = GeoIndistinguishability::new(0.01).unwrap();
        let origin = GeoPoint::new(45.0, 4.0).unwrap();
        let mut r = rng();
        let n = 4_000;
        let (mut east, mut north) = (0.0, 0.0);
        for _ in 0..n {
            let q = mech.perturb(&origin, &mut r);
            let proj = geo::LocalProjection::new(origin).project(&q);
            east += proj.x;
            north += proj.y;
        }
        // Mean displacement should be near zero relative to noise scale.
        let scale = mech.expected_noise().get();
        assert!((east / n as f64).abs() < scale * 0.1, "east bias");
        assert!((north / n as f64).abs() < scale * 0.1, "north bias");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let strong = GeoIndistinguishability::new(0.001).unwrap();
        let weak = GeoIndistinguishability::new(0.1).unwrap();
        assert!(strong.expected_noise().get() > weak.expected_noise().get());
        assert_eq!(weak.expected_noise(), Meters::new(20.0));
    }

    #[test]
    fn for_radius_uses_ln4() {
        let mech = GeoIndistinguishability::for_radius(Meters::new(200.0)).unwrap();
        assert!((mech.epsilon() - 4.0f64.ln() / 200.0).abs() < 1e-12);
    }

    #[test]
    fn anonymize_preserves_structure_and_timestamps() {
        let records: Vec<LocationRecord> = (0..50)
            .map(|i| {
                LocationRecord::new(
                    UserId(3),
                    Timestamp::new(i * 60),
                    GeoPoint::new(45.0, 4.0).unwrap(),
                )
            })
            .collect();
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(3), records)]);
        let mech = GeoIndistinguishability::new(0.01).unwrap();
        let out = mech.anonymize(&ds, 11);
        assert_eq!(out.record_count(), ds.record_count());
        assert_eq!(out.user_count(), 1);
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.user, b.user);
            // Positions must actually move (with overwhelming probability).
        }
        let moved = ds
            .iter_records()
            .zip(out.iter_records())
            .filter(|(a, b)| a.point.haversine_distance(&b.point).get() > 1.0)
            .count();
        assert!(moved > 45, "only {moved}/50 points moved");
    }

    #[test]
    fn same_seed_reproduces_different_seed_differs() {
        let records: Vec<LocationRecord> = (0..10)
            .map(|i| {
                LocationRecord::new(
                    UserId(1),
                    Timestamp::new(i * 60),
                    GeoPoint::new(45.0, 4.0).unwrap(),
                )
            })
            .collect();
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let mech = GeoIndistinguishability::new(0.01).unwrap();
        assert_eq!(mech.anonymize(&ds, 5), mech.anonymize(&ds, 5));
        assert_ne!(mech.anonymize(&ds, 5), mech.anonymize(&ds, 6));
    }

    #[test]
    fn info_formats_epsilon() {
        let mech = GeoIndistinguishability::new(0.01).unwrap();
        assert_eq!(
            mech.info().to_string(),
            "geo-indistinguishability(epsilon=0.0100/m)"
        );
    }
}
