//! Speed smoothing — the paper's novel anonymization strategy.
//!
//! "We use an algorithm that smoothes speed along a trajectory (typically
//! one day of data) to guarantee that speed is constant. This still allows
//! to analyze the trajectory of a user but prevents to find out places where
//! he stopped during his day." (paper, §3)
//!
//! The mechanism (published later by the same authors as *Promesse*,
//! Primault et al. 2015) has three steps per trajectory:
//!
//! 1. simplify the path with Douglas–Peucker at tolerance `epsilon / 2`,
//!    which removes GPS jitter — without this, hours of jitter at a stay
//!    location inflate the local path length and leak the dwell right back
//!    through the resampling;
//! 2. trim the first and last [`SpeedSmoothing::endpoint_trim`] metres of
//!    the path — each day starts and ends at home, so untrimmed endpoints
//!    pin the home location across days (published trajectories would keep
//!    re-appearing at the same spot every midnight);
//! 3. resample the remaining path at a regular spatial interval `epsilon`
//!    (points exactly `epsilon` metres apart along the polyline);
//! 4. reassign timestamps *uniformly* between the first and last fix.
//!
//! A day whose trimmed path is shorter than `epsilon` (e.g. a day spent
//! entirely at home) is published as an *empty* trajectory: there is no
//! movement to share, and any fixed point would reveal the stay.
//!
//! After this, apparent speed is constant: dwell episodes contribute no
//! extra points at their location, so stay-point and dwell-density attacks
//! find nothing, while the path shape — what crowd analyses need — is kept
//! to within `epsilon`. Choose `epsilon` at least ~4× the GPS noise level
//! so step 1 can separate jitter from real movement.

use crate::error::PrivapiError;
use crate::federated::StrategySpec;
use crate::strategies::map_user_trajectories;
use crate::strategy::{AnonymizationStrategy, StrategyInfo, UserLocality};
use geo::Meters;
use mobility::{Dataset, LocationRecord, Timestamp, Trajectory, UserId};
use std::sync::Arc;

/// The speed-smoothing (Promesse) strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSmoothing {
    epsilon: Meters,
    endpoint_trim: Meters,
}

impl SpeedSmoothing {
    /// Creates the strategy with spatial resampling interval `epsilon`.
    ///
    /// Larger `epsilon` means fewer output points (more privacy margin, less
    /// geometric fidelity). The paper's companion work uses 50–500 m. The
    /// endpoint trim defaults to `max(2 × epsilon, 400 m)`.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] when `epsilon` is not
    /// strictly positive and finite.
    pub fn new(epsilon: Meters) -> Result<Self, PrivapiError> {
        if epsilon.get() <= 0.0 || !epsilon.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "epsilon",
                value: format!("{}", epsilon.get()),
            });
        }
        Ok(Self {
            epsilon,
            endpoint_trim: Meters::new((2.0 * epsilon.get()).max(400.0)),
        })
    }

    /// Overrides the endpoint trim distance (0 disables trimming — useful
    /// for ablations, but leaks trajectory origins/destinations).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn with_endpoint_trim(mut self, trim: Meters) -> Result<Self, PrivapiError> {
        if trim.get() < 0.0 || !trim.get().is_finite() {
            return Err(PrivapiError::InvalidParameter {
                name: "endpoint_trim",
                value: format!("{}", trim.get()),
            });
        }
        self.endpoint_trim = trim;
        Ok(self)
    }

    /// The spatial resampling interval.
    pub fn epsilon(&self) -> Meters {
        self.epsilon
    }

    /// The distance removed from each end of every trajectory.
    pub fn endpoint_trim(&self) -> Meters {
        self.endpoint_trim
    }

    /// Smoothes one trajectory (exposed for tests and ablations).
    pub fn smooth_trajectory(&self, trajectory: &Trajectory) -> Trajectory {
        let user = trajectory.user();
        let records = trajectory.records();
        if records.len() < 2 {
            return trajectory.clone();
        }
        let start = records.first().expect("len >= 2").time;
        let end = records.last().expect("len >= 2").time;
        let points = trajectory.points();
        // Step 1: strip GPS jitter below the resampling scale, otherwise
        // stationary noise clouds add phantom path length at exactly the
        // places the mechanism must hide.
        let simplified = geo::polyline::douglas_peucker(&points, self.epsilon * 0.5);
        // Step 2: trim the endpoints — days begin and end at home, and a
        // published fix at the same spot every midnight pins it.
        let total_len = geo::polyline::length(&simplified);
        let trim = self.endpoint_trim.get();
        let usable = total_len.get() - 2.0 * trim;
        if usable < self.epsilon.get() {
            // Nothing safely publishable (e.g. a day spent at home).
            return Trajectory::new(user, Vec::new());
        }
        let trimmed = slice_polyline(
            &simplified,
            Meters::new(trim),
            Meters::new(total_len.get() - trim),
        );
        let resampled = match geo::polyline::resample_by_distance(&trimmed, self.epsilon) {
            Ok(r) => r,
            Err(_) => return Trajectory::new(user, Vec::new()),
        };
        if resampled.len() == 1 {
            return Trajectory::new(user, Vec::new());
        }
        // Step 4: reassign timestamps proportionally to distance along the
        // path, so speed is constant by construction — including across the
        // final (shorter-than-epsilon) remainder segment.
        let total_span = (end - start).max(0);
        let cumulative = geo::polyline::cumulative_distances(&resampled);
        let path_total = *cumulative.last().expect("resampled non-empty");
        let new_records: Vec<LocationRecord> = resampled
            .iter()
            .zip(cumulative.iter())
            .map(|(point, d)| {
                let frac = if path_total > 0.0 {
                    d / path_total
                } else {
                    0.0
                };
                let t = start.seconds() + ((total_span as f64) * frac).round() as i64;
                LocationRecord::new(user, Timestamp::new(t), *point)
            })
            .collect();
        Trajectory::new(user, new_records)
    }
}

/// Extracts the sub-polyline between two distances along a path.
fn slice_polyline(points: &[geo::GeoPoint], from: Meters, to: Meters) -> Vec<geo::GeoPoint> {
    if points.len() < 2 || to.get() <= from.get() {
        return points.to_vec();
    }
    let cum = geo::polyline::cumulative_distances(points);
    let mut out = Vec::new();
    if let Ok(p) = geo::polyline::point_at_distance(points, from) {
        out.push(p);
    }
    for (p, d) in points.iter().zip(cum.iter()) {
        if *d > from.get() && *d < to.get() {
            out.push(*p);
        }
    }
    if let Ok(p) = geo::polyline::point_at_distance(points, to) {
        out.push(p);
    }
    out
}

impl AnonymizationStrategy for SpeedSmoothing {
    fn info(&self) -> StrategyInfo {
        StrategyInfo {
            name: "speed-smoothing".into(),
            params: format!(
                "epsilon={:.0}m, trim={:.0}m",
                self.epsilon.get(),
                self.endpoint_trim.get()
            ),
        }
    }

    fn anonymize(&self, dataset: &Dataset, _seed: u64) -> Dataset {
        // Deterministic: no randomness involved.
        dataset.map_trajectories(|t| self.smooth_trajectory(t))
    }

    /// Smoothing is deterministic per trajectory (no randomness, no grid):
    /// user `u`'s output depends only on `u`'s own records.
    fn locality(&self) -> UserLocality {
        UserLocality::UserLocal
    }

    fn spec(&self) -> Option<StrategySpec> {
        Some(StrategySpec::SpeedSmoothing {
            epsilon_m: self.epsilon().get(),
        })
    }

    fn anonymize_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        _seed: u64,
    ) -> Vec<Arc<Trajectory>> {
        map_user_trajectories(dataset, user, |t| self.smooth_trajectory(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GeoPoint;
    use mobility::UserId;

    fn rec(t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(1),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    /// A day with a long stop in the middle: home → (stop) → work.
    fn day_with_stop() -> Trajectory {
        let mut records = Vec::new();
        // Move east for 10 min.
        for i in 0..10 {
            records.push(rec(i * 60, 45.0, 4.0 + 0.001 * i as f64));
        }
        // Stop for 2 h.
        for i in 10..130 {
            records.push(rec(i * 60, 45.0, 4.009));
        }
        // Move east again for 10 min.
        for i in 130..140 {
            records.push(rec(i * 60, 45.0, 4.009 + 0.001 * (i - 129) as f64));
        }
        Trajectory::new(UserId(1), records)
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(SpeedSmoothing::new(Meters::new(0.0)).is_err());
        assert!(SpeedSmoothing::new(Meters::new(-5.0)).is_err());
        assert!(SpeedSmoothing::new(Meters::new(f64::NAN)).is_err());
        assert!(SpeedSmoothing::new(Meters::new(100.0)).is_ok());
    }

    #[test]
    fn output_speed_is_constant() {
        let strategy = SpeedSmoothing::new(Meters::new(50.0)).unwrap();
        let smoothed = strategy.smooth_trajectory(&day_with_stop());
        let cv = smoothed.speed_cv().expect("enough segments");
        // Timestamps are rounded to whole seconds, so allow a small
        // quantization residue; raw data has cv >> 1.
        assert!(cv < 0.2, "speed cv after smoothing = {cv}");
        let raw_cv = day_with_stop().speed_cv().unwrap();
        assert!(raw_cv > 1.0, "raw cv = {raw_cv}");
    }

    #[test]
    fn timespan_preserved_and_endpoints_trimmed() {
        let strategy = SpeedSmoothing::new(Meters::new(100.0)).unwrap();
        let original = day_with_stop();
        let smoothed = strategy.smooth_trajectory(&original);
        // The published trajectory still covers the same time window...
        assert_eq!(smoothed.start_time(), original.start_time());
        assert_eq!(smoothed.end_time(), original.end_time());
        // ...but its endpoints are pushed ~trim metres away from the real
        // origin/destination, hiding where the day started and ended.
        let trim = strategy.endpoint_trim().get();
        let o_first = original.records().first().unwrap().point;
        let s_first = smoothed.records().first().unwrap().point;
        let d_first = o_first.haversine_distance(&s_first).get();
        assert!(
            d_first > trim * 0.5,
            "first point only {d_first} m from true origin (trim {trim})"
        );
        let o_last = original.records().last().unwrap().point;
        let s_last = smoothed.records().last().unwrap().point;
        assert!(o_last.haversine_distance(&s_last).get() > trim * 0.5);
    }

    #[test]
    fn zero_trim_preserves_endpoints() {
        let strategy = SpeedSmoothing::new(Meters::new(100.0))
            .unwrap()
            .with_endpoint_trim(Meters::new(0.0))
            .unwrap();
        let original = day_with_stop();
        let smoothed = strategy.smooth_trajectory(&original);
        let o_first = original.records().first().unwrap().point;
        let s_first = smoothed.records().first().unwrap().point;
        assert!(o_first.haversine_distance(&s_first).get() < 1.0);
        assert!(strategy.with_endpoint_trim(Meters::new(-1.0)).is_err());
    }

    #[test]
    fn dwell_at_stop_is_erased() {
        use mobility::staypoint::{detect, StayPointConfig};
        let strategy = SpeedSmoothing::new(Meters::new(100.0)).unwrap();
        let original = day_with_stop();
        let raw_stays = detect(&original, &StayPointConfig::default());
        // Raw data contains the 2 h stop as a dominant stay.
        let raw_max = raw_stays.iter().map(|s| s.duration_s()).max().unwrap();
        assert!(raw_max >= 110 * 60, "raw stop dwell {raw_max}s");
        // After smoothing, slow constant motion may still trip the detector
        // ("pseudo-stays"), but no location can accumulate anything close to
        // the original stop's dwell — the stop is indistinguishable from the
        // rest of the path.
        let smoothed = strategy.smooth_trajectory(&original);
        let smoothed_stays = detect(&smoothed, &StayPointConfig::default());
        let smoothed_max = smoothed_stays
            .iter()
            .map(|s| s.duration_s())
            .max()
            .unwrap_or(0);
        assert!(
            smoothed_max < raw_max / 2,
            "smoothing left a {smoothed_max}s dwell (raw stop {raw_max}s)"
        );
        // And the dwell-concentration attack finds nothing.
        let ds = Dataset::from_trajectories(vec![original]);
        let protected = strategy.anonymize(&ds, 0);
        let extracted = crate::attack::PoiAttack::default().extract(&protected);
        assert!(
            extracted[&UserId(1)].is_empty(),
            "attack extracted {:?} from smoothed data",
            extracted[&UserId(1)]
        );
    }

    #[test]
    fn path_geometry_preserved_within_epsilon() {
        let strategy = SpeedSmoothing::new(Meters::new(50.0)).unwrap();
        let original = day_with_stop();
        let smoothed = strategy.smooth_trajectory(&original);
        // Every smoothed point must lie near the original path (within ~2
        // epsilon; the path is a straight east-west line here).
        let path = original.points();
        for r in smoothed.records() {
            let min_d = path
                .iter()
                .map(|p| p.haversine_distance(&r.point).get())
                .fold(f64::INFINITY, f64::min);
            assert!(min_d < 100.0, "smoothed point {min_d} m off-path");
        }
    }

    #[test]
    fn stationary_day_publishes_nothing() {
        let strategy = SpeedSmoothing::new(Meters::new(100.0)).unwrap();
        let records: Vec<LocationRecord> = (0..100).map(|i| rec(i * 60, 45.0, 4.0)).collect();
        let stationary = Trajectory::new(UserId(1), records);
        let smoothed = strategy.smooth_trajectory(&stationary);
        assert!(
            smoothed.is_empty(),
            "a stationary day must not reveal its location"
        );
    }

    #[test]
    fn tiny_trajectories_pass_through() {
        let strategy = SpeedSmoothing::new(Meters::new(100.0)).unwrap();
        let empty = Trajectory::new(UserId(1), vec![]);
        assert_eq!(strategy.smooth_trajectory(&empty).len(), 0);
        let single = Trajectory::new(UserId(1), vec![rec(0, 45.0, 4.0)]);
        assert_eq!(strategy.smooth_trajectory(&single).len(), 1);
    }

    #[test]
    fn anonymize_is_deterministic_and_seed_independent() {
        let strategy = SpeedSmoothing::new(Meters::new(75.0)).unwrap();
        let ds = Dataset::from_trajectories(vec![day_with_stop()]);
        let a = strategy.anonymize(&ds, 1);
        let b = strategy.anonymize(&ds, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn info_mentions_epsilon_and_trim() {
        let s = SpeedSmoothing::new(Meters::new(150.0)).unwrap();
        assert_eq!(
            s.info().to_string(),
            "speed-smoothing(epsilon=150m, trim=400m)"
        );
        assert_eq!(s.epsilon(), Meters::new(150.0));
        assert_eq!(s.endpoint_trim(), Meters::new(400.0));
        // Trim scales with epsilon once 2ε exceeds the 400 m floor.
        let wide = SpeedSmoothing::new(Meters::new(500.0)).unwrap();
        assert_eq!(wide.endpoint_trim(), Meters::new(1_000.0));
    }

    #[test]
    fn larger_epsilon_fewer_points() {
        let fine = SpeedSmoothing::new(Meters::new(25.0)).unwrap();
        let coarse = SpeedSmoothing::new(Meters::new(200.0)).unwrap();
        let t = day_with_stop();
        assert!(fine.smooth_trajectory(&t).len() > coarse.smooth_trajectory(&t).len());
    }
}
