//! Anonymization mechanisms.
//!
//! * [`SpeedSmoothing`] — the paper's novel contribution (§3): constant-speed
//!   trajectory resampling that erases stops;
//! * [`GeoIndistinguishability`] — the state-of-the-art differentially
//!   private baseline of the paper's companion study (ref \[3\]), which still
//!   leaks ≥ 60 % of POIs;
//! * [`SpatialCloaking`] — grid generalization;
//! * [`GaussianPerturbation`] — naive iid noise;
//! * [`TemporalDownsampling`] — record thinning;
//! * [`Identity`] — the no-protection control.

mod gaussian;
mod geo_i;
mod identity;
mod smoothing;
mod spatial_cloaking;
mod temporal;

pub use gaussian::GaussianPerturbation;
pub use geo_i::GeoIndistinguishability;
pub use identity::Identity;
pub use smoothing::SpeedSmoothing;
pub use spatial_cloaking::SpatialCloaking;
pub use temporal::TemporalDownsampling;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a per-trajectory RNG from the run seed, the user id and the
/// trajectory's start time, so each trajectory's randomness is independent
/// yet fully reproducible.
pub(crate) fn trajectory_rng(seed: u64, user: u64, start_s: i64) -> StdRng {
    let mix = seed
        ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (start_s as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    StdRng::seed_from_u64(mix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn trajectory_rng_is_deterministic_and_distinct() {
        let mut a: StdRng = trajectory_rng(1, 2, 3);
        let mut b: StdRng = trajectory_rng(1, 2, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c: StdRng = trajectory_rng(1, 2, 4);
        let mut d: StdRng = trajectory_rng(2, 2, 3);
        let base = trajectory_rng(1, 2, 3).gen::<u64>();
        assert_ne!(base, c.gen::<u64>());
        assert_ne!(base, d.gen::<u64>());
    }
}
