//! Anonymization mechanisms.
//!
//! * [`SpeedSmoothing`] — the paper's novel contribution (§3): constant-speed
//!   trajectory resampling that erases stops;
//! * [`GeoIndistinguishability`] — the state-of-the-art differentially
//!   private baseline of the paper's companion study (ref \[3\]), which still
//!   leaks ≥ 60 % of POIs;
//! * [`SpatialCloaking`] — grid generalization;
//! * [`GaussianPerturbation`] — naive iid noise;
//! * [`TemporalDownsampling`] — record thinning;
//! * [`Identity`] — the no-protection control.

mod gaussian;
mod geo_i;
mod identity;
mod smoothing;
mod spatial_cloaking;
mod temporal;

pub use gaussian::GaussianPerturbation;
pub use geo_i::GeoIndistinguishability;
pub use identity::Identity;
pub use smoothing::SpeedSmoothing;
pub use spatial_cloaking::SpatialCloaking;
pub use temporal::TemporalDownsampling;

use geo::GeoPoint;
use mobility::{Dataset, LocationRecord, Trajectory, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Derives a per-trajectory RNG from the run seed, the user id and the
/// trajectory's start time, so each trajectory's randomness is independent
/// yet fully reproducible.
///
/// This derivation is what lets the randomized mechanisms declare
/// [`crate::strategy::UserLocality::UserLocal`]: user `u`'s noise depends
/// only on `u`'s own trajectories and the seed, never on how many other
/// users (or records) the dataset holds — so the streaming per-strategy
/// cache can re-anonymize one user without touching the rest.
pub(crate) fn trajectory_rng(seed: u64, user: u64, start_s: i64) -> StdRng {
    let mix = seed
        ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (start_s as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    StdRng::seed_from_u64(mix)
}

/// Maps `user`'s trajectories (in dataset order) through `f` — the shared
/// body of the per-trajectory strategies' `anonymize_user` overrides, kept
/// in one place so the filter semantics the locality contract depends on
/// cannot drift between mechanisms.
pub(crate) fn map_user_trajectories<F>(
    dataset: &Dataset,
    user: UserId,
    mut f: F,
) -> Vec<Arc<Trajectory>>
where
    F: FnMut(&Trajectory) -> Trajectory,
{
    dataset
        .trajectories()
        .iter()
        .filter(|t| t.user() == user)
        .map(|t| Arc::new(f(t)))
        .collect()
}

/// Rewrites one trajectory's points through `perturb`, drawing randomness
/// from the per-trajectory [`trajectory_rng`] stream — the unit both noise
/// mechanisms (gaussian, geo-I) build their full and per-user paths from,
/// and the reason they can declare
/// [`crate::strategy::UserLocality::UserLocal`].
pub(crate) fn perturb_trajectory<F>(t: &Trajectory, seed: u64, mut perturb: F) -> Trajectory
where
    F: FnMut(&GeoPoint, &mut StdRng) -> GeoPoint,
{
    let mut rng = trajectory_rng(
        seed,
        t.user().0,
        t.start_time().map(|ts| ts.seconds()).unwrap_or(0),
    );
    let records: Vec<LocationRecord> = t
        .records()
        .iter()
        .map(|r| LocationRecord::new(r.user, r.time, perturb(&r.point, &mut rng)))
        .collect();
    Trajectory::new(t.user(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn trajectory_rng_is_deterministic_and_distinct() {
        let mut a: StdRng = trajectory_rng(1, 2, 3);
        let mut b: StdRng = trajectory_rng(1, 2, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c: StdRng = trajectory_rng(1, 2, 4);
        let mut d: StdRng = trajectory_rng(2, 2, 3);
        let base = trajectory_rng(1, 2, 3).gen::<u64>();
        assert_ne!(base, c.gen::<u64>());
        assert_ne!(base, d.gen::<u64>());
    }
}
