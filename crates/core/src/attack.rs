//! Privacy attacks against published mobility datasets.
//!
//! These implement the threat model of the paper's §3 (refs [2,3]): an
//! adversary mining a published dataset for *points of interest* and linking
//! pseudonyms back to individuals through their POI profiles. The paper's
//! headline motivation — "even a recent state-of-the-art protection mechanism
//! still allows to re-identify at least 60 % of the points of interest" — is
//! measured by running [`PoiAttack`] against each strategy's output.
//!
//! Two complementary POI extractors are combined (the adversary takes the
//! union of what either finds):
//!
//! * **stay-point extractor** — classic Li et al. stay detection followed by
//!   clustering; sharp on clean or generalized data;
//! * **dwell-density extractor** — accumulates *dwell mass* (time to the next
//!   fix) in a metric grid and clusters heavy cells; robust to unbiased
//!   per-point noise such as geo-indistinguishability, because hours of dwell
//!   concentrate around the true site even when individual fixes are hundreds
//!   of metres off.
//!
//! Both extractors only report places whose dwell is *anomalously
//! concentrated*: a candidate must hold at least [`PoiAttackConfig::min_poi_dwell_s`]
//! seconds of dwell **and** at least [`PoiAttackConfig::concentration_factor`]
//! times the user's mean positive-cell dwell. This mirrors how POIs are
//! defined — "places where a user spends *significant* amounts of time"
//! (paper, §3) — and is exactly the signal speed smoothing destroys: after
//! constant-speed resampling, dwell is spread uniformly along the path, so
//! nothing stands out, while geo-indistinguishability merely blurs the
//! concentration over neighbouring cells without removing it.

use geo::{GeoPoint, Meters, UniformGrid};
use mobility::gen::GroundTruth;
use mobility::poi::{extract_pois, PoiConfig};
use mobility::staypoint::{detect_all, StayPointConfig};
use mobility::{Dataset, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Per-user reference POI positions (ground truth or extracted from raw
/// data) that attack reports are measured against.
pub type ReferencePois = BTreeMap<UserId, Vec<GeoPoint>>;

/// Converts generator ground truth into reference POIs.
pub fn reference_from_truth(truth: &GroundTruth) -> ReferencePois {
    truth
        .users()
        .map(|u| (u, truth.pois_of(u).iter().map(|p| p.site).collect()))
        .collect()
}

/// Configuration of the POI retrieval attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiAttackConfig {
    /// Stay-point detector parameters.
    pub stay: StayPointConfig,
    /// Stay-point clustering parameters.
    pub poi: PoiConfig,
    /// Grid cell side of the dwell-density extractor.
    pub density_cell: Meters,
    /// Absolute floor: minimum dwell (seconds) for a POI candidate.
    pub min_poi_dwell_s: i64,
    /// Relative floor: candidate dwell must exceed this multiple of the
    /// user's mean positive-cell dwell (anomaly detection).
    pub concentration_factor: f64,
    /// Cap on the dwell credited to a single record (guards against gaps).
    pub max_record_dwell_s: i64,
    /// Minimum speed coefficient-of-variation for a trajectory to be fed to
    /// the stay-point detector. On (near-)constant-speed trajectories the
    /// detector fires uniformly along the path ("pseudo-stays") and carries
    /// no dwell information — a competent adversary measures the constancy
    /// and discards that evidence rather than flooding itself with noise.
    pub min_speed_cv: f64,
    /// An extracted POI within this distance of a reference POI counts as a
    /// successful retrieval.
    pub match_distance: Meters,
}

impl Default for PoiAttackConfig {
    /// Parameters aligned with the companion study: 200 m / 15 min stays,
    /// 250 m clustering, 150 m density cells, 45-minute absolute dwell floor
    /// at 3× the user's background dwell, 350 m retrieval matching.
    fn default() -> Self {
        Self {
            stay: StayPointConfig::default(),
            poi: PoiConfig::default(),
            density_cell: Meters::new(150.0),
            min_poi_dwell_s: 45 * 60,
            concentration_factor: 3.0,
            max_record_dwell_s: 10 * 60,
            min_speed_cv: 0.3,
            match_distance: Meters::new(350.0),
        }
    }
}

/// Result of a POI retrieval attack over a whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiAttackReport {
    /// Fraction of reference POIs recovered (the paper's headline number).
    pub recall: f64,
    /// Fraction of extracted POIs that correspond to a reference POI.
    pub precision: f64,
    /// Harmonic mean of recall and precision (0 when both are 0).
    pub f1: f64,
    /// Total reference POIs.
    pub reference_pois: usize,
    /// Total POIs the adversary extracted.
    pub extracted_pois: usize,
    /// Reference POIs that were matched.
    pub matched: usize,
}

/// Per-user dwell statistics backing the concentration filter.
#[derive(Debug, Clone)]
struct DwellField {
    /// Dwell mass per cell.
    mass: HashMap<geo::CellId, f64>,
    /// Mean mass across positive cells (the "background" dwell level).
    mean_positive: f64,
}

/// The POI retrieval attack.
#[derive(Debug, Clone, Default)]
pub struct PoiAttack {
    config: PoiAttackConfig,
}

impl PoiAttack {
    /// Creates the attack with explicit parameters.
    pub fn new(config: PoiAttackConfig) -> Self {
        Self { config }
    }

    /// The attack parameters.
    pub fn config(&self) -> &PoiAttackConfig {
        &self.config
    }

    /// Extracts POI positions for every user of `dataset` (union of the
    /// stay-point and dwell-density extractors, de-duplicated).
    pub fn extract(&self, dataset: &Dataset) -> ReferencePois {
        let mut out = ReferencePois::new();
        let Some(bbox) = dataset.bounding_box() else {
            return out;
        };
        let bbox = bbox.expanded(0.001);
        let grid = UniformGrid::new(bbox, self.config.density_cell)
            .expect("cell size validated by config");
        for user in dataset.users() {
            let field = self.dwell_field(dataset, user, &grid);
            let threshold = self.poi_threshold(&field);
            let mut pois = self.extract_density_pois(&field, &grid, threshold);
            for p in self.extract_staypoint_pois(dataset, user, threshold) {
                let dup = pois.iter().any(|q| {
                    q.haversine_distance(&p).get() < self.config.poi.merge_distance.get()
                });
                if !dup {
                    pois.push(p);
                }
            }
            out.insert(user, pois);
        }
        out
    }

    /// The dwell threshold (seconds) a candidate must exceed for this user.
    fn poi_threshold(&self, field: &DwellField) -> f64 {
        (self.config.min_poi_dwell_s as f64)
            .max(self.config.concentration_factor * field.mean_positive)
    }

    /// Accumulates the user's dwell mass per grid cell.
    fn dwell_field(&self, dataset: &Dataset, user: UserId, grid: &UniformGrid) -> DwellField {
        let records = dataset.records_of(user);
        let mut mass: HashMap<geo::CellId, f64> = HashMap::new();
        for w in records.windows(2) {
            let dwell = (w[1].time - w[0].time).clamp(0, self.config.max_record_dwell_s) as f64;
            if dwell <= 0.0 {
                continue;
            }
            *mass.entry(grid.cell_of(&w[0].point)).or_insert(0.0) += dwell;
        }
        let mean_positive = if mass.is_empty() {
            0.0
        } else {
            mass.values().sum::<f64>() / mass.len() as f64
        };
        DwellField {
            mass,
            mean_positive,
        }
    }

    /// Stay-point + clustering extractor, filtered by the dwell threshold.
    ///
    /// Trajectories whose speed is (near-)constant are skipped: on such data
    /// the detector produces a uniform chain of pseudo-stays along the path,
    /// which an adversary can recognise (and must discard) by checking the
    /// published speeds directly.
    fn extract_staypoint_pois(
        &self,
        dataset: &Dataset,
        user: UserId,
        threshold_s: f64,
    ) -> Vec<GeoPoint> {
        let trajs: Vec<&mobility::Trajectory> = dataset
            .trajectories_of(user)
            .into_iter()
            .filter(|t| {
                t.speed_cv()
                    .map(|cv| cv >= self.config.min_speed_cv)
                    .unwrap_or(true)
            })
            .collect();
        let stays = detect_all(trajs.iter().copied(), &self.config.stay);
        extract_pois(&stays, &self.config.poi)
            .into_iter()
            .filter(|p| p.total_dwell_s as f64 >= threshold_s)
            .map(|p| p.centroid)
            .collect()
    }

    /// Dwell-density extractor: anomalously heavy cells clustered by
    /// adjacency (8-connectivity BFS), centroid weighted by mass.
    fn extract_density_pois(
        &self,
        field: &DwellField,
        grid: &UniformGrid,
        threshold_s: f64,
    ) -> Vec<GeoPoint> {
        let candidates: HashMap<geo::CellId, f64> = field
            .mass
            .iter()
            .filter(|(_, m)| **m >= threshold_s)
            .map(|(c, m)| (*c, *m))
            .collect();
        let mut visited: HashMap<geo::CellId, bool> = HashMap::new();
        let mut pois = Vec::new();
        let mut starts: Vec<geo::CellId> = candidates.keys().copied().collect();
        starts.sort(); // deterministic order
        for start in starts {
            if visited.get(&start).copied().unwrap_or(false) {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            visited.insert(start, true);
            let mut weight_sum = 0.0;
            let mut lat_sum = 0.0;
            let mut lon_sum = 0.0;
            while let Some(cell) = queue.pop_front() {
                let w = candidates[&cell];
                let c = grid.cell_center(&cell);
                weight_sum += w;
                lat_sum += c.latitude() * w;
                lon_sum += c.longitude() * w;
                for nb in cell.neighbors() {
                    if candidates.contains_key(&nb)
                        && !visited.get(&nb).copied().unwrap_or(false)
                    {
                        visited.insert(nb, true);
                        queue.push_back(nb);
                    }
                }
            }
            if weight_sum > 0.0 {
                pois.push(GeoPoint::clamped(
                    lat_sum / weight_sum,
                    lon_sum / weight_sum,
                ));
            }
        }
        pois
    }

    /// Runs the attack against reference POIs.
    pub fn evaluate_reference(
        &self,
        protected: &Dataset,
        reference: &ReferencePois,
    ) -> PoiAttackReport {
        let extracted = self.extract(protected);
        let match_d = self.config.match_distance.get();
        let mut reference_pois = 0;
        let mut matched = 0;
        let mut extracted_total = 0;
        let mut extracted_true = 0;
        for (user, ref_pois) in reference {
            let found = extracted.get(user).map(Vec::as_slice).unwrap_or(&[]);
            reference_pois += ref_pois.len();
            extracted_total += found.len();
            for rp in ref_pois {
                if found
                    .iter()
                    .any(|e| e.haversine_distance(rp).get() <= match_d)
                {
                    matched += 1;
                }
            }
            for e in found {
                if ref_pois
                    .iter()
                    .any(|rp| rp.haversine_distance(e).get() <= match_d)
                {
                    extracted_true += 1;
                }
            }
        }
        let recall = if reference_pois == 0 {
            0.0
        } else {
            matched as f64 / reference_pois as f64
        };
        let precision = if extracted_total == 0 {
            0.0
        } else {
            extracted_true as f64 / extracted_total as f64
        };
        let f1 = if recall + precision == 0.0 {
            0.0
        } else {
            2.0 * recall * precision / (recall + precision)
        };
        PoiAttackReport {
            recall,
            precision,
            f1,
            reference_pois,
            extracted_pois: extracted_total,
            matched,
        }
    }

    /// Runs the attack against generator ground truth.
    pub fn evaluate(&self, protected: &Dataset, truth: &GroundTruth) -> PoiAttackReport {
        self.evaluate_reference(protected, &reference_from_truth(truth))
    }
}

/// Result of the user re-identification attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReidentReport {
    /// Fraction of users whose pseudonym was correctly linked.
    pub accuracy: f64,
    /// Users attacked.
    pub attempted: usize,
    /// Users correctly linked.
    pub correct: usize,
    /// Users for whom no POIs could be extracted (counted as failures).
    pub unattributable: usize,
}

/// The POI-profile re-identification (AP-attack style) adversary.
///
/// The adversary holds the *raw* dataset (or any background knowledge base)
/// and links each pseudonymous user of the protected release to the raw
/// profile whose POI set is closest.
#[derive(Debug, Clone, Default)]
pub struct ReidentificationAttack {
    attack: PoiAttack,
}

impl ReidentificationAttack {
    /// Creates the attack with explicit POI-extraction parameters.
    pub fn new(config: PoiAttackConfig) -> Self {
        Self {
            attack: PoiAttack::new(config),
        }
    }

    /// Links users of `protected` against profiles built from `background`.
    ///
    /// Both datasets must use the same user pseudonyms for scoring (the
    /// generator guarantees this), which lets the report count exact hits.
    pub fn evaluate(&self, protected: &Dataset, background: &Dataset) -> ReidentReport {
        let profiles = self.attack.extract(background);
        let observations = self.attack.extract(protected);
        let mut attempted = 0;
        let mut correct = 0;
        let mut unattributable = 0;
        for (user, observed) in &observations {
            if !profiles.contains_key(user) {
                continue;
            }
            attempted += 1;
            if observed.is_empty() {
                unattributable += 1;
                continue;
            }
            let mut best: Option<(UserId, f64)> = None;
            for (candidate, profile) in &profiles {
                if profile.is_empty() {
                    continue;
                }
                let score = profile_distance(observed, profile);
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((*candidate, score));
                }
            }
            if let Some((predicted, _)) = best {
                if predicted == *user {
                    correct += 1;
                }
            }
        }
        ReidentReport {
            accuracy: if attempted == 0 {
                0.0
            } else {
                correct as f64 / attempted as f64
            },
            attempted,
            correct,
            unattributable,
        }
    }
}

/// Mean distance from each observed POI to its nearest profile POI.
fn profile_distance(observed: &[GeoPoint], profile: &[GeoPoint]) -> f64 {
    let total: f64 = observed
        .iter()
        .map(|o| {
            profile
                .iter()
                .map(|p| o.haversine_distance(p).get())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / observed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::gen::{CityModel, PopulationConfig};
    use mobility::{LocationRecord, Timestamp, Trajectory};

    fn small_data() -> mobility::gen::GeneratedData {
        CityModel::builder()
            .seed(42)
            .build()
            .generate_with_truth(&PopulationConfig {
                users: 5,
                days: 5,
                sampling_interval_s: 120,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn attack_on_raw_data_recovers_home_and_work() {
        let data = small_data();
        let extracted = PoiAttack::default().extract(&data.dataset);
        for user in data.dataset.users() {
            let profile = data.truth.pois_of(user);
            let found = &extracted[&user];
            // Home and work dominate dwell: they must always be recovered.
            for poi in profile
                .iter()
                .filter(|p| p.kind != mobility::poi::PoiKind::Other)
            {
                let hit = found
                    .iter()
                    .any(|e| e.haversine_distance(&poi.site).get() <= 350.0);
                assert!(hit, "{user}: missed {:?} at {}", poi.kind, poi.site);
            }
        }
    }

    #[test]
    fn attack_on_raw_data_has_high_recall() {
        let data = small_data();
        let report = PoiAttack::default().evaluate(&data.dataset, &data.truth);
        // One-off leisure POIs fall below the significance filter, so truth
        // recall sits below 1; home/work/frequent places are found.
        assert!(
            report.recall >= 0.5,
            "raw-data recall should be substantial, got {:.2}",
            report.recall
        );
        assert!(report.precision > 0.5, "precision {:.2}", report.precision);
        assert!(report.f1 > 0.0);
        assert!(report.matched <= report.reference_pois);
    }

    #[test]
    fn self_reference_recall_is_perfect_on_raw_data() {
        // Measured against the attacker's own extraction from raw data (the
        // reference the paper's 60 % figure uses), raw data scores 1.0.
        let data = small_data();
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        let report = attack.evaluate_reference(&data.dataset, &reference);
        assert!(
            report.recall > 0.99,
            "self-reference recall {}",
            report.recall
        );
        assert!(report.precision > 0.99);
    }

    #[test]
    fn extract_is_empty_for_empty_dataset() {
        let attack = PoiAttack::default();
        assert!(attack.extract(&Dataset::new()).is_empty());
        let report = attack.evaluate_reference(&Dataset::new(), &ReferencePois::new());
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.extracted_pois, 0);
    }

    #[test]
    fn density_extractor_finds_noisy_dwell() {
        // A user parked 6 h at one spot, every fix displaced ~150 m in
        // alternating directions — stay-point detection sees >200 m jumps,
        // but dwell density piles up around the site. A commute before and
        // after provides background cells so the concentration filter has a
        // baseline.
        let site = GeoPoint::new(45.75, 4.85).unwrap();
        let mut records = Vec::new();
        // Commute in: 30 min moving fast from 3 km west.
        for i in 0..30i64 {
            let p = GeoPoint::new(45.75, 4.81 + 0.0013 * i as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        // Noisy dwell: 6 h.
        for i in 30..390i64 {
            let bearing = geo::Degrees::new((i % 8) as f64 * 45.0);
            let p = site.destination(bearing, Meters::new(150.0));
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        // Commute out.
        for i in 390..420i64 {
            let p = GeoPoint::new(45.75, 4.85 + 0.0013 * (i - 389) as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let extracted = PoiAttack::default().extract(&ds);
        let pois = &extracted[&UserId(1)];
        assert!(
            pois.iter()
                .any(|p| p.haversine_distance(&site).get() < 350.0),
            "density extractor missed the noisy dwell: {pois:?}"
        );
    }

    #[test]
    fn uniform_dwell_yields_no_pois() {
        // Constant-speed movement along a line: dwell is uniform across
        // cells, so the concentration filter must reject everything.
        let mut records = Vec::new();
        for i in 0..720i64 {
            // 12 h at 2 km/h heading east: 24 km of path.
            let p = GeoPoint::new(45.75, 4.80 + 0.000425 * i as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let extracted = PoiAttack::default().extract(&ds);
        assert!(
            extracted[&UserId(1)].is_empty(),
            "uniform dwell must not produce POIs: {:?}",
            extracted[&UserId(1)]
        );
    }

    #[test]
    fn reference_from_truth_preserves_counts() {
        let data = small_data();
        let reference = reference_from_truth(&data.truth);
        assert_eq!(
            reference.values().map(Vec::len).sum::<usize>(),
            data.truth.total_pois()
        );
    }

    #[test]
    fn reidentification_on_raw_data_is_perfect() {
        let data = small_data();
        let attack = ReidentificationAttack::default();
        let report = attack.evaluate(&data.dataset, &data.dataset);
        assert_eq!(report.attempted, 5);
        assert!(
            report.accuracy > 0.99,
            "self-match must be perfect, got {}",
            report.accuracy
        );
        assert_eq!(report.unattributable, 0);
    }

    #[test]
    fn reident_report_on_empty_data() {
        let attack = ReidentificationAttack::default();
        let report = attack.evaluate(&Dataset::new(), &Dataset::new());
        assert_eq!(report.attempted, 0);
        assert_eq!(report.accuracy, 0.0);
    }

    #[test]
    fn profile_distance_basics() {
        let a = GeoPoint::new(45.0, 4.0).unwrap();
        let b = GeoPoint::new(45.0, 4.01).unwrap();
        let c = GeoPoint::new(45.5, 4.5).unwrap();
        // Observed POIs exactly on the profile → zero.
        assert_eq!(profile_distance(&[a, b], &[a, b]), 0.0);
        // One far observation raises the mean.
        let d = profile_distance(&[a, c], &[a, b]);
        assert!(d > 1_000.0);
    }

    #[test]
    fn default_config_values() {
        let cfg = PoiAttackConfig::default();
        assert_eq!(cfg.match_distance, Meters::new(350.0));
        assert_eq!(cfg.min_poi_dwell_s, 2_700);
        assert_eq!(cfg.concentration_factor, 3.0);
        assert_eq!(cfg.min_speed_cv, 0.3);
        assert_eq!(cfg.stay.time_threshold_s, 900);
    }
}
