//! Privacy attacks against published mobility datasets.
//!
//! These implement the threat model of the paper's §3 (refs \[2,3\]): an
//! adversary mining a published dataset for *points of interest* and linking
//! pseudonyms back to individuals through their POI profiles. The paper's
//! headline motivation — "even a recent state-of-the-art protection mechanism
//! still allows to re-identify at least 60 % of the points of interest" — is
//! measured by running [`PoiAttack`] against each strategy's output.
//!
//! Two complementary POI extractors are combined (the adversary takes the
//! union of what either finds):
//!
//! * **stay-point extractor** — classic Li et al. stay detection followed by
//!   clustering; sharp on clean or generalized data;
//! * **dwell-density extractor** — accumulates *dwell mass* (time to the next
//!   fix) in a metric grid and clusters heavy cells; robust to unbiased
//!   per-point noise such as geo-indistinguishability, because hours of dwell
//!   concentrate around the true site even when individual fixes are hundreds
//!   of metres off.
//!
//! Both extractors only report places whose dwell is *anomalously
//! concentrated*: a candidate must hold at least [`PoiAttackConfig::min_poi_dwell_s`]
//! seconds of dwell **and** at least [`PoiAttackConfig::concentration_factor`]
//! times the user's mean positive-cell dwell. This mirrors how POIs are
//! defined — "places where a user spends *significant* amounts of time"
//! (paper, §3) — and is exactly the signal speed smoothing destroys: after
//! constant-speed resampling, dwell is spread uniformly along the path, so
//! nothing stands out, while geo-indistinguishability merely blurs the
//! concentration over neighbouring cells without removing it.
//!
//! # Sharding and indexing (the scaling architecture)
//!
//! The attack is the dominant term of every candidate evaluation in the
//! selection engine, so its two hot paths are structured for scale:
//!
//! * **Per-user shards.** Extraction decomposes into one independent
//!   [`UserAttackShard`] per user ([`PoiAttack::extract_user`]);
//!   [`PoiAttack::extract`] fans the shards out over the available cores and
//!   reassembles them in `UserId` order, so the result is byte-identical to
//!   the sequential reference path ([`PoiAttack::extract_serial`]). Shards
//!   are also the unit a streaming/incremental deployment would cache.
//! * **Spatial-indexed matching.** Reference POIs are bucketed once into a
//!   [`ReferenceIndex`] (a [`geo::PointIndex`] per user, cell side =
//!   [`PoiAttackConfig::match_distance`]); matching a candidate's extraction
//!   probes neighbor cells instead of scanning every (reference, extracted)
//!   pair. Distance comparisons stay exact haversine, so the indexed report
//!   equals the scan matcher's ([`PoiAttack::match_extracted_scan`])
//!   bit-for-bit, boundary distances included.

use geo::{GeoPoint, Meters, PointIndex, UniformGrid};
use mobility::gen::GroundTruth;
use mobility::poi::{extract_pois, PoiConfig};
use mobility::staypoint::{detect_all, StayPointConfig};
use mobility::{Dataset, UserId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-user reference POI positions (ground truth or extracted from raw
/// data) that attack reports are measured against.
pub type ReferencePois = BTreeMap<UserId, Vec<GeoPoint>>;

/// Converts generator ground truth into reference POIs.
pub fn reference_from_truth(truth: &GroundTruth) -> ReferencePois {
    truth
        .users()
        .map(|u| (u, truth.pois_of(u).iter().map(|p| p.site).collect()))
        .collect()
}

/// Configuration of the POI retrieval attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiAttackConfig {
    /// Stay-point detector parameters.
    pub stay: StayPointConfig,
    /// Stay-point clustering parameters.
    pub poi: PoiConfig,
    /// Grid cell side of the dwell-density extractor.
    pub density_cell: Meters,
    /// Absolute floor: minimum dwell (seconds) for a POI candidate.
    pub min_poi_dwell_s: i64,
    /// Relative floor: candidate dwell must exceed this multiple of the
    /// user's mean positive-cell dwell (anomaly detection).
    pub concentration_factor: f64,
    /// Cap on the dwell credited to a single record (guards against gaps).
    pub max_record_dwell_s: i64,
    /// Minimum speed coefficient-of-variation for a trajectory to be fed to
    /// the stay-point detector. On (near-)constant-speed trajectories the
    /// detector fires uniformly along the path ("pseudo-stays") and carries
    /// no dwell information — a competent adversary measures the constancy
    /// and discards that evidence rather than flooding itself with noise.
    pub min_speed_cv: f64,
    /// An extracted POI within this distance of a reference POI counts as a
    /// successful retrieval.
    pub match_distance: Meters,
}

impl Default for PoiAttackConfig {
    /// Parameters aligned with the companion study: 200 m / 15 min stays,
    /// 250 m clustering, 150 m density cells, 45-minute absolute dwell floor
    /// at 3× the user's background dwell, 350 m retrieval matching.
    fn default() -> Self {
        Self {
            stay: StayPointConfig::default(),
            poi: PoiConfig::default(),
            density_cell: Meters::new(150.0),
            min_poi_dwell_s: 45 * 60,
            concentration_factor: 3.0,
            max_record_dwell_s: 10 * 60,
            min_speed_cv: 0.3,
            match_distance: Meters::new(350.0),
        }
    }
}

/// Result of a POI retrieval attack over a whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiAttackReport {
    /// Fraction of reference POIs recovered (the paper's headline number).
    pub recall: f64,
    /// Fraction of extracted POIs that correspond to a reference POI.
    pub precision: f64,
    /// Harmonic mean of recall and precision (0 when both are 0).
    pub f1: f64,
    /// Total reference POIs.
    pub reference_pois: usize,
    /// Total POIs the adversary extracted.
    pub extracted_pois: usize,
    /// Reference POIs that were matched.
    pub matched: usize,
}

/// Per-user dwell statistics backing the concentration filter.
#[derive(Debug, Clone, PartialEq)]
pub struct DwellField {
    /// Dwell mass per cell.
    mass: HashMap<geo::CellId, f64>,
    /// Mean mass across positive cells (the "background" dwell level).
    mean_positive: f64,
}

impl DwellField {
    /// Dwell mass (seconds) accumulated per grid cell.
    pub fn mass(&self) -> &HashMap<geo::CellId, f64> {
        &self.mass
    }

    /// Mean mass across positive cells — the user's background dwell level
    /// the concentration filter is anchored to.
    pub fn mean_positive(&self) -> f64 {
        self.mean_positive
    }

    /// Number of cells holding positive dwell.
    pub fn cell_count(&self) -> usize {
        self.mass.len()
    }
}

/// One user's slice of the attack: their dwell field and the POIs extracted
/// from it. Shards are independent — [`PoiAttack::extract`] computes them in
/// parallel — and are the natural cache unit for streaming per-day releases.
#[derive(Debug, Clone, PartialEq)]
pub struct UserAttackShard {
    /// The user this shard belongs to.
    pub user: UserId,
    /// The user's dwell-density field over the dataset grid.
    pub dwell: DwellField,
    /// The dwell threshold (seconds) POI candidates had to exceed.
    pub threshold_s: f64,
    /// POIs extracted for this user (density ∪ stay-point, de-duplicated).
    pub pois: Vec<GeoPoint>,
}

/// Per-user spatial index over reference POIs, built once per evaluation
/// run ([`PoiAttack::index_reference`]) and probed by every candidate's
/// [`PoiAttack::evaluate_with_index`].
#[derive(Debug, Clone)]
pub struct ReferenceIndex {
    match_distance: Meters,
    users: BTreeMap<UserId, PointIndex>,
}

impl ReferenceIndex {
    /// Creates an empty index keyed by `match_distance` — the seed of an
    /// incrementally amended index (see [`ReferenceIndex::update_user`]).
    pub fn empty(match_distance: Meters) -> Self {
        Self {
            match_distance,
            users: BTreeMap::new(),
        }
    }

    /// Amends one user's entry with their current POI set, reusing the
    /// existing per-user [`PointIndex`] where possible instead of
    /// rebuilding it:
    ///
    /// * new POIs strictly *append* to the indexed ones → the index is
    ///   extended in place ([`PointIndex::extend`]; returns `true` iff at
    ///   least one POI was actually appended — an unchanged set is a
    ///   no-op, not an "extension");
    /// * anything else (first sighting of the user, or POIs that moved or
    ///   disappeared as dwell mass accumulated) → the user's index is
    ///   rebuilt from scratch (returns `false`).
    ///
    /// Either way the resulting per-user index is structurally identical
    /// to a fresh [`PoiAttack::index_reference`] build over the same POIs,
    /// so matching reports are unaffected by *how* the index got there —
    /// the invariant the streaming publisher's cross-window reuse rests on.
    pub fn update_user(&mut self, user: UserId, pois: &[GeoPoint]) -> bool {
        let build = |pois: &[GeoPoint]| {
            PointIndex::build(pois.to_vec(), self.match_distance)
                .expect("match distance validated by config")
        };
        match self.users.entry(user) {
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let existing = slot.get_mut();
                if pois.len() >= existing.len() && existing.points() == &pois[..existing.len()]
                {
                    let appended = pois.len() > existing.len();
                    existing.extend(pois[existing.len()..].iter().copied());
                    appended
                } else {
                    *existing = build(pois);
                    false
                }
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(build(pois));
                false
            }
        }
    }

    /// Total reference POIs across all users.
    pub fn total_pois(&self) -> usize {
        self.users.values().map(PointIndex::len).sum()
    }

    /// Number of indexed users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The match distance the index was keyed with.
    pub fn match_distance(&self) -> Meters {
        self.match_distance
    }

    /// One user's POI index, if present.
    pub fn get(&self, user: &UserId) -> Option<&PointIndex> {
        self.users.get(user)
    }

    /// Iterates the per-user indexes in `UserId` order.
    pub fn iter(&self) -> impl Iterator<Item = (&UserId, &PointIndex)> {
        self.users.iter()
    }
}

/// The POI retrieval attack.
#[derive(Debug, Clone, Default)]
pub struct PoiAttack {
    config: PoiAttackConfig,
    /// Counts full-dataset extractions. Shared across clones (the engine
    /// clones the attack into its workers), so callers can assert
    /// extraction budgets — e.g. exactly one original-side extraction per
    /// publish — end to end.
    extractions: Arc<AtomicUsize>,
    /// Counts single-user extraction passes ([`PoiAttack::extract_user`]),
    /// whether issued directly (the streaming delta paths) or as part of a
    /// full-dataset pass. Shared across clones like `extractions`, so
    /// callers can assert the *per-user* work a window actually performed
    /// — the unit the per-strategy shard caches save.
    user_extractions: Arc<AtomicUsize>,
}

impl PoiAttack {
    /// Creates the attack with explicit parameters.
    pub fn new(config: PoiAttackConfig) -> Self {
        Self {
            config,
            extractions: Arc::new(AtomicUsize::new(0)),
            user_extractions: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The attack parameters.
    pub fn config(&self) -> &PoiAttackConfig {
        &self.config
    }

    /// How many full-dataset extractions this attack (and every clone of
    /// it) has performed. Per-user [`PoiAttack::extract_user`] calls are
    /// not counted — only whole-dataset passes.
    pub fn extractions(&self) -> usize {
        self.extractions.load(Ordering::Relaxed)
    }

    /// How many single-user extraction passes this attack (and every clone
    /// of it) has performed — a full-dataset pass over `n` users counts
    /// `n`. This is the probe behind the per-strategy cache counting
    /// tests: on a sparse window the delta paths keep it proportional to
    /// the *changed* users instead of `users × (pool + 1)`.
    pub fn user_extractions(&self) -> usize {
        self.user_extractions.load(Ordering::Relaxed)
    }

    /// The dataset-wide density grid every per-user extraction shares, or
    /// `None` for an empty dataset.
    pub fn extraction_grid(&self, dataset: &Dataset) -> Option<UniformGrid> {
        Some(self.grid_for(dataset.bounding_box()?))
    }

    /// The density grid anchored on an already-known bounding box — what
    /// a streaming session uses to avoid rescanning its whole accumulated
    /// prefix per window: the prefix bbox is maintained incrementally
    /// ([`geo::BoundingBox::union`] is exact under append) and the grid
    /// derived from it here is identical to
    /// [`PoiAttack::extraction_grid`] over the full dataset.
    ///
    /// The grid is anchored on the *quantized* padded box
    /// ([`geo::BoundingBox::grid_anchor`]), not the raw data box: anchor
    /// corners snap outward to a 0.05° lattice, so per-window bounding-box
    /// drift inside the lattice leaves every cell boundary — and every
    /// cached per-user shard — untouched.
    pub fn grid_for(&self, bbox: geo::BoundingBox) -> UniformGrid {
        UniformGrid::new(bbox.grid_anchor(), self.config.density_cell)
            .expect("cell size validated by config")
    }

    /// Extracts one user's [`UserAttackShard`] against the shared dataset
    /// `grid` (see [`PoiAttack::extraction_grid`]).
    ///
    /// Per-user work is fully deterministic and independent of every other
    /// user, which is what lets [`PoiAttack::extract`] fan users out in
    /// parallel without changing any result.
    pub fn extract_user(
        &self,
        dataset: &Dataset,
        user: UserId,
        grid: &UniformGrid,
    ) -> UserAttackShard {
        self.user_extractions.fetch_add(1, Ordering::Relaxed);
        let dwell = self.dwell_field(dataset, user, grid);
        let threshold_s = self.poi_threshold(&dwell);
        let mut pois = self.extract_density_pois(&dwell, grid, threshold_s);
        for p in self.extract_staypoint_pois(dataset, user, threshold_s) {
            let dup = pois
                .iter()
                .any(|q| q.haversine_distance(&p).get() < self.config.poi.merge_distance.get());
            if !dup {
                pois.push(p);
            }
        }
        UserAttackShard {
            user,
            dwell,
            threshold_s,
            pois,
        }
    }

    /// Extracts every user's shard, fanned out over the available cores.
    ///
    /// Shards come back in `UserId` order (users are iterated sorted and
    /// results collected in input order), so downstream consumers see the
    /// exact sequential result regardless of scheduling.
    pub fn extract_shards(&self, dataset: &Dataset) -> Vec<UserAttackShard> {
        self.extractions.fetch_add(1, Ordering::Relaxed);
        let Some(grid) = self.extraction_grid(dataset) else {
            return Vec::new();
        };
        let users = dataset.users();
        users
            .par_iter()
            .map(|&user| self.extract_user(dataset, user, &grid))
            .collect()
    }

    /// Extracts POI positions for every user of `dataset` (union of the
    /// stay-point and dwell-density extractors, de-duplicated).
    ///
    /// Parallel over users; byte-identical to [`PoiAttack::extract_serial`].
    pub fn extract(&self, dataset: &Dataset) -> ReferencePois {
        self.extract_shards(dataset)
            .into_iter()
            .map(|s| (s.user, s.pois))
            .collect()
    }

    /// The sequential reference implementation of [`PoiAttack::extract`],
    /// kept for parity tests and serial-vs-parallel benchmarks.
    pub fn extract_serial(&self, dataset: &Dataset) -> ReferencePois {
        self.extractions.fetch_add(1, Ordering::Relaxed);
        let mut out = ReferencePois::new();
        let Some(grid) = self.extraction_grid(dataset) else {
            return out;
        };
        for user in dataset.users() {
            let shard = self.extract_user(dataset, user, &grid);
            out.insert(shard.user, shard.pois);
        }
        out
    }

    /// The dwell threshold (seconds) a candidate must exceed for this user.
    fn poi_threshold(&self, field: &DwellField) -> f64 {
        (self.config.min_poi_dwell_s as f64)
            .max(self.config.concentration_factor * field.mean_positive)
    }

    /// Accumulates the user's dwell mass per grid cell.
    fn dwell_field(&self, dataset: &Dataset, user: UserId, grid: &UniformGrid) -> DwellField {
        let records = dataset.records_of(user);
        let mut mass: HashMap<geo::CellId, f64> = HashMap::new();
        for w in records.windows(2) {
            let dwell = (w[1].time - w[0].time).clamp(0, self.config.max_record_dwell_s) as f64;
            if dwell <= 0.0 {
                continue;
            }
            *mass.entry(grid.cell_of(&w[0].point)).or_insert(0.0) += dwell;
        }
        let mean_positive = if mass.is_empty() {
            0.0
        } else {
            mass.values().sum::<f64>() / mass.len() as f64
        };
        DwellField {
            mass,
            mean_positive,
        }
    }

    /// Stay-point + clustering extractor, filtered by the dwell threshold.
    ///
    /// Trajectories whose speed is (near-)constant are skipped: on such data
    /// the detector produces a uniform chain of pseudo-stays along the path,
    /// which an adversary can recognise (and must discard) by checking the
    /// published speeds directly.
    fn extract_staypoint_pois(
        &self,
        dataset: &Dataset,
        user: UserId,
        threshold_s: f64,
    ) -> Vec<GeoPoint> {
        let trajs: Vec<&mobility::Trajectory> = dataset
            .trajectories_of(user)
            .into_iter()
            .filter(|t| {
                t.speed_cv()
                    .map(|cv| cv >= self.config.min_speed_cv)
                    .unwrap_or(true)
            })
            .collect();
        let stays = detect_all(trajs.iter().copied(), &self.config.stay);
        extract_pois(&stays, &self.config.poi)
            .into_iter()
            .filter(|p| p.total_dwell_s as f64 >= threshold_s)
            .map(|p| p.centroid)
            .collect()
    }

    /// Dwell-density extractor: anomalously heavy cells clustered by
    /// adjacency (8-connectivity BFS), centroid weighted by mass.
    fn extract_density_pois(
        &self,
        field: &DwellField,
        grid: &UniformGrid,
        threshold_s: f64,
    ) -> Vec<GeoPoint> {
        let candidate =
            |cell: &geo::CellId| field.mass.get(cell).is_some_and(|m| *m >= threshold_s);
        let mut visited: HashSet<geo::CellId> = HashSet::new();
        let mut pois = Vec::new();
        let mut starts: Vec<geo::CellId> = field
            .mass
            .iter()
            .filter(|(_, m)| **m >= threshold_s)
            .map(|(c, _)| *c)
            .collect();
        starts.sort(); // deterministic order
        for start in starts {
            if visited.contains(&start) {
                continue;
            }
            let mut queue = VecDeque::from([start]);
            visited.insert(start);
            let mut weight_sum = 0.0;
            let mut lat_sum = 0.0;
            let mut lon_sum = 0.0;
            while let Some(cell) = queue.pop_front() {
                let w = field.mass[&cell];
                let c = grid.cell_center(&cell);
                weight_sum += w;
                lat_sum += c.latitude() * w;
                lon_sum += c.longitude() * w;
                for nb in cell.neighbors() {
                    if candidate(&nb) && !visited.contains(&nb) {
                        visited.insert(nb);
                        queue.push_back(nb);
                    }
                }
            }
            if weight_sum > 0.0 {
                pois.push(GeoPoint::clamped(
                    lat_sum / weight_sum,
                    lon_sum / weight_sum,
                ));
            }
        }
        pois
    }

    /// Buckets `reference` POIs into per-user spatial indexes keyed by the
    /// configured match distance. Build once per evaluation run; probe once
    /// per candidate.
    pub fn index_reference(&self, reference: &ReferencePois) -> ReferenceIndex {
        let users = reference
            .iter()
            .map(|(user, pois)| {
                let index = PointIndex::build(pois.clone(), self.config.match_distance)
                    .expect("match distance validated by config");
                (*user, index)
            })
            .collect();
        ReferenceIndex {
            match_distance: self.config.match_distance,
            users,
        }
    }

    /// Matches an already-extracted observation set against an indexed
    /// reference. One pass over the extracted POIs marks matched reference
    /// POIs (recall) and counts true extractions (precision) via
    /// neighbor-cell lookups; equals [`PoiAttack::match_extracted_scan`]
    /// bit-for-bit.
    pub fn match_extracted(
        &self,
        extracted: &ReferencePois,
        index: &ReferenceIndex,
    ) -> PoiAttackReport {
        let match_d = index.match_distance;
        let mut reference_pois = 0;
        let mut matched = 0;
        let mut extracted_total = 0;
        let mut extracted_true = 0;
        for (user, user_index) in &index.users {
            let found = extracted.get(user).map(Vec::as_slice).unwrap_or(&[]);
            reference_pois += user_index.len();
            extracted_total += found.len();
            let mut hit = vec![false; user_index.len()];
            for e in found {
                let mut any = false;
                user_index.for_each_within(e, match_d, |i| {
                    hit[i] = true;
                    any = true;
                });
                if any {
                    extracted_true += 1;
                }
            }
            matched += hit.iter().filter(|h| **h).count();
        }
        assemble_report(reference_pois, matched, extracted_total, extracted_true)
    }

    /// The pairwise O(R·E) scan matcher — the reference implementation
    /// [`PoiAttack::match_extracted`] is verified against.
    pub fn match_extracted_scan(
        &self,
        extracted: &ReferencePois,
        reference: &ReferencePois,
    ) -> PoiAttackReport {
        let match_d = self.config.match_distance.get();
        let mut reference_pois = 0;
        let mut matched = 0;
        let mut extracted_total = 0;
        let mut extracted_true = 0;
        for (user, ref_pois) in reference {
            let found = extracted.get(user).map(Vec::as_slice).unwrap_or(&[]);
            reference_pois += ref_pois.len();
            extracted_total += found.len();
            for rp in ref_pois {
                if found
                    .iter()
                    .any(|e| e.haversine_distance(rp).get() <= match_d)
                {
                    matched += 1;
                }
            }
            for e in found {
                if ref_pois
                    .iter()
                    .any(|rp| rp.haversine_distance(e).get() <= match_d)
                {
                    extracted_true += 1;
                }
            }
        }
        assemble_report(reference_pois, matched, extracted_total, extracted_true)
    }

    /// Runs the attack against reference POIs (extract + indexed matching).
    pub fn evaluate_reference(
        &self,
        protected: &Dataset,
        reference: &ReferencePois,
    ) -> PoiAttackReport {
        self.evaluate_with_index(protected, &self.index_reference(reference))
    }

    /// Runs the attack against a pre-built [`ReferenceIndex`] — the hot
    /// path of the selection engine, where the same reference is probed by
    /// every candidate.
    pub fn evaluate_with_index(
        &self,
        protected: &Dataset,
        index: &ReferenceIndex,
    ) -> PoiAttackReport {
        let extracted = self.extract(protected);
        self.match_extracted(&extracted, index)
    }

    /// Scan-matching twin of [`PoiAttack::evaluate_reference`], kept as the
    /// verification baseline for the indexed path.
    pub fn evaluate_reference_scan(
        &self,
        protected: &Dataset,
        reference: &ReferencePois,
    ) -> PoiAttackReport {
        let extracted = self.extract(protected);
        self.match_extracted_scan(&extracted, reference)
    }

    /// Runs the attack against generator ground truth.
    pub fn evaluate(&self, protected: &Dataset, truth: &GroundTruth) -> PoiAttackReport {
        self.evaluate_reference(protected, &reference_from_truth(truth))
    }
}

/// Folds the four match counters into a report.
fn assemble_report(
    reference_pois: usize,
    matched: usize,
    extracted_total: usize,
    extracted_true: usize,
) -> PoiAttackReport {
    let recall = if reference_pois == 0 {
        0.0
    } else {
        matched as f64 / reference_pois as f64
    };
    let precision = if extracted_total == 0 {
        0.0
    } else {
        extracted_true as f64 / extracted_total as f64
    };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    PoiAttackReport {
        recall,
        precision,
        f1,
        reference_pois,
        extracted_pois: extracted_total,
        matched,
    }
}

/// Result of the user re-identification attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReidentReport {
    /// Fraction of users whose pseudonym was correctly linked.
    pub accuracy: f64,
    /// Users attacked.
    pub attempted: usize,
    /// Users correctly linked.
    pub correct: usize,
    /// Users for whom no POIs could be extracted (counted as failures).
    pub unattributable: usize,
}

/// Background POI profiles, indexed per user, built once from the
/// adversary's knowledge base ([`ReidentificationAttack::build_profiles`])
/// and reused across every protected release linked against it.
///
/// A thin wrapper over [`ReferenceIndex`]: each profile's points live in
/// its [`PointIndex`] (see [`geo::PointIndex::points`]), stored once.
#[derive(Debug, Clone)]
pub struct BackgroundProfiles {
    index: ReferenceIndex,
}

impl BackgroundProfiles {
    /// The per-user profile indexes.
    pub fn index(&self) -> &ReferenceIndex {
        &self.index
    }

    /// Number of profiled users.
    pub fn user_count(&self) -> usize {
        self.index.user_count()
    }

    /// Total profile POIs across all users.
    pub fn total_pois(&self) -> usize {
        self.index.total_pois()
    }
}

/// The POI-profile re-identification (AP-attack style) adversary.
///
/// The adversary holds the *raw* dataset (or any background knowledge base)
/// and links each pseudonymous user of the protected release to the raw
/// profile whose POI set is closest.
#[derive(Debug, Clone, Default)]
pub struct ReidentificationAttack {
    attack: PoiAttack,
}

impl ReidentificationAttack {
    /// Creates the attack with explicit POI-extraction parameters.
    pub fn new(config: PoiAttackConfig) -> Self {
        Self {
            attack: PoiAttack::new(config),
        }
    }

    /// Extracts and indexes the adversary's background profiles. One
    /// extraction, reusable across every candidate release evaluated
    /// against the same background.
    pub fn build_profiles(&self, background: &Dataset) -> BackgroundProfiles {
        BackgroundProfiles {
            index: self
                .attack
                .index_reference(&self.attack.extract(background)),
        }
    }

    /// Links users of `protected` against profiles built from `background`.
    ///
    /// Both datasets must use the same user pseudonyms for scoring (the
    /// generator guarantees this), which lets the report count exact hits.
    pub fn evaluate(&self, protected: &Dataset, background: &Dataset) -> ReidentReport {
        self.evaluate_with_profiles(protected, &self.build_profiles(background))
    }

    /// Links users of `protected` against pre-built background profiles.
    ///
    /// Profile distances go through each profile's spatial index
    /// ([`geo::PointIndex::nearest_distance`] is exact), so the linkage is
    /// identical to the pairwise scan while the profiles amortize across
    /// candidates.
    pub fn evaluate_with_profiles(
        &self,
        protected: &Dataset,
        profiles: &BackgroundProfiles,
    ) -> ReidentReport {
        let observations = self.attack.extract(protected);
        let mut attempted = 0;
        let mut correct = 0;
        let mut unattributable = 0;
        for (user, observed) in &observations {
            if profiles.index.get(user).is_none() {
                continue;
            }
            attempted += 1;
            if observed.is_empty() {
                unattributable += 1;
                continue;
            }
            let mut best: Option<(UserId, f64)> = None;
            for (candidate, index) in profiles.index.iter() {
                if index.is_empty() {
                    continue;
                }
                let score = indexed_profile_distance(observed, index);
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((*candidate, score));
                }
            }
            if let Some((predicted, _)) = best {
                if predicted == *user {
                    correct += 1;
                }
            }
        }
        ReidentReport {
            accuracy: if attempted == 0 {
                0.0
            } else {
                correct as f64 / attempted as f64
            },
            attempted,
            correct,
            unattributable,
        }
    }
}

/// Mean distance from each observed POI to its nearest profile POI
/// (pairwise-scan reference implementation; see
/// [`indexed_profile_distance`] for the production path).
pub fn profile_distance(observed: &[GeoPoint], profile: &[GeoPoint]) -> f64 {
    let total: f64 = observed
        .iter()
        .map(|o| {
            profile
                .iter()
                .map(|p| o.haversine_distance(p).get())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / observed.len() as f64
}

/// Indexed twin of [`profile_distance`]: identical value, nearest-neighbor
/// lookups instead of pairwise scans.
pub fn indexed_profile_distance(observed: &[GeoPoint], profile: &PointIndex) -> f64 {
    let total: f64 = observed
        .iter()
        .map(|o| {
            profile
                .nearest_distance(o)
                .map(|d| d.get())
                .unwrap_or(f64::INFINITY)
        })
        .sum();
    total / observed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::Degrees;
    use mobility::gen::{CityModel, PopulationConfig};
    use mobility::{LocationRecord, Timestamp, Trajectory};

    fn small_data() -> mobility::gen::GeneratedData {
        CityModel::builder()
            .seed(42)
            .build()
            .generate_with_truth(&PopulationConfig {
                users: 5,
                days: 5,
                sampling_interval_s: 120,
                gps_noise_m: 5.0,
                leisure_probability: 0.4,
            })
    }

    #[test]
    fn attack_on_raw_data_recovers_home_and_work() {
        let data = small_data();
        let extracted = PoiAttack::default().extract(&data.dataset);
        for user in data.dataset.users() {
            let profile = data.truth.pois_of(user);
            let found = &extracted[&user];
            // Home and work dominate dwell: they must always be recovered.
            for poi in profile
                .iter()
                .filter(|p| p.kind != mobility::poi::PoiKind::Other)
            {
                let hit = found
                    .iter()
                    .any(|e| e.haversine_distance(&poi.site).get() <= 350.0);
                assert!(hit, "{user}: missed {:?} at {}", poi.kind, poi.site);
            }
        }
    }

    #[test]
    fn attack_on_raw_data_has_high_recall() {
        let data = small_data();
        let report = PoiAttack::default().evaluate(&data.dataset, &data.truth);
        // One-off leisure POIs fall below the significance filter, so truth
        // recall sits below 1; home/work/frequent places are found.
        assert!(
            report.recall >= 0.5,
            "raw-data recall should be substantial, got {:.2}",
            report.recall
        );
        assert!(report.precision > 0.5, "precision {:.2}", report.precision);
        assert!(report.f1 > 0.0);
        assert!(report.matched <= report.reference_pois);
    }

    #[test]
    fn self_reference_recall_is_perfect_on_raw_data() {
        // Measured against the attacker's own extraction from raw data (the
        // reference the paper's 60 % figure uses), raw data scores 1.0.
        let data = small_data();
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        let report = attack.evaluate_reference(&data.dataset, &reference);
        assert!(
            report.recall > 0.99,
            "self-reference recall {}",
            report.recall
        );
        assert!(report.precision > 0.99);
    }

    #[test]
    fn extract_is_empty_for_empty_dataset() {
        let attack = PoiAttack::default();
        assert!(attack.extract(&Dataset::new()).is_empty());
        assert!(attack.extract_serial(&Dataset::new()).is_empty());
        assert!(attack.extract_shards(&Dataset::new()).is_empty());
        let report = attack.evaluate_reference(&Dataset::new(), &ReferencePois::new());
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.extracted_pois, 0);
    }

    #[test]
    fn parallel_extract_equals_serial() {
        let data = small_data();
        let attack = PoiAttack::default();
        assert_eq!(
            attack.extract(&data.dataset),
            attack.extract_serial(&data.dataset)
        );
    }

    #[test]
    fn shards_come_back_in_user_order() {
        let data = small_data();
        let attack = PoiAttack::default();
        let shards = attack.extract_shards(&data.dataset);
        let users: Vec<UserId> = shards.iter().map(|s| s.user).collect();
        assert_eq!(users, data.dataset.users());
        for shard in &shards {
            assert!(shard.threshold_s >= attack.config().min_poi_dwell_s as f64);
            assert!(shard.dwell.cell_count() > 0);
            assert!(shard.dwell.mean_positive() > 0.0);
        }
    }

    #[test]
    fn extraction_counter_counts_full_passes_across_clones() {
        let data = small_data();
        let attack = PoiAttack::default();
        assert_eq!(attack.extractions(), 0);
        let clone = attack.clone();
        let _ = attack.extract(&data.dataset);
        let _ = clone.extract_serial(&data.dataset);
        let _ = attack.extract_shards(&data.dataset);
        assert_eq!(attack.extractions(), 3, "clones share the probe");
        assert_eq!(clone.extractions(), 3);
    }

    #[test]
    fn indexed_matcher_equals_scan_matcher_on_real_data() {
        use crate::strategy::AnonymizationStrategy;
        let data = small_data();
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        for strategy_seed in [1u64, 2, 3] {
            let protected = crate::strategies::GaussianPerturbation::new(Meters::new(120.0))
                .unwrap()
                .anonymize(&data.dataset, strategy_seed);
            let indexed = attack.evaluate_reference(&protected, &reference);
            let scan = attack.evaluate_reference_scan(&protected, &reference);
            assert_eq!(indexed, scan);
        }
    }

    #[test]
    fn indexed_matcher_equals_scan_matcher_at_boundary_distance() {
        // A POI at *exactly* match_distance must count as matched (<=) in
        // both matchers; one at a hair beyond must not. The exact boundary
        // is manufactured by setting match_distance to the measured
        // haversine distance itself.
        let site = GeoPoint::new(45.75, 4.85).unwrap();
        let offset = site.destination(Degrees::new(73.0), Meters::new(350.0));
        let exact = site.haversine_distance(&offset);
        let mut reference = ReferencePois::new();
        reference.insert(UserId(1), vec![site]);
        // A user with no extraction and an extraction with no reference.
        reference.insert(UserId(2), vec![offset]);
        let mut extracted = ReferencePois::new();
        extracted.insert(UserId(1), vec![offset]);
        extracted.insert(UserId(3), vec![site]);

        for (match_d, expect_matched) in [
            (exact, 1),                           // boundary: inclusive
            (Meters::new(exact.get() - 1e-6), 0), // just inside the gap
            (Meters::new(exact.get() + 1e-6), 1), // just beyond the gap
        ] {
            let attack = PoiAttack::new(PoiAttackConfig {
                match_distance: match_d,
                ..PoiAttackConfig::default()
            });
            let index = attack.index_reference(&reference);
            let indexed = attack.match_extracted(&extracted, &index);
            let scan = attack.match_extracted_scan(&extracted, &reference);
            assert_eq!(indexed, scan, "match_d {match_d:?}");
            assert_eq!(indexed.matched, expect_matched, "match_d {match_d:?}");
            assert_eq!(indexed.reference_pois, 2);
            assert_eq!(indexed.extracted_pois, 1, "UserId(3) is not referenced");
        }
    }

    #[test]
    fn reference_index_amendment_matches_fresh_build() {
        use crate::strategy::AnonymizationStrategy;
        let data = small_data();
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        let fresh = attack.index_reference(&reference);

        // Grow an empty index user by user, in two halves per user so both
        // the rebuild path (first sighting) and the extend path (appended
        // POIs) are exercised.
        let mut amended = ReferenceIndex::empty(attack.config().match_distance);
        for (user, pois) in &reference {
            let half = pois.len() / 2;
            assert!(!amended.update_user(*user, &pois[..half]), "first insert");
            assert_eq!(
                amended.update_user(*user, pois),
                pois.len() > half,
                "a real append takes the extend path"
            );
            assert!(
                !amended.update_user(*user, pois),
                "an unchanged set is a no-op, not an extension"
            );
        }
        assert_eq!(amended.user_count(), fresh.user_count());
        assert_eq!(amended.total_pois(), fresh.total_pois());
        assert_eq!(amended.match_distance(), fresh.match_distance());
        // The amended index must answer matching queries identically.
        let protected = crate::strategies::GaussianPerturbation::new(Meters::new(120.0))
            .unwrap()
            .anonymize(&data.dataset, 7);
        let extracted = attack.extract(&protected);
        assert_eq!(
            attack.match_extracted(&extracted, &amended),
            attack.match_extracted(&extracted, &fresh)
        );

        // A changed (non-append) POI set forces a rebuild and replaces the
        // entry wholesale.
        let user = *reference.keys().next().unwrap();
        let mut moved: Vec<GeoPoint> = reference[&user].clone();
        moved.reverse();
        if moved.len() > 1 {
            assert!(!amended.update_user(user, &moved), "reorder must rebuild");
            assert_eq!(amended.get(&user).unwrap().points(), moved.as_slice());
        }
    }

    #[test]
    fn reference_index_reports_shape() {
        let data = small_data();
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        let index = attack.index_reference(&reference);
        assert_eq!(index.user_count(), reference.len());
        assert_eq!(
            index.total_pois(),
            reference.values().map(Vec::len).sum::<usize>()
        );
        assert_eq!(index.match_distance(), attack.config().match_distance);
    }

    #[test]
    fn density_extractor_finds_noisy_dwell() {
        // A user parked 6 h at one spot, every fix displaced ~150 m in
        // alternating directions — stay-point detection sees >200 m jumps,
        // but dwell density piles up around the site. A commute before and
        // after provides background cells so the concentration filter has a
        // baseline.
        let site = GeoPoint::new(45.75, 4.85).unwrap();
        let mut records = Vec::new();
        // Commute in: 30 min moving fast from 3 km west.
        for i in 0..30i64 {
            let p = GeoPoint::new(45.75, 4.81 + 0.0013 * i as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        // Noisy dwell: 6 h.
        for i in 30..390i64 {
            let bearing = geo::Degrees::new((i % 8) as f64 * 45.0);
            let p = site.destination(bearing, Meters::new(150.0));
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        // Commute out.
        for i in 390..420i64 {
            let p = GeoPoint::new(45.75, 4.85 + 0.0013 * (i - 389) as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let extracted = PoiAttack::default().extract(&ds);
        let pois = &extracted[&UserId(1)];
        assert!(
            pois.iter()
                .any(|p| p.haversine_distance(&site).get() < 350.0),
            "density extractor missed the noisy dwell: {pois:?}"
        );
    }

    #[test]
    fn uniform_dwell_yields_no_pois() {
        // Constant-speed movement along a line: dwell is uniform across
        // cells, so the concentration filter must reject everything.
        let mut records = Vec::new();
        for i in 0..720i64 {
            // 12 h at 2 km/h heading east: 24 km of path.
            let p = GeoPoint::new(45.75, 4.80 + 0.000425 * i as f64).unwrap();
            records.push(LocationRecord::new(UserId(1), Timestamp::new(i * 60), p));
        }
        let ds = Dataset::from_trajectories(vec![Trajectory::new(UserId(1), records)]);
        let extracted = PoiAttack::default().extract(&ds);
        assert!(
            extracted[&UserId(1)].is_empty(),
            "uniform dwell must not produce POIs: {:?}",
            extracted[&UserId(1)]
        );
    }

    #[test]
    fn reference_from_truth_preserves_counts() {
        let data = small_data();
        let reference = reference_from_truth(&data.truth);
        assert_eq!(
            reference.values().map(Vec::len).sum::<usize>(),
            data.truth.total_pois()
        );
    }

    #[test]
    fn reidentification_on_raw_data_is_perfect() {
        let data = small_data();
        let attack = ReidentificationAttack::default();
        let report = attack.evaluate(&data.dataset, &data.dataset);
        assert_eq!(report.attempted, 5);
        assert!(
            report.accuracy > 0.99,
            "self-match must be perfect, got {}",
            report.accuracy
        );
        assert_eq!(report.unattributable, 0);
    }

    #[test]
    fn reidentification_profiles_amortize_across_candidates() {
        let data = small_data();
        let attack = ReidentificationAttack::default();
        let profiles = attack.build_profiles(&data.dataset);
        let direct = attack.evaluate(&data.dataset, &data.dataset);
        let reused = attack.evaluate_with_profiles(&data.dataset, &profiles);
        assert_eq!(direct, reused);
        assert_eq!(profiles.user_count(), 5);
    }

    #[test]
    fn indexed_profile_distance_equals_scan() {
        let data = small_data();
        let attack = PoiAttack::default();
        let extracted = attack.extract(&data.dataset);
        let users: Vec<&Vec<GeoPoint>> = extracted.values().filter(|p| !p.is_empty()).collect();
        for observed in &users {
            for profile in &users {
                let index =
                    PointIndex::build((*profile).clone(), attack.config().match_distance)
                        .unwrap();
                assert_eq!(
                    profile_distance(observed, profile),
                    indexed_profile_distance(observed, &index)
                );
            }
        }
    }

    #[test]
    fn reident_report_on_empty_data() {
        let attack = ReidentificationAttack::default();
        let report = attack.evaluate(&Dataset::new(), &Dataset::new());
        assert_eq!(report.attempted, 0);
        assert_eq!(report.accuracy, 0.0);
    }

    #[test]
    fn profile_distance_basics() {
        let a = GeoPoint::new(45.0, 4.0).unwrap();
        let b = GeoPoint::new(45.0, 4.01).unwrap();
        let c = GeoPoint::new(45.5, 4.5).unwrap();
        // Observed POIs exactly on the profile → zero.
        assert_eq!(profile_distance(&[a, b], &[a, b]), 0.0);
        // One far observation raises the mean.
        let d = profile_distance(&[a, c], &[a, b]);
        assert!(d > 1_000.0);
    }

    #[test]
    fn default_config_values() {
        let cfg = PoiAttackConfig::default();
        assert_eq!(cfg.match_distance, Meters::new(350.0));
        assert_eq!(cfg.min_poi_dwell_s, 2_700);
        assert_eq!(cfg.concentration_factor, 3.0);
        assert_eq!(cfg.min_speed_cv, 0.3);
        assert_eq!(cfg.stay.time_threshold_s, 900);
    }
}
