//! The strategy-pool registry.
//!
//! "We believe there is not one unique anonymization strategy that always
//! performs well but many from which we can choose" (paper, §3). The pool is
//! the single place where that "many" is defined: named constructors return
//! the canonical pools (the publication pool the middleware searches, the
//! wider measurement grid the experiments sweep), and grid builders assemble
//! custom pools family by family. Every consumer — the PRIVAPI pipeline,
//! the APISENSE publication gateway, the bench experiment drivers and the
//! examples — draws from these definitions instead of hard-coding its own
//! candidate list.

use crate::error::PrivapiError;
use crate::strategies::{
    GaussianPerturbation, GeoIndistinguishability, Identity, SpatialCloaking, SpeedSmoothing,
    TemporalDownsampling,
};
use crate::strategy::{AnonymizationStrategy, StrategyInfo};
use geo::Meters;
use std::fmt;

/// An ordered pool of candidate anonymization strategies.
///
/// Candidate order is part of the pool's contract: selection reports index
/// into it, and deterministic tie-breaking prefers earlier candidates.
#[derive(Default)]
pub struct StrategyPool {
    candidates: Vec<Box<dyn AnonymizationStrategy>>,
}

impl fmt::Debug for StrategyPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.candidates.iter().map(|c| c.info()))
            .finish()
    }
}

impl StrategyPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's default *publication* pool: every mechanism family at
    /// several parameter settings, **excluding** the identity control (a
    /// release should never be a no-op).
    ///
    /// This is the pool [`crate::pipeline::PrivApi`] searches on `publish`.
    ///
    /// # Example
    ///
    /// ```
    /// use privapi::pool::StrategyPool;
    ///
    /// let pool = StrategyPool::default_pool();
    /// assert!(!pool.is_empty());
    /// // Candidate order is stable: reports index into it.
    /// let names: Vec<String> = pool.infos().iter().map(|i| i.name.clone()).collect();
    /// assert!(names.contains(&"speed-smoothing".to_string()));
    /// assert!(!names.contains(&"identity".to_string()));
    /// ```
    pub fn default_pool() -> Self {
        Self::new()
            .with_speed_smoothing(&[50.0, 100.0, 200.0])
            .expect("static params")
            .with_geo_indistinguishability(&[0.1, 0.01, 0.005])
            .expect("static params")
            .with_spatial_cloaking(&[250.0, 500.0])
            .expect("static params")
            .with_gaussian_perturbation(&[100.0, 300.0])
            .expect("static params")
            .with_temporal_downsampling(&[600])
            .expect("static params")
    }

    /// The *measurement* grid of the E1/E3 experiments: the identity
    /// control, a geo-indistinguishability sweep (including the practical
    /// ε = ln 4 / 200 m setting and the strong ε = 0.001 extreme), a
    /// speed-smoothing sweep and one representative of each remaining
    /// family.
    pub fn evaluation_grid() -> Self {
        let geo_i_practical =
            GeoIndistinguishability::for_radius(Meters::new(200.0)).expect("static params");
        let mut pool = Self::new().with_identity();
        pool.push(Box::new(
            GeoIndistinguishability::new(0.1).expect("static params"),
        ));
        pool.push(Box::new(
            GeoIndistinguishability::new(0.01).expect("static params"),
        ));
        pool.push(Box::new(geo_i_practical));
        pool.push(Box::new(
            GeoIndistinguishability::new(0.005).expect("static params"),
        ));
        pool.push(Box::new(
            GeoIndistinguishability::new(0.001).expect("static params"),
        ));
        pool.with_speed_smoothing(&[50.0, 100.0, 200.0, 500.0])
            .expect("static params")
            .with_spatial_cloaking(&[250.0])
            .expect("static params")
            .with_gaussian_perturbation(&[200.0])
            .expect("static params")
            .with_temporal_downsampling(&[600])
            .expect("static params")
    }

    /// Appends one strategy.
    pub fn push(&mut self, strategy: Box<dyn AnonymizationStrategy>) {
        self.candidates.push(strategy);
    }

    /// Appends one strategy; returns `self` for chaining.
    pub fn with(mut self, strategy: Box<dyn AnonymizationStrategy>) -> Self {
        self.push(strategy);
        self
    }

    /// Appends the identity (no-protection) control.
    pub fn with_identity(self) -> Self {
        self.with(Box::new(Identity::new()))
    }

    /// Appends a [`SpeedSmoothing`] candidate per ε (metres).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for a non-positive ε.
    pub fn with_speed_smoothing(mut self, epsilons_m: &[f64]) -> Result<Self, PrivapiError> {
        for &eps in epsilons_m {
            self.push(Box::new(SpeedSmoothing::new(Meters::new(eps))?));
        }
        Ok(self)
    }

    /// Appends a [`GeoIndistinguishability`] candidate per ε (per metre).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for a non-positive ε.
    pub fn with_geo_indistinguishability(
        mut self,
        epsilons: &[f64],
    ) -> Result<Self, PrivapiError> {
        for &eps in epsilons {
            self.push(Box::new(GeoIndistinguishability::new(eps)?));
        }
        Ok(self)
    }

    /// Appends a [`SpatialCloaking`] candidate per cell size (metres).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for a non-positive cell.
    pub fn with_spatial_cloaking(mut self, cells_m: &[f64]) -> Result<Self, PrivapiError> {
        for &cell in cells_m {
            self.push(Box::new(SpatialCloaking::new(Meters::new(cell))?));
        }
        Ok(self)
    }

    /// Appends a [`GaussianPerturbation`] candidate per σ (metres).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for a non-positive σ.
    pub fn with_gaussian_perturbation(
        mut self,
        sigmas_m: &[f64],
    ) -> Result<Self, PrivapiError> {
        for &sigma in sigmas_m {
            self.push(Box::new(GaussianPerturbation::new(Meters::new(sigma))?));
        }
        Ok(self)
    }

    /// Appends a [`TemporalDownsampling`] candidate per window (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::InvalidParameter`] for a non-positive window.
    pub fn with_temporal_downsampling(
        mut self,
        windows_s: &[i64],
    ) -> Result<Self, PrivapiError> {
        for &window in windows_s {
            self.push(Box::new(TemporalDownsampling::new(window)?));
        }
        Ok(self)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the pool has no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&dyn AnonymizationStrategy> {
        self.candidates.get(index).map(Box::as_ref)
    }

    /// Iterates candidates in pool order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn AnonymizationStrategy> {
        self.candidates.iter().map(Box::as_ref)
    }

    /// Identity cards of every candidate, in pool order.
    pub fn infos(&self) -> Vec<StrategyInfo> {
        self.candidates.iter().map(|c| c.info()).collect()
    }

    /// Consumes the pool into its boxed candidates.
    pub fn into_candidates(self) -> Vec<Box<dyn AnonymizationStrategy>> {
        self.candidates
    }
}

impl From<Vec<Box<dyn AnonymizationStrategy>>> for StrategyPool {
    fn from(candidates: Vec<Box<dyn AnonymizationStrategy>>) -> Self {
        Self { candidates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_covers_all_families_without_identity() {
        let pool = StrategyPool::default_pool();
        assert_eq!(pool.len(), 11);
        let names: Vec<String> = pool.infos().iter().map(|i| i.name.clone()).collect();
        for family in [
            "speed-smoothing",
            "geo-indistinguishability",
            "spatial-cloaking",
            "gaussian",
            "temporal-downsampling",
        ] {
            assert!(names.iter().any(|n| n == family), "missing {family}");
        }
        assert!(!names.iter().any(|n| n == "identity"));
    }

    #[test]
    fn evaluation_grid_matches_e1_mechanisms() {
        let pool = StrategyPool::evaluation_grid();
        assert_eq!(pool.len(), 13);
        let infos = pool.infos();
        assert_eq!(infos[0].name, "identity");
        // The practical geo-I setting carrying the paper's headline number.
        assert!(
            infos.iter().any(|i| i.params.contains("0.0069")),
            "missing the eps = ln4/200m row: {infos:?}"
        );
    }

    #[test]
    fn grid_builders_reject_bad_parameters() {
        assert!(StrategyPool::new().with_speed_smoothing(&[-1.0]).is_err());
        assert!(StrategyPool::new()
            .with_geo_indistinguishability(&[0.0])
            .is_err());
        assert!(StrategyPool::new()
            .with_temporal_downsampling(&[0])
            .is_err());
    }

    #[test]
    fn pool_order_is_insertion_order() {
        let pool = StrategyPool::new()
            .with_identity()
            .with_speed_smoothing(&[100.0])
            .unwrap();
        assert_eq!(pool.get(0).unwrap().info().name, "identity");
        assert_eq!(pool.get(1).unwrap().info().name, "speed-smoothing");
        assert!(pool.get(2).is_none());
        assert_eq!(pool.iter().count(), 2);
    }
}
