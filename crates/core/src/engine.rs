//! The parallel, cache-aware strategy-evaluation engine.
//!
//! "Thanks to its knowledge on the whole dataset it can use an optimal
//! anonymization strategy on mobility data while still offering a
//! satisfactory level of utility" (paper, §1). Searching the strategy pool
//! is the middleware's hottest path: every candidate must be anonymized,
//! self-attacked and utility-scored. Two structural costs dominate a naive
//! loop, and this module removes both:
//!
//! 1. **Per-candidate recomputation of original-dataset projections.** The
//!    objective's view of the *original* dataset — the crowded-places grid
//!    and top-k set, the traffic grid, day split and ground-truth histogram
//!    — depends only on the original data, yet the legacy selector rebuilt
//!    it inside `utility_of` for every candidate. [`EvalContext`] builds
//!    each projection exactly once and shares it across the pool.
//! 2. **Sequential candidate evaluation.** Candidates are independent given
//!    the shared context, so [`EvaluationEngine`] scores them with rayon's
//!    data parallelism. Results are collected in pool order and the winner
//!    is chosen by the total, deterministic `(utility, −recall, index)`
//!    ordering, so the parallel report is **identical** to the sequential
//!    one — verified by a property test over seeds.

use crate::attack::{PoiAttack, PoiAttackReport, ReferencePois};
use crate::error::PrivapiError;
use crate::metrics::{spatial_distortion, CrowdedBaseline, TrafficBaseline};
use crate::pool::StrategyPool;
use crate::selection::{CandidateResult, Objective, SelectionReport};
use mobility::Dataset;
use rayon::prelude::*;

/// How the engine schedules candidate evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One candidate at a time, in pool order.
    Sequential,
    /// All candidates fanned out over the available cores (the default).
    #[default]
    Parallel,
}

/// Shared, read-only per-objective projections of the original dataset,
/// computed once per selection run and reused by every candidate.
#[derive(Debug)]
pub struct EvalContext<'a> {
    original: &'a Dataset,
    reference: &'a ReferencePois,
    baseline: ObjectiveBaseline,
}

/// The objective-specific precomputation.
#[derive(Debug)]
enum ObjectiveBaseline {
    /// Crowded places: grid + original top-k hot cells.
    Crowded(CrowdedBaseline),
    /// Traffic: grid, day split and final-day ground truth.
    Traffic(TrafficBaseline),
    /// Distortion pairs original and protected trajectories directly;
    /// there is no original-only projection worth caching.
    Distortion,
    /// The baseline could not be built (e.g. single-day data under the
    /// traffic objective). Mirrors the legacy per-candidate error path:
    /// every candidate scores utility 0.
    Unavailable,
}

impl<'a> EvalContext<'a> {
    /// Builds the shared projections for `objective` over `original`.
    ///
    /// `reference` is the POI set privacy is scored against — usually the
    /// attack's own extraction from the raw data.
    pub fn new(
        original: &'a Dataset,
        reference: &'a ReferencePois,
        objective: Objective,
    ) -> Self {
        let baseline = match objective {
            Objective::CrowdedPlaces { cell, k } => CrowdedBaseline::new(original, cell, k)
                .map(ObjectiveBaseline::Crowded)
                .unwrap_or(ObjectiveBaseline::Unavailable),
            Objective::Traffic { cell } => TrafficBaseline::new(original, cell)
                .map(ObjectiveBaseline::Traffic)
                .unwrap_or(ObjectiveBaseline::Unavailable),
            Objective::Distortion => ObjectiveBaseline::Distortion,
        };
        Self {
            original,
            reference,
            baseline,
        }
    }

    /// The original dataset under evaluation.
    pub fn original(&self) -> &Dataset {
        self.original
    }

    /// The reference POIs privacy is scored against.
    pub fn reference(&self) -> &ReferencePois {
        self.reference
    }

    /// Scores the utility of one protected candidate (in `[0, 1]`) against
    /// the precomputed original-side projections.
    pub fn utility_of(&self, protected: &Dataset) -> f64 {
        match &self.baseline {
            ObjectiveBaseline::Crowded(b) => b.score(protected).precision_at_k,
            ObjectiveBaseline::Traffic(b) => b.score(protected).utility_score(),
            ObjectiveBaseline::Distortion => spatial_distortion(self.original, protected)
                .map(|r| r.utility_score())
                .unwrap_or(0.0),
            ObjectiveBaseline::Unavailable => 0.0,
        }
    }
}

/// Picks the winner index under the total `(utility, −recall, index)` order.
///
/// Among feasible candidates: highest utility wins; equal utility falls back
/// to lowest POI recall (more privacy at no utility cost); a full tie keeps
/// the lowest pool index. Because the order is total and independent of
/// evaluation schedule, parallel and sequential runs agree bit-for-bit.
pub fn choose_winner(candidates: &[CandidateResult]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (index, candidate) in candidates.iter().enumerate() {
        if !candidate.feasible {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                let incumbent = &candidates[b];
                candidate.utility > incumbent.utility
                    || (candidate.utility == incumbent.utility
                        && candidate.poi_recall < incumbent.poi_recall)
            }
        };
        if better {
            best = Some(index);
        }
    }
    best
}

/// The strategy-evaluation engine.
///
/// Owns the run parameters (objective, privacy floor, seed, attack) and
/// turns a [`StrategyPool`] plus a dataset into a [`SelectionReport`].
#[derive(Debug)]
pub struct EvaluationEngine {
    attack: PoiAttack,
    objective: Objective,
    privacy_floor: f64,
    seed: u64,
    mode: ExecutionMode,
}

impl EvaluationEngine {
    /// Creates an engine evaluating `objective` under `privacy_floor`
    /// (maximum tolerated POI recall, clamped to `[0, 1]`); `seed` drives
    /// all randomized candidates. Parallel by default.
    pub fn new(objective: Objective, privacy_floor: f64, seed: u64) -> Self {
        Self {
            attack: PoiAttack::default(),
            objective,
            privacy_floor: privacy_floor.clamp(0.0, 1.0),
            seed,
            mode: ExecutionMode::default(),
        }
    }

    /// Replaces the attack used to score privacy.
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the execution mode (parallel by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The configured privacy floor.
    pub fn privacy_floor(&self) -> f64 {
        self.privacy_floor
    }

    /// Evaluates every candidate of `pool` against `dataset` and reports
    /// per-candidate privacy/utility plus the deterministic winner.
    ///
    /// The report's `candidates` are in pool order and its `chosen` index
    /// follows the `(utility, −recall, index)` ordering of
    /// [`choose_winner`], regardless of [`ExecutionMode`]. A report with no
    /// feasible candidate has `chosen == None` (turning that into an error
    /// is the caller's policy — see [`crate::selection::StrategySelector`]).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the dataset
    /// is empty.
    pub fn evaluate(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<SelectionReport, PrivapiError> {
        Ok(self.sweep(pool, dataset, reference)?.0)
    }

    /// Like [`EvaluationEngine::evaluate`], but also returns the winner's
    /// release artifacts: its protected dataset and full privacy report.
    ///
    /// The privacy report is the one measured during the sweep; only the
    /// winner's `anonymize` is re-run (deterministic per `(dataset, seed)`,
    /// so the release is bit-identical to what was scored) — this keeps
    /// memory flat at thread-count × dataset instead of retaining every
    /// candidate's protected copy, while sparing callers the *expensive*
    /// duplicate, a second self-attack over the release.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the dataset
    /// is empty.
    pub fn evaluate_release(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<(SelectionReport, Option<WinnerRelease>), PrivapiError> {
        let (report, privacy_reports) = self.sweep(pool, dataset, reference)?;
        let winner = report.chosen.map(|index| WinnerRelease {
            index,
            dataset: pool
                .get(index)
                .expect("chosen index in pool")
                .anonymize(dataset, self.seed),
            privacy: privacy_reports[index].clone(),
        });
        Ok((report, winner))
    }

    /// Scores the whole pool and assembles the report plus the full
    /// per-candidate privacy measurements (pool order).
    fn sweep(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<(SelectionReport, Vec<PoiAttackReport>), PrivapiError> {
        if pool.is_empty() || dataset.record_count() == 0 {
            return Err(PrivapiError::EmptyDataset);
        }
        let context = EvalContext::new(dataset, reference, self.objective);
        let candidates: Vec<&dyn crate::strategy::AnonymizationStrategy> =
            pool.iter().collect();
        let scored: Vec<(CandidateResult, PoiAttackReport)> = match self.mode {
            ExecutionMode::Sequential => candidates
                .iter()
                .map(|s| self.evaluate_candidate(*s, &context))
                .collect(),
            ExecutionMode::Parallel => candidates
                .par_iter()
                .map(|s| self.evaluate_candidate(*s, &context))
                .collect(),
        };
        let (results, privacy_reports): (Vec<_>, Vec<_>) = scored.into_iter().unzip();
        let chosen = choose_winner(&results);
        let report = SelectionReport {
            candidates: results,
            chosen,
            privacy_floor: self.privacy_floor,
            objective: self.objective,
        };
        Ok((report, privacy_reports))
    }

    /// Anonymize → self-attack → utility for one candidate.
    fn evaluate_candidate(
        &self,
        strategy: &dyn crate::strategy::AnonymizationStrategy,
        context: &EvalContext<'_>,
    ) -> (CandidateResult, PoiAttackReport) {
        let protected = strategy.anonymize(context.original(), self.seed);
        let privacy = self
            .attack
            .evaluate_reference(&protected, context.reference());
        let utility = context.utility_of(&protected);
        let result = CandidateResult {
            info: strategy.info(),
            poi_recall: privacy.recall,
            utility,
            feasible: privacy.recall <= self.privacy_floor,
        };
        (result, privacy)
    }
}

/// The winning candidate's release artifacts from
/// [`EvaluationEngine::evaluate_release`].
#[derive(Debug, Clone)]
pub struct WinnerRelease {
    /// Winner index into the evaluated pool (equals the report's `chosen`).
    pub index: usize,
    /// The winner's protected dataset, ready to publish.
    pub dataset: Dataset,
    /// The winner's full privacy measurement from the sweep.
    pub privacy: PoiAttackReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::reference_from_truth;
    use crate::strategy::StrategyInfo;
    use geo::Meters;
    use mobility::gen::{CityModel, PopulationConfig};

    fn row(utility: f64, recall: f64, feasible: bool) -> CandidateResult {
        CandidateResult {
            info: StrategyInfo {
                name: "fake".into(),
                params: String::new(),
            },
            poi_recall: recall,
            utility,
            feasible,
        }
    }

    #[test]
    fn winner_prefers_highest_utility() {
        let rows = [
            row(0.2, 0.1, true),
            row(0.9, 0.2, true),
            row(0.5, 0.0, true),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
    }

    #[test]
    fn winner_breaks_utility_ties_by_lower_recall() {
        let rows = [
            row(0.9, 0.20, true),
            row(0.9, 0.05, true),
            row(0.9, 0.10, true),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
    }

    #[test]
    fn winner_breaks_full_ties_by_lowest_index() {
        let rows = [
            row(0.9, 0.1, true),
            row(0.9, 0.1, true),
            row(0.9, 0.1, true),
        ];
        assert_eq!(choose_winner(&rows), Some(0));
    }

    #[test]
    fn winner_ignores_infeasible_candidates() {
        let rows = [
            row(1.0, 0.9, false),
            row(0.3, 0.1, true),
            row(1.0, 0.9, false),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
        let none = [row(1.0, 0.9, false)];
        assert_eq!(choose_winner(&none), None);
    }

    #[test]
    fn winner_is_schedule_independent() {
        // The order relation must not depend on which comparison runs
        // first: reversing the slice maps the winner to the mirrored index
        // except for ties, which stay at the lowest original index.
        let rows = [
            row(0.4, 0.3, true),
            row(0.9, 0.2, true),
            row(0.4, 0.1, true),
        ];
        let mut reversed = rows.to_vec();
        reversed.reverse();
        assert_eq!(choose_winner(&rows), Some(1));
        assert_eq!(choose_winner(&reversed), Some(1));
    }

    #[test]
    fn parallel_and_sequential_reports_are_identical() {
        let data =
            CityModel::builder()
                .seed(11)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 4,
                    days: 3,
                    sampling_interval_s: 180,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.4,
                });
        let reference = reference_from_truth(&data.truth);
        let pool = StrategyPool::default_pool();
        let objective = Objective::CrowdedPlaces {
            cell: Meters::new(250.0),
            k: 10,
        };
        let sequential = EvaluationEngine::new(objective, 0.25, 7)
            .with_mode(ExecutionMode::Sequential)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        let parallel = EvaluationEngine::new(objective, 0.25, 7)
            .with_mode(ExecutionMode::Parallel)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_pool_and_dataset_error() {
        let reference = ReferencePois::new();
        let engine = EvaluationEngine::new(Objective::Distortion, 0.5, 1);
        assert!(matches!(
            engine.evaluate(&StrategyPool::new(), &Dataset::new(), &reference),
            Err(PrivapiError::EmptyDataset)
        ));
        assert!(matches!(
            engine.evaluate(&StrategyPool::default_pool(), &Dataset::new(), &reference),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn unavailable_baseline_scores_zero_utility() {
        // Single-day data cannot back a traffic forecast: the legacy path
        // scored every candidate 0.0; the shared context must agree.
        let data =
            CityModel::builder()
                .seed(5)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 3,
                    days: 1,
                    sampling_interval_s: 300,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.2,
                });
        let reference = reference_from_truth(&data.truth);
        let pool = StrategyPool::new().with_identity();
        let report = EvaluationEngine::new(
            Objective::Traffic {
                cell: Meters::new(500.0),
            },
            1.0,
            1,
        )
        .evaluate(&pool, &data.dataset, &reference)
        .unwrap();
        assert!(report.candidates.iter().all(|c| c.utility == 0.0));
    }
}
