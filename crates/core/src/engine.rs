//! The parallel, cache-aware strategy-evaluation engine.
//!
//! "Thanks to its knowledge on the whole dataset it can use an optimal
//! anonymization strategy on mobility data while still offering a
//! satisfactory level of utility" (paper, §1). Searching the strategy pool
//! is the middleware's hottest path: every candidate must be anonymized,
//! self-attacked and utility-scored. Two structural costs dominate a naive
//! loop, and this module removes both:
//!
//! 1. **Per-candidate recomputation of original-dataset projections.** The
//!    objective's view of the *original* dataset — the crowded-places grid
//!    and top-k set, the traffic grid, day split and ground-truth histogram
//!    — depends only on the original data, yet the legacy selector rebuilt
//!    it inside `utility_of` for every candidate. [`EvalContext`] builds
//!    each projection exactly once and shares it across the pool.
//! 2. **Sequential candidate evaluation.** Candidates are independent given
//!    the shared context, so [`EvaluationEngine`] scores them with rayon's
//!    data parallelism. Results are collected in pool order and the winner
//!    is chosen by the total, deterministic `(utility, −recall, index)`
//!    ordering, so the parallel report is **identical** to the sequential
//!    one — verified by a property test over seeds.
//! 3. **Per-candidate original-side attack work.** The reference POIs and
//!    their spatial index depend only on the original dataset, yet the
//!    legacy publish path extracted them outside the engine and every
//!    candidate rebuilt its own matching scan. [`EvalContext`] now carries
//!    the original extraction (per-user [`UserAttackShard`]s, built at most
//!    once per run via [`EvalContext::extracting`]) and a shared
//!    [`ReferenceIndex`] every candidate probes.

use crate::attack::{
    PoiAttack, PoiAttackReport, ReferenceIndex, ReferencePois, UserAttackShard,
};
use crate::error::PrivapiError;
use crate::metrics::{spatial_distortion, CrowdedBaseline, TrafficBaseline};
use crate::pool::StrategyPool;
use crate::selection::{CandidateResult, Objective, SelectionReport};
use crate::streaming::{
    CandidateDelta, CandidateState, StrategyDonor, StrategySessionCache, WindowUpdate,
};
use geo::BoundingBox;
use mobility::{Dataset, Trajectory, UserId};
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the engine schedules candidate evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One candidate at a time, in pool order.
    Sequential,
    /// All candidates fanned out over the available cores (the default).
    #[default]
    Parallel,
}

/// Shared, read-only original-dataset state, computed once per selection
/// run and reused by every candidate:
///
/// * the per-objective utility projection (crowded/traffic baselines);
/// * the reference POIs privacy is scored against — either borrowed from
///   the caller or **extracted here exactly once**
///   ([`EvalContext::extracting`]), together with the per-user
///   [`UserAttackShard`]s the extraction decomposed into;
/// * the [`ReferenceIndex`] bucketing those POIs for neighbor-cell matching,
///   probed by every candidate instead of rebuilt per candidate.
#[derive(Debug)]
pub struct EvalContext<'a> {
    original: &'a Dataset,
    reference: Cow<'a, ReferencePois>,
    shards: Option<Vec<UserAttackShard>>,
    reference_index: Cow<'a, ReferenceIndex>,
    baseline: ObjectiveBaseline,
    /// The caller's per-user decomposition of `original` (shared trajectory
    /// handles, prefix order) — set on the streaming path so candidate
    /// refreshes can re-anonymize one user against a minimal view instead
    /// of scanning the whole prefix. `None` on the batch paths.
    by_user: Option<&'a BTreeMap<UserId, Vec<Arc<Trajectory>>>>,
    /// `original`'s bounding box, when the caller already tracks it — the
    /// pin for grid-anchored per-user mini-views.
    original_bbox: Option<BoundingBox>,
}

/// The objective-specific precomputation over the original dataset: what
/// [`EvalContext::utility_of`] scores every candidate against. Built once
/// per batch run by the context itself, or folded forward window to window
/// by the streaming session cache
/// ([`crate::streaming::PopulationCache`]) and handed to
/// [`EvalContext::from_cache`].
#[derive(Debug)]
pub enum ObjectiveBaseline {
    /// Crowded places: grid + original top-k hot cells.
    Crowded(CrowdedBaseline),
    /// Traffic: grid, day split and final-day ground truth.
    Traffic(TrafficBaseline),
    /// Distortion pairs original and protected trajectories directly;
    /// there is no original-only projection worth caching.
    Distortion,
    /// The baseline could not be built (e.g. single-day data under the
    /// traffic objective). Mirrors the legacy per-candidate error path:
    /// every candidate scores utility 0.
    Unavailable,
}

impl ObjectiveBaseline {
    /// Precomputes the original-side projection for `objective`.
    pub(crate) fn build(original: &Dataset, objective: Objective) -> Self {
        match objective {
            Objective::CrowdedPlaces { cell, k } => CrowdedBaseline::new(original, cell, k)
                .map(ObjectiveBaseline::Crowded)
                .unwrap_or(ObjectiveBaseline::Unavailable),
            Objective::Traffic { cell } => TrafficBaseline::new(original, cell)
                .map(ObjectiveBaseline::Traffic)
                .unwrap_or(ObjectiveBaseline::Unavailable),
            Objective::Distortion => ObjectiveBaseline::Distortion,
        }
    }
}

impl<'a> EvalContext<'a> {
    /// Builds the shared projections for `objective` over `original`,
    /// scoring privacy against a caller-supplied `reference` (usually the
    /// attack's own extraction from the raw data, or ground truth).
    ///
    /// `attack` supplies the match distance the [`ReferenceIndex`] is keyed
    /// with — pass the same attack the engine will evaluate with.
    pub fn new(
        attack: &PoiAttack,
        original: &'a Dataset,
        reference: &'a ReferencePois,
        objective: Objective,
    ) -> Self {
        let reference_index = attack.index_reference(reference);
        Self {
            original,
            reference: Cow::Borrowed(reference),
            shards: None,
            reference_index: Cow::Owned(reference_index),
            baseline: ObjectiveBaseline::build(original, objective),
            by_user: None,
            original_bbox: None,
        }
    }

    /// Builds a context around *cached* extraction state: the reference
    /// POIs and their spatial index come from a caller-maintained cache
    /// (the streaming publisher's session cache, amended window by window)
    /// instead of being extracted or indexed here.
    ///
    /// The objective `baseline` is caller-supplied too: the streaming
    /// session cache folds it forward window to window
    /// (`PopulationCache::baseline_for`) instead of
    /// re-projecting the whole accumulated prefix here. This is how the
    /// engine advances from one day window to the next with warm
    /// original-side state: zero extraction work for unchanged users,
    /// baseline work proportional to the new window's records.
    pub fn from_cache(
        original: &'a Dataset,
        reference: &'a ReferencePois,
        reference_index: &'a ReferenceIndex,
        baseline: ObjectiveBaseline,
    ) -> Self {
        Self {
            original,
            reference: Cow::Borrowed(reference),
            shards: None,
            reference_index: Cow::Borrowed(reference_index),
            baseline,
            by_user: None,
            original_bbox: None,
        }
    }

    /// Attaches the caller's per-user decomposition of the original prefix
    /// (and its tracked bounding box) so candidate refreshes can
    /// re-anonymize single users against minimal views — the streaming
    /// publish path's O(active users) lever.
    pub(crate) fn with_population(
        mut self,
        by_user: &'a BTreeMap<UserId, Vec<Arc<Trajectory>>>,
        bbox: Option<BoundingBox>,
    ) -> Self {
        self.by_user = Some(by_user);
        self.original_bbox = bbox;
        self
    }

    /// Like [`EvalContext::new`], but the context *owns* the reference:
    /// `attack` extracts the original dataset's per-user shards here —
    /// exactly once per selection run — and the reference POIs and their
    /// index are derived from those shards. This is the publish path: no
    /// caller-side extraction, no duplicate original-side attack.
    ///
    /// The full shards (dwell fields included) are retained for the run's
    /// lifetime: they are the cache unit the streaming/incremental
    /// publication path (ROADMAP) reuses across per-day releases, and
    /// their memory is bounded by the original dataset's visited-cell
    /// count — small next to the protected dataset copies the sweep holds
    /// per worker. Callers that only need matching can stay on
    /// [`EvalContext::new`], which stores no shards.
    pub fn extracting(attack: &PoiAttack, original: &'a Dataset, objective: Objective) -> Self {
        let shards = attack.extract_shards(original);
        let reference: ReferencePois =
            shards.iter().map(|s| (s.user, s.pois.clone())).collect();
        let reference_index = attack.index_reference(&reference);
        Self {
            original,
            reference: Cow::Owned(reference),
            shards: Some(shards),
            reference_index: Cow::Owned(reference_index),
            baseline: ObjectiveBaseline::build(original, objective),
            by_user: None,
            original_bbox: None,
        }
    }

    /// The original dataset under evaluation.
    pub fn original(&self) -> &Dataset {
        self.original
    }

    /// The reference POIs privacy is scored against.
    pub fn reference(&self) -> &ReferencePois {
        &self.reference
    }

    /// The spatial index over the reference POIs, shared by every
    /// candidate evaluation.
    pub fn reference_index(&self) -> &ReferenceIndex {
        &self.reference_index
    }

    /// The original dataset's per-user attack shards, when this context
    /// performed the extraction itself ([`EvalContext::extracting`]).
    pub fn shards(&self) -> Option<&[UserAttackShard]> {
        self.shards.as_deref()
    }

    /// The objective baseline candidates are scored against.
    pub(crate) fn baseline(&self) -> &ObjectiveBaseline {
        &self.baseline
    }

    /// The caller's per-user decomposition of the original prefix, when
    /// attached ([`EvalContext::with_population`]).
    pub(crate) fn original_by_user(&self) -> Option<&BTreeMap<UserId, Vec<Arc<Trajectory>>>> {
        self.by_user
    }

    /// The original prefix's tracked bounding box, when attached.
    pub(crate) fn original_bbox(&self) -> Option<BoundingBox> {
        self.original_bbox
    }

    /// Scores the utility of one protected candidate (in `[0, 1]`) against
    /// the precomputed original-side projections.
    pub fn utility_of(&self, protected: &Dataset) -> f64 {
        match &self.baseline {
            ObjectiveBaseline::Crowded(b) => b.score(protected).precision_at_k,
            ObjectiveBaseline::Traffic(b) => b.score(protected).utility_score(),
            ObjectiveBaseline::Distortion => spatial_distortion(self.original, protected)
                .map(|r| r.utility_score())
                .unwrap_or(0.0),
            ObjectiveBaseline::Unavailable => 0.0,
        }
    }
}

/// Picks the winner index under the total `(utility, −recall, index)` order.
///
/// Among feasible candidates: highest utility wins; equal utility falls back
/// to lowest POI recall (more privacy at no utility cost); a full tie keeps
/// the lowest pool index. Because the order is total and independent of
/// evaluation schedule, parallel and sequential runs agree bit-for-bit.
pub fn choose_winner(candidates: &[CandidateResult]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (index, candidate) in candidates.iter().enumerate() {
        if !candidate.feasible {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                let incumbent = &candidates[b];
                candidate.utility > incumbent.utility
                    || (candidate.utility == incumbent.utility
                        && candidate.poi_recall < incumbent.poi_recall)
            }
        };
        if better {
            best = Some(index);
        }
    }
    best
}

/// The strategy-evaluation engine.
///
/// Owns the run parameters (objective, privacy floor, seed, attack) and
/// turns a [`StrategyPool`] plus a dataset into a [`SelectionReport`].
#[derive(Debug)]
pub struct EvaluationEngine {
    attack: PoiAttack,
    objective: Objective,
    privacy_floor: f64,
    seed: u64,
    mode: ExecutionMode,
}

impl EvaluationEngine {
    /// Creates an engine evaluating `objective` under `privacy_floor`
    /// (maximum tolerated POI recall, clamped to `[0, 1]`); `seed` drives
    /// all randomized candidates. Parallel by default.
    pub fn new(objective: Objective, privacy_floor: f64, seed: u64) -> Self {
        Self {
            attack: PoiAttack::default(),
            objective,
            privacy_floor: privacy_floor.clamp(0.0, 1.0),
            seed,
            mode: ExecutionMode::default(),
        }
    }

    /// Replaces the attack used to score privacy.
    pub fn with_attack(mut self, attack: PoiAttack) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the execution mode (parallel by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The configured privacy floor.
    pub fn privacy_floor(&self) -> f64 {
        self.privacy_floor
    }

    /// Evaluates every candidate of `pool` against `dataset` and reports
    /// per-candidate privacy/utility plus the deterministic winner.
    ///
    /// The report's `candidates` are in pool order and its `chosen` index
    /// follows the `(utility, −recall, index)` ordering of
    /// [`choose_winner`], regardless of [`ExecutionMode`]. A report with no
    /// feasible candidate has `chosen == None` (turning that into an error
    /// is the caller's policy — see [`crate::selection::StrategySelector`]).
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the dataset
    /// is empty.
    pub fn evaluate(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<SelectionReport, PrivapiError> {
        Self::check_nonempty(pool, dataset)?;
        let context = EvalContext::new(&self.attack, dataset, reference, self.objective);
        Ok(self.sweep(pool, &context).0)
    }

    /// Like [`EvaluationEngine::evaluate`], but also returns the winner's
    /// release artifacts: its protected dataset and full privacy report.
    ///
    /// The privacy report is the one measured during the sweep; only the
    /// winner's `anonymize` is re-run (deterministic per `(dataset, seed)`,
    /// so the release is bit-identical to what was scored) — this keeps
    /// memory flat at thread-count × dataset instead of retaining every
    /// candidate's protected copy, while sparing callers the *expensive*
    /// duplicate, a second self-attack over the release.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the dataset
    /// is empty.
    pub fn evaluate_release(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
        reference: &ReferencePois,
    ) -> Result<(SelectionReport, Option<WinnerRelease>), PrivapiError> {
        Self::check_nonempty(pool, dataset)?;
        let context = EvalContext::new(&self.attack, dataset, reference, self.objective);
        Ok(self.release_from_context(pool, &context))
    }

    /// The publish path: extracts the original dataset's POI exposure
    /// **exactly once** (inside [`EvalContext::extracting`]), scores every
    /// candidate against it, and returns the winner's release artifacts.
    ///
    /// Unlike [`EvaluationEngine::evaluate_release`], no caller-side
    /// reference extraction is needed — this is what keeps
    /// [`crate::pipeline::PrivApi::publish`] at a single original-side
    /// attack per run.
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the dataset
    /// is empty.
    pub fn evaluate_release_extracting(
        &self,
        pool: &StrategyPool,
        dataset: &Dataset,
    ) -> Result<(SelectionReport, Option<WinnerRelease>), PrivapiError> {
        Self::check_nonempty(pool, dataset)?;
        let context = EvalContext::extracting(&self.attack, dataset, self.objective);
        Ok(self.release_from_context(pool, &context))
    }

    /// Evaluates every candidate of `pool` against a caller-prepared
    /// [`EvalContext`] with **both** streaming caches warm, and returns
    /// the winner's release artifacts.
    ///
    /// This is the streaming publish path. The context carries cached
    /// *original-side* extraction state ([`EvalContext::from_cache`]) that
    /// a session cache amends across day windows, so no original-side
    /// extraction happens here at all. `strategies` carries the
    /// *protected-side* per-candidate caches: each candidate is refreshed
    /// per its declared [`crate::strategy::UserLocality`] — only the
    /// `update`-listed changed users are re-anonymized and re-extracted
    /// for local candidates, while non-local candidates fall back to the
    /// full anonymize + self-attack. The winner's release dataset is
    /// re-assembled from its cache by pure clones instead of re-running
    /// its strategy over the whole prefix.
    ///
    /// The report is identical to what
    /// [`EvaluationEngine::evaluate_release_extracting`] would produce on
    /// the same dataset — verified by the streaming parity property tests.
    /// The per-candidate audit of what was reused lands in
    /// [`StrategySessionCache::last_deltas`].
    ///
    /// # Errors
    ///
    /// Returns [`PrivapiError::EmptyDataset`] when the pool or the
    /// context's dataset is empty.
    pub fn evaluate_release_with(
        &self,
        pool: &StrategyPool,
        context: &EvalContext<'_>,
        strategies: &mut StrategySessionCache,
        update: &WindowUpdate,
        donor: Option<&StrategyDonor>,
    ) -> Result<(SelectionReport, Option<WinnerRelease>), PrivapiError> {
        Self::check_nonempty(pool, context.original())?;
        let mut sweep_span = obs::span("engine.sweep");
        sweep_span.set_attr("candidates", pool.len());
        strategies.align(pool, self.seed, &self.attack);
        // Hoisted once per sweep: every candidate reuses the same user
        // list instead of re-deriving it from the prefix.
        let all_users: Vec<UserId> = match context.original_by_user() {
            Some(by_user) => by_user.keys().copied().collect(),
            None => context.original().users(),
        };
        let candidates: Vec<&dyn crate::strategy::AnonymizationStrategy> =
            pool.iter().collect();
        let mut work: Vec<(usize, &mut CandidateState)> =
            strategies.states.iter_mut().enumerate().collect();
        let eval = |slot: &mut (usize, &mut CandidateState)| {
            let (index, state) = slot;
            self.evaluate_candidate_cached(
                *index,
                candidates[*index],
                state,
                context,
                update,
                &all_users,
                donor,
            )
        };
        let scored: Vec<(CandidateResult, PoiAttackReport, CandidateDelta)> = match self.mode {
            ExecutionMode::Sequential => work.iter_mut().map(eval).collect(),
            ExecutionMode::Parallel => work.par_iter_mut().map(eval).collect(),
        };
        let mut results = Vec::with_capacity(scored.len());
        let mut privacy_reports = Vec::with_capacity(scored.len());
        let mut deltas = Vec::with_capacity(scored.len());
        for (result, privacy, delta) in scored {
            results.push(result);
            privacy_reports.push(privacy);
            deltas.push(delta);
        }
        strategies.last_deltas = deltas;
        record_candidate_deltas(&strategies.last_deltas);
        let chosen = choose_winner(&results);
        let report = SelectionReport {
            candidates: results,
            chosen,
            privacy_floor: self.privacy_floor,
            objective: self.objective,
        };
        let winner = report.chosen.map(|index| WinnerRelease {
            index,
            // Cached candidates re-materialize the release by cloning their
            // per-user protected trajectories; only an uncached (non-local
            // or fallback) winner re-runs its strategy over the prefix.
            dataset: strategies.states[index]
                .assembled_release(context.original())
                .unwrap_or_else(|| {
                    pool.get(index)
                        .expect("chosen index in pool")
                        .anonymize(context.original(), self.seed)
                }),
            privacy: privacy_reports[index].clone(),
        });
        Ok((report, winner))
    }

    /// One candidate of the cached streaming sweep. Preference order:
    ///
    /// 1. **Adopt a donor state** — when a compatible donor campaign
    ///    already refreshed this slot for the same window, its state is
    ///    pointer-cloned wholesale: zero anonymization and zero extraction
    ///    here. Privacy matching (and the feasibility verdict under *this*
    ///    engine's floor) still runs locally.
    /// 2. **Refresh the local cache** per the declared locality, scoring
    ///    privacy from the cached shards and utility from the incremental
    ///    counts.
    /// 3. **Full fallback** to [`EvaluationEngine::evaluate_candidate`]
    ///    when the candidate cannot be cached.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_candidate_cached(
        &self,
        index: usize,
        strategy: &dyn crate::strategy::AnonymizationStrategy,
        state: &mut CandidateState,
        context: &EvalContext<'_>,
        update: &WindowUpdate,
        all_users: &[UserId],
        donor: Option<&StrategyDonor>,
    ) -> (CandidateResult, PoiAttackReport, CandidateDelta) {
        // Per-candidate evaluation span. In parallel mode these run on
        // rayon workers, so they root at the worker's (empty) span stack
        // rather than under `engine.sweep` — the `candidate` attr keys
        // them back to pool order.
        let mut span = obs::span("engine.candidate");
        span.set_attr("candidate", index);
        if let Some(donated) = donor.and_then(|d| d.state_for(index, &strategy.info())) {
            // `utility_for` is None only when the donated shape cannot be
            // aligned with this prefix — an incompatible donor, which the
            // local refresh path below then handles from scratch.
            if let Some(utility) = donated.utility_for(context) {
                *state = donated.clone();
                let extracted = state.extracted_pois();
                let privacy = self
                    .attack
                    .match_extracted(&extracted, context.reference_index());
                let delta = CandidateDelta {
                    info: strategy.info(),
                    locality: strategy.locality(),
                    users_refreshed: 0,
                    users_reused: 0,
                    users_donated: all_users.len(),
                    shards_refreshed: 0,
                    shards_reused: 0,
                    shards_donated: state.shard_count(),
                    protected_grid_rebuilt: false,
                    full_fallback: false,
                };
                let result = CandidateResult {
                    info: strategy.info(),
                    poi_recall: privacy.recall,
                    utility,
                    feasible: privacy.recall <= self.privacy_floor,
                };
                span.set_attr("path", "donated");
                return (result, privacy, delta);
            }
        }
        let (cached, delta) = state.refresh(
            strategy,
            &self.attack,
            context,
            update,
            all_users,
            self.seed,
        );
        match cached {
            Some((extracted, utility)) => {
                let privacy = self
                    .attack
                    .match_extracted(&extracted, context.reference_index());
                let result = CandidateResult {
                    info: strategy.info(),
                    poi_recall: privacy.recall,
                    utility,
                    feasible: privacy.recall <= self.privacy_floor,
                };
                span.set_attr("path", "cached");
                (result, privacy, delta)
            }
            None => {
                let (result, privacy) = self.evaluate_candidate(strategy, context);
                span.set_attr("path", "full");
                (result, privacy, delta)
            }
        }
    }

    /// Shared guard for the public entry points.
    fn check_nonempty(pool: &StrategyPool, dataset: &Dataset) -> Result<(), PrivapiError> {
        if pool.is_empty() || dataset.record_count() == 0 {
            return Err(PrivapiError::EmptyDataset);
        }
        Ok(())
    }

    /// Sweeps the pool and materializes the winner's release.
    fn release_from_context(
        &self,
        pool: &StrategyPool,
        context: &EvalContext<'_>,
    ) -> (SelectionReport, Option<WinnerRelease>) {
        let (report, privacy_reports) = self.sweep(pool, context);
        let winner = report.chosen.map(|index| WinnerRelease {
            index,
            dataset: pool
                .get(index)
                .expect("chosen index in pool")
                .anonymize(context.original(), self.seed),
            privacy: privacy_reports[index].clone(),
        });
        (report, winner)
    }

    /// Scores the whole pool against a prepared context and assembles the
    /// report plus the full per-candidate privacy measurements (pool
    /// order).
    fn sweep(
        &self,
        pool: &StrategyPool,
        context: &EvalContext<'_>,
    ) -> (SelectionReport, Vec<PoiAttackReport>) {
        let candidates: Vec<&dyn crate::strategy::AnonymizationStrategy> =
            pool.iter().collect();
        let scored: Vec<(CandidateResult, PoiAttackReport)> = match self.mode {
            ExecutionMode::Sequential => candidates
                .iter()
                .map(|s| self.evaluate_candidate(*s, context))
                .collect(),
            ExecutionMode::Parallel => candidates
                .par_iter()
                .map(|s| self.evaluate_candidate(*s, context))
                .collect(),
        };
        let (results, privacy_reports): (Vec<_>, Vec<_>) = scored.into_iter().unzip();
        let chosen = choose_winner(&results);
        let report = SelectionReport {
            candidates: results,
            chosen,
            privacy_floor: self.privacy_floor,
            objective: self.objective,
        };
        (report, privacy_reports)
    }

    /// Anonymize → self-attack → utility for one candidate.
    fn evaluate_candidate(
        &self,
        strategy: &dyn crate::strategy::AnonymizationStrategy,
        context: &EvalContext<'_>,
    ) -> (CandidateResult, PoiAttackReport) {
        let protected = strategy.anonymize(context.original(), self.seed);
        let privacy = self
            .attack
            .evaluate_with_index(&protected, context.reference_index());
        let utility = context.utility_of(&protected);
        let result = CandidateResult {
            info: strategy.info(),
            poi_recall: privacy.recall,
            utility,
            feasible: privacy.recall <= self.privacy_floor,
        };
        (result, privacy)
    }
}

/// Re-plumb one sweep's [`CandidateDelta`]s into the `strategy.*` /
/// `engine.*` obs instruments. The delta structs stay the public audit
/// API; the instruments are the machine-readable mirror. A candidate
/// that avoided the full fallback counts as a cache hit.
fn record_candidate_deltas(deltas: &[CandidateDelta]) {
    if !obs::enabled() {
        return;
    }
    for delta in deltas {
        obs::count("strategy.users_refreshed", delta.users_refreshed as u64);
        obs::count("strategy.users_reused", delta.users_reused as u64);
        obs::count("strategy.users_donated", delta.users_donated as u64);
        obs::count("strategy.shards_refreshed", delta.shards_refreshed as u64);
        obs::count("strategy.shards_reused", delta.shards_reused as u64);
        obs::count("strategy.shards_donated", delta.shards_donated as u64);
        obs::count(
            "strategy.grid_rebuilds",
            delta.protected_grid_rebuilt as u64,
        );
        obs::count("strategy.full_fallbacks", delta.full_fallback as u64);
        let hit_or_miss = if delta.full_fallback {
            "engine.cache_misses"
        } else {
            "engine.cache_hits"
        };
        obs::count(hit_or_miss, 1);
    }
    obs::count("engine.candidates_evaluated", deltas.len() as u64);
}

/// The winning candidate's release artifacts from
/// [`EvaluationEngine::evaluate_release`].
#[derive(Debug, Clone)]
pub struct WinnerRelease {
    /// Winner index into the evaluated pool (equals the report's `chosen`).
    pub index: usize,
    /// The winner's protected dataset, ready to publish.
    pub dataset: Dataset,
    /// The winner's full privacy measurement from the sweep.
    pub privacy: PoiAttackReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::reference_from_truth;
    use crate::strategy::StrategyInfo;
    use geo::Meters;
    use mobility::gen::{CityModel, PopulationConfig};

    fn row(utility: f64, recall: f64, feasible: bool) -> CandidateResult {
        CandidateResult {
            info: StrategyInfo {
                name: "fake".into(),
                params: String::new(),
            },
            poi_recall: recall,
            utility,
            feasible,
        }
    }

    #[test]
    fn winner_prefers_highest_utility() {
        let rows = [
            row(0.2, 0.1, true),
            row(0.9, 0.2, true),
            row(0.5, 0.0, true),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
    }

    #[test]
    fn winner_breaks_utility_ties_by_lower_recall() {
        let rows = [
            row(0.9, 0.20, true),
            row(0.9, 0.05, true),
            row(0.9, 0.10, true),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
    }

    #[test]
    fn winner_breaks_full_ties_by_lowest_index() {
        let rows = [
            row(0.9, 0.1, true),
            row(0.9, 0.1, true),
            row(0.9, 0.1, true),
        ];
        assert_eq!(choose_winner(&rows), Some(0));
    }

    #[test]
    fn winner_ignores_infeasible_candidates() {
        let rows = [
            row(1.0, 0.9, false),
            row(0.3, 0.1, true),
            row(1.0, 0.9, false),
        ];
        assert_eq!(choose_winner(&rows), Some(1));
        let none = [row(1.0, 0.9, false)];
        assert_eq!(choose_winner(&none), None);
    }

    #[test]
    fn winner_is_schedule_independent() {
        // The order relation must not depend on which comparison runs
        // first: reversing the slice maps the winner to the mirrored index
        // except for ties, which stay at the lowest original index.
        let rows = [
            row(0.4, 0.3, true),
            row(0.9, 0.2, true),
            row(0.4, 0.1, true),
        ];
        let mut reversed = rows.to_vec();
        reversed.reverse();
        assert_eq!(choose_winner(&rows), Some(1));
        assert_eq!(choose_winner(&reversed), Some(1));
    }

    #[test]
    fn parallel_and_sequential_reports_are_identical() {
        let data =
            CityModel::builder()
                .seed(11)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 4,
                    days: 3,
                    sampling_interval_s: 180,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.4,
                });
        let reference = reference_from_truth(&data.truth);
        let pool = StrategyPool::default_pool();
        let objective = Objective::CrowdedPlaces {
            cell: Meters::new(250.0),
            k: 10,
        };
        let sequential = EvaluationEngine::new(objective, 0.25, 7)
            .with_mode(ExecutionMode::Sequential)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        let parallel = EvaluationEngine::new(objective, 0.25, 7)
            .with_mode(ExecutionMode::Parallel)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn extracting_release_matches_explicit_reference_release() {
        // The publish path (context extracts the reference itself) must
        // produce the same report and release as the legacy shape where the
        // caller extracts the reference and passes it in.
        let data =
            CityModel::builder()
                .seed(23)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 4,
                    days: 3,
                    sampling_interval_s: 180,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.4,
                });
        let pool = StrategyPool::default_pool();
        let objective = Objective::CrowdedPlaces {
            cell: Meters::new(250.0),
            k: 10,
        };
        let engine = EvaluationEngine::new(objective, 0.25, 9);
        let reference = PoiAttack::default().extract(&data.dataset);
        let (explicit_report, explicit_winner) = engine
            .evaluate_release(&pool, &data.dataset, &reference)
            .unwrap();
        let (extracting_report, extracting_winner) = engine
            .evaluate_release_extracting(&pool, &data.dataset)
            .unwrap();
        assert_eq!(explicit_report, extracting_report);
        let (a, b) = (explicit_winner.unwrap(), extracting_winner.unwrap());
        assert_eq!(a.index, b.index);
        assert_eq!(a.privacy, b.privacy);
        assert_eq!(a.dataset, b.dataset);
    }

    #[test]
    fn extracting_context_exposes_shards_and_index() {
        let data =
            CityModel::builder()
                .seed(31)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 3,
                    days: 2,
                    sampling_interval_s: 300,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.3,
                });
        let attack = PoiAttack::default();
        let context = EvalContext::extracting(&attack, &data.dataset, Objective::Distortion);
        let shards = context.shards().expect("extracting context owns shards");
        assert_eq!(shards.len(), data.dataset.user_count());
        assert_eq!(context.reference().len(), shards.len());
        assert_eq!(
            context.reference_index().total_pois(),
            context.reference().values().map(Vec::len).sum::<usize>()
        );
        // A borrowed context carries no shards.
        let reference = attack.extract(&data.dataset);
        let borrowed =
            EvalContext::new(&attack, &data.dataset, &reference, Objective::Distortion);
        assert!(borrowed.shards().is_none());
        assert_eq!(borrowed.reference(), &reference);
    }

    #[test]
    fn empty_pool_and_dataset_error() {
        let reference = ReferencePois::new();
        let engine = EvaluationEngine::new(Objective::Distortion, 0.5, 1);
        assert!(matches!(
            engine.evaluate(&StrategyPool::new(), &Dataset::new(), &reference),
            Err(PrivapiError::EmptyDataset)
        ));
        assert!(matches!(
            engine.evaluate(&StrategyPool::default_pool(), &Dataset::new(), &reference),
            Err(PrivapiError::EmptyDataset)
        ));
    }

    #[test]
    fn unavailable_baseline_scores_zero_utility() {
        // Single-day data cannot back a traffic forecast: the legacy path
        // scored every candidate 0.0; the shared context must agree.
        let data =
            CityModel::builder()
                .seed(5)
                .build()
                .generate_with_truth(&PopulationConfig {
                    users: 3,
                    days: 1,
                    sampling_interval_s: 300,
                    gps_noise_m: 5.0,
                    leisure_probability: 0.2,
                });
        let reference = reference_from_truth(&data.truth);
        let pool = StrategyPool::new().with_identity();
        let report = EvaluationEngine::new(
            Objective::Traffic {
                cell: Meters::new(500.0),
            },
            1.0,
            1,
        )
        .evaluate(&pool, &data.dataset, &reference)
        .unwrap();
        assert!(report.candidates.iter().all(|c| c.utility == 0.0));
    }
}
