//! Property-based tests of the PRIVAPI mechanisms and metrics.

use geo::GeoPoint;
use mobility::{Dataset, LocationRecord, Timestamp, Trajectory, UserId};
use privapi::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A plausible single-user trajectory: time-ordered records in a city box
/// (~5 km × 4 km — keeps path lengths, and therefore test cost, bounded).
fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((45.0..45.05f64, 4.0..4.05f64), 2..40).prop_map(|points| {
        let records: Vec<LocationRecord> = points
            .into_iter()
            .enumerate()
            .map(|(i, (la, lo))| {
                LocationRecord::new(
                    UserId(1),
                    Timestamp::new(i as i64 * 60),
                    GeoPoint::new(la, lo).unwrap(),
                )
            })
            .collect();
        Trajectory::new(UserId(1), records)
    })
}

fn small_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(trajectory(), 1..4).prop_map(|ts| {
        // Re-key each trajectory to its own user.
        let ts: Vec<Trajectory> = ts
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let records: Vec<LocationRecord> = t
                    .records()
                    .iter()
                    .map(|r| LocationRecord::new(UserId(i as u64), r.time, r.point))
                    .collect();
                Trajectory::new(UserId(i as u64), records)
            })
            .collect();
        Dataset::from_trajectories(ts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's guarantee: smoothed output has (near-)constant speed,
    /// whatever the input. Timestamps are whole seconds, so the assertion
    /// only applies when segments are long enough (≥ 10 s mean) for the
    /// ±0.5 s quantization not to dominate the measurement.
    #[test]
    fn smoothing_speed_is_constant(t in trajectory(), eps in 30.0..300.0f64) {
        let strategy = SpeedSmoothing::new(geo::Meters::new(eps)).unwrap();
        let smoothed = strategy.smooth_trajectory(&t);
        let long_enough = smoothed.len() >= 3
            && smoothed.duration_s() >= smoothed.len() as i64 * 10;
        if long_enough {
            if let Some(cv) = smoothed.speed_cv() {
                prop_assert!(cv < 0.35, "cv {cv} for eps {eps}");
            }
        }
    }

    /// Smoothing never invents points far from the original path.
    #[test]
    fn smoothing_stays_near_the_path(t in trajectory(), eps in 50.0..300.0f64) {
        let strategy = SpeedSmoothing::new(geo::Meters::new(eps)).unwrap();
        let smoothed = strategy.smooth_trajectory(&t);
        // Densify the original polyline so distance-to-path (not merely
        // distance-to-vertex) is measured.
        let dense = geo::polyline::resample_by_distance(&t.points(), geo::Meters::new(50.0))
            .unwrap_or_else(|_| t.points());
        for r in smoothed.records() {
            let min_d = dense
                .iter()
                .map(|p| p.haversine_distance(&r.point).get())
                .fold(f64::INFINITY, f64::min);
            // Within DP tolerance (eps/2) plus resampling/densify slack.
            prop_assert!(min_d <= eps * 1.5 + 60.0, "point {min_d} m off-path");
        }
    }

    /// Timestamps of smoothed trajectories stay within the original span
    /// and are sorted.
    #[test]
    fn smoothing_preserves_time_span(t in trajectory(), eps in 30.0..300.0f64) {
        let strategy = SpeedSmoothing::new(geo::Meters::new(eps)).unwrap();
        let smoothed = strategy.smooth_trajectory(&t);
        if smoothed.is_empty() { return Ok(()); }
        prop_assert!(smoothed.start_time() >= t.start_time());
        prop_assert!(smoothed.end_time() <= t.end_time());
    }

    /// Geo-I perturbs every point independently but keeps structure intact.
    #[test]
    fn geo_i_preserves_structure(ds in small_dataset(), eps_exp in -3.0..0.0f64, seed in any::<u64>()) {
        let eps = 10f64.powf(eps_exp) / 10.0; // 1e-4 .. 1e-1 per metre
        let mech = GeoIndistinguishability::new(eps).unwrap();
        let out = mech.anonymize(&ds, seed);
        prop_assert_eq!(out.record_count(), ds.record_count());
        prop_assert_eq!(out.user_count(), ds.user_count());
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.user, b.user);
        }
    }

    /// Cloaking displacement is bounded by the cell half-diagonal.
    #[test]
    fn cloaking_displacement_bounded(ds in small_dataset(), cell in 100.0..1_000.0f64) {
        let mech = SpatialCloaking::new(geo::Meters::new(cell)).unwrap();
        let out = mech.anonymize(&ds, 0);
        let bound = cell * std::f64::consts::SQRT_2 / 2.0 + 1.0;
        for (a, b) in ds.iter_records().zip(out.iter_records()) {
            let d = a.point.haversine_distance(&b.point).get();
            prop_assert!(d <= bound, "displaced {d} m with {cell} m cells");
        }
    }

    /// Downsampling output spacing respects the window and is a subset.
    #[test]
    fn downsampling_respects_window(ds in small_dataset(), window in 60i64..3_000) {
        let mech = TemporalDownsampling::new(window).unwrap();
        let out = mech.anonymize(&ds, 0);
        prop_assert!(out.record_count() <= ds.record_count());
        for t in out.trajectories() {
            for w in t.records().windows(2) {
                prop_assert!(w[1].time - w[0].time >= window);
            }
        }
    }

    /// Every strategy keeps the user population intact (no user is silently
    /// dropped — pseudonym continuity is what re-identification tests need).
    #[test]
    fn strategies_preserve_users(ds in small_dataset(), seed in any::<u64>()) {
        let strategies: Vec<Box<dyn privapi::strategy::AnonymizationStrategy>> = vec![
            Box::new(Identity::new()),
            Box::new(GeoIndistinguishability::new(0.01).unwrap()),
            Box::new(SpeedSmoothing::new(geo::Meters::new(100.0)).unwrap()),
            Box::new(SpatialCloaking::new(geo::Meters::new(250.0)).unwrap()),
            Box::new(GaussianPerturbation::new(geo::Meters::new(50.0)).unwrap()),
            Box::new(TemporalDownsampling::new(300).unwrap()),
        ];
        for s in &strategies {
            let out = s.anonymize(&ds, seed);
            prop_assert_eq!(out.user_count(), ds.user_count(), "{}", s.info());
        }
    }

    /// Attack reports are well-formed probabilities.
    #[test]
    fn attack_reports_are_probabilities(ds in small_dataset()) {
        let attack = PoiAttack::default();
        let reference = attack.extract(&ds);
        let report = attack.evaluate_reference(&ds, &reference);
        prop_assert!((0.0..=1.0).contains(&report.recall));
        prop_assert!((0.0..=1.0).contains(&report.precision));
        prop_assert!((0.0..=1.0).contains(&report.f1));
        prop_assert!(report.matched <= report.reference_pois);
    }

    /// The indexed matcher is bit-identical to the pairwise scan matcher on
    /// arbitrary datasets (same extraction, two matching paths).
    #[test]
    fn indexed_matcher_matches_scan_matcher(ds in small_dataset()) {
        let attack = PoiAttack::default();
        let reference = attack.extract(&ds);
        let indexed = attack.evaluate_reference(&ds, &reference);
        let scan = attack.evaluate_reference_scan(&ds, &reference);
        prop_assert_eq!(indexed, scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The shard contract behind parallel extraction: for any generator
    /// seed and population shape, the per-user rayon fan-out returns
    /// `ReferencePois` byte-identical to the sequential reference path
    /// (mirrors `parallel_engine_matches_sequential` one layer down).
    #[test]
    fn parallel_extract_matches_serial(
        seed in any::<u64>(),
        users in 1usize..5,
        days in 1usize..4,
    ) {
        let data = mobility::gen::CityModel::builder()
            .seed(seed ^ 0xE10)
            .build()
            .generate_with_truth(&mobility::gen::PopulationConfig {
                users,
                days,
                sampling_interval_s: 240,
                gps_noise_m: 5.0,
                leisure_probability: 0.3,
            });
        let attack = PoiAttack::default();
        prop_assert_eq!(
            attack.extract(&data.dataset),
            attack.extract_serial(&data.dataset)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The engine contract behind parallel selection: for any seed, privacy
    /// floor and objective, the parallel schedule produces a
    /// `SelectionReport` identical to the sequential one (same candidate
    /// rows, same winner under the `(utility, −recall, index)` order).
    #[test]
    fn parallel_engine_matches_sequential(
        seed in any::<u64>(),
        floor in 0.05..0.9f64,
        objective_pick in 0u8..3,
    ) {
        use privapi::engine::{EvaluationEngine, ExecutionMode};
        use privapi::pool::StrategyPool;
        use privapi::selection::Objective;

        let data = mobility::gen::CityModel::builder()
            .seed(seed ^ 0xE9)
            .build()
            .generate_with_truth(&mobility::gen::PopulationConfig {
                users: 3,
                days: 2,
                sampling_interval_s: 300,
                gps_noise_m: 5.0,
                leisure_probability: 0.3,
            });
        let attack = PoiAttack::default();
        let reference = attack.extract(&data.dataset);
        let objective = match objective_pick {
            0 => Objective::CrowdedPlaces { cell: geo::Meters::new(250.0), k: 10 },
            1 => Objective::Traffic { cell: geo::Meters::new(500.0) },
            _ => Objective::Distortion,
        };
        let pool = StrategyPool::default_pool();
        let sequential = EvaluationEngine::new(objective, floor, seed)
            .with_mode(ExecutionMode::Sequential)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        let parallel = EvaluationEngine::new(objective, floor, seed)
            .with_mode(ExecutionMode::Parallel)
            .evaluate(&pool, &data.dataset, &reference)
            .unwrap();
        prop_assert_eq!(&sequential, &parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The planar Laplace radius distribution has the theoretical mean 2/ε
    /// (checked loosely over random epsilons).
    #[test]
    fn geo_i_noise_mean_tracks_epsilon(eps_mul in 1.0..20.0f64, seed in any::<u64>()) {
        let eps = eps_mul / 1_000.0; // 0.001 .. 0.02
        let mech = GeoIndistinguishability::new(eps).unwrap();
        let origin = GeoPoint::new(45.2, 4.2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 600;
        let mean: f64 = (0..n)
            .map(|_| origin.haversine_distance(&mech.perturb(&origin, &mut rng)).get())
            .sum::<f64>() / n as f64;
        let expected = 2.0 / eps;
        prop_assert!((mean - expected).abs() / expected < 0.25,
            "eps {eps}: mean {mean} vs {expected}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bounding-box-widening parity: a far-out record on the last day
    /// drifts the prefix bounding box — often across a quantized
    /// 0.05°-lattice line, shifting every grid-anchored cell. Streaming
    /// must stay byte-identical to batch prefixes with zero full
    /// extractions: the copy-on-write store re-anonymizes only what the
    /// anchor shift invalidates, and the incremental utility baselines
    /// rebuild their grids without touching the scoring entry points.
    #[test]
    fn bbox_widening_keeps_streaming_parity(
        seed in any::<u64>(),
        users in 2usize..4,
        widen_deg in 0.01..0.25f64,
    ) {
        use mobility::{WindowedDataset, DAY_SECONDS};
        use privapi::streaming::StreamingPublisher;

        let days = 3usize;
        let data = mobility::gen::CityModel::builder()
            .seed(seed ^ 0xB0B)
            .build()
            .generate_population(&mobility::gen::PopulationConfig {
                users,
                days,
                sampling_interval_s: 600,
                gps_noise_m: 5.0,
                leisure_probability: 0.3,
            });
        // Last-day outlier: user 0 wanders `widen_deg` north-east of the
        // city, widening every later prefix's box.
        let bbox = data.bounding_box().unwrap();
        let outlier = GeoPoint::new(
            bbox.max().latitude() + widen_deg,
            bbox.max().longitude() + widen_deg,
        ).unwrap();
        let mut records: Vec<LocationRecord> = data.iter_records().cloned().collect();
        records.push(LocationRecord::new(
            UserId(0),
            Timestamp::new((days as i64 - 1) * DAY_SECONDS + 3_600),
            outlier,
        ));
        let data = Dataset::from_records(records);
        let windows = WindowedDataset::partition(&data);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let probe = publisher.privapi().attack().clone();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            let incremental = publisher.publish_window(window);
            prop_assert_eq!(
                probe.extractions() - before,
                0,
                "window {}: widening must stay on the incremental paths",
                i
            );
            let batch = PrivApi::default().publish(&windows.prefix(i));
            match (incremental, batch) {
                (Ok(inc), Ok(batch)) => {
                    prop_assert_eq!(&inc.published.selection, &batch.selection, "window {}", i);
                    prop_assert_eq!(&inc.published.dataset, &batch.dataset, "window {}", i);
                }
                (Err(a), Err(b)) => {
                    prop_assert_eq!(format!("{a}"), format!("{b}"), "window {}", i);
                }
                (inc, batch) => {
                    return Err(TestCaseError::fail(format!(
                        "window {i}: streaming {inc:?} vs batch {batch:?} disagree"
                    )));
                }
            }
        }
    }

    /// The streaming-publication contract: replaying a dataset as day
    /// windows selects byte-identical winners (same selection report, same
    /// released data) as batch-publishing each concatenated prefix, for
    /// any generator seed and population shape — and never pays a full
    /// extraction pass after ingesting the window: the original side goes
    /// through the session cache's per-user delta path and every
    /// default-pool candidate's self-attack goes through its per-strategy
    /// shard cache ([`privapi::streaming::StrategySessionCache`]).
    ///
    /// Participation is thinned deterministically per (user, day) so some
    /// windows genuinely miss users — without that, generated data keeps
    /// everyone active daily and the caches' reuse paths would never be
    /// exercised across seeds.
    #[test]
    fn streaming_windows_match_batch_prefix_publish(
        seed in any::<u64>(),
        users in 2usize..5,
        days in 2usize..4,
    ) {
        use mobility::WindowedDataset;
        use privapi::streaming::StreamingPublisher;

        let data = mobility::gen::CityModel::builder()
            .seed(seed ^ 0xE11)
            .build()
            .generate_population(&mobility::gen::PopulationConfig {
                users,
                days,
                sampling_interval_s: 300,
                gps_noise_m: 5.0,
                leisure_probability: 0.3,
            });
        // Keep day 0 complete, then drop roughly half the later
        // (user, day) pairs so shard reuse actually triggers — through
        // the shared deterministic thinning helper, salted by the case's
        // seed so the dropout pattern varies across cases.
        let data = mobility::gen::thin_participation_salted(&data, 50, seed);
        let windows = WindowedDataset::partition(&data);
        let mut publisher = StreamingPublisher::new(PrivApiConfig::default());
        let pool = publisher.privapi().pool().len();
        let probe = publisher.privapi().attack().clone();
        for (i, window) in windows.iter().enumerate() {
            let before = probe.extractions();
            let incremental = publisher.publish_window(window);
            let extractions = probe.extractions() - before;
            prop_assert!(
                extractions < pool + 1,
                "window {}: {} extractions breaks the streaming budget",
                i,
                extractions
            );
            prop_assert_eq!(
                extractions,
                0,
                "window {}: both cache layers must spare every full pass",
                i
            );
            let batch = PrivApi::default().publish(&windows.prefix(i));
            match (incremental, batch) {
                (Ok(inc), Ok(batch)) => {
                    prop_assert_eq!(&inc.published.selection, &batch.selection, "window {}", i);
                    prop_assert_eq!(&inc.published.strategy, &batch.strategy, "window {}", i);
                    prop_assert_eq!(&inc.published.privacy, &batch.privacy, "window {}", i);
                    prop_assert_eq!(&inc.published.dataset, &batch.dataset, "window {}", i);
                    prop_assert_eq!(inc.day, window.day());
                }
                (Err(a), Err(b)) => {
                    // Both paths must fail the same way (e.g. no feasible
                    // strategy on a tiny prefix).
                    prop_assert_eq!(format!("{a}"), format!("{b}"), "window {}", i);
                }
                (inc, batch) => {
                    return Err(TestCaseError::fail(format!(
                        "window {i}: streaming {inc:?} vs batch {batch:?} disagree"
                    )));
                }
            }
        }
    }
}
