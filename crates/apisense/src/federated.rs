//! Federated release: device-local anonymization with byte-for-byte
//! central parity under hostile fleets.
//!
//! The central pipeline ([`crate::collect`] + [`crate::privacy`]) ships raw
//! fixes to the Hive and anonymizes there. This module inverts the trust
//! relationship end to end:
//!
//! * the Hive broadcasts the winning strategy as a versioned
//!   [`privapi::federated::StrategyConfig`] frame ([`ConfigFrame`]) over
//!   the same at-least-once transport the data lanes use
//!   ([`ConfigBroadcaster`], one [`simnet::reliable::ReliableSender`] per
//!   device);
//! * every device anonymizes its own day slices locally
//!   ([`FederatedOutbox`], running
//!   [`privapi::strategy::AnonymizationStrategy::anonymize_user`]) and
//!   uploads only protected records as [`ProtectedBatch`] chunks on a
//!   dedicated *protected lane*;
//! * the Hive-side [`FederatedCollector`] admits uploads into a
//!   [`privapi::federated::FederatedSession`] — version-checking first
//!   (stale-config uploads are quarantined, counted and flagged, never
//!   silently mixed), then gating each batch against the strategy's
//!   plausibility region (a poisoning device cannot steer a release);
//! * server-side *selection* still runs centrally, on the small opt-in
//!   calibration cohort that keeps uploading raw through the ordinary
//!   [`crate::collect`] lane.
//!
//! Lane multiplexing: all three lanes share one simulated link per device,
//! so their transport endpoint ids must not collide. A device's raw lane
//! uses its bare device id; its protected lane sets
//! [`PROTECTED_LANE_BIT`]; the Hive→device config lane sets
//! [`CONFIG_LANE_BIT`].
//!
//! The headline invariant (see `tests/federated.rs` and experiment E15):
//! the federated release assembled from per-device uploads is
//! **byte-identical** to the central release of the same windowed raw
//! prefix ([`privapi::federated::central_release`]) for every `UserLocal`
//! strategy — and when it cannot be (stale configs, dropouts, poisoning),
//! the divergence is *exactly accounted* in the per-window
//! [`privapi::federated::FederationDelta`].
//!
//! Whole-day uploads only: a device finalizes a day *after* it fully
//! elapsed and uploads the whole protected day slice at once, because
//! anonymizing a partial day is not a prefix of anonymizing the full day
//! (smoothing resamples the entire polyline; the per-trajectory RNG is
//! keyed by the trajectory start).

use crate::collect::{CollectError, Collector, DayBatch, DeviceOutbox};
use bytes::{Bytes, BytesMut};
use geo::{BoundingBox, GeoPoint};
use mobility::gen::{thin_participation, CityModel, PopulationConfig};
use mobility::{
    Dataset, DatasetWindow, LocationRecord, Timestamp, Trajectory, UserId, WindowedDataset,
    DAY_SECONDS,
};
use privapi::federated::{
    central_release, Admission, FederatedSession, FederationDelta, FederationPolicy,
    SessionTotals, StrategyConfig, StrategySpec,
};
use privapi::pipeline::{PrivApi, PrivApiConfig};
use privapi::streaming::{IngestDelta, SessionCache};
use privapi::PrivapiError;
use simnet::reliable::{
    AckFrame, DataFrame, ReliableConfig, ReliableReceiver, ReliableSender, Transmission,
};
use simnet::wire::{Decode, Encode, WireError};
use simnet::{Actor, Context, Message, NetworkStats, NodeId, SimTime, Simulation};
use std::collections::{BTreeMap, BTreeSet};

/// Transport-endpoint id bit marking a device's *protected* upload lane.
pub const PROTECTED_LANE_BIT: u64 = 1 << 48;
/// Transport-endpoint id bit marking the Hive→device *config* lane.
pub const CONFIG_LANE_BIT: u64 = 1 << 49;

/// Timer id for a device's periodic upload tick (shared with
/// [`crate::fleet`]'s convention).
const TICK_UPLOAD: u64 = 1;
/// Timer id for a pending retransmission deadline.
const TICK_RETRY: u64 = 2;

// ---------------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------------

/// The broadcast strategy config on the wire: a thin codec wrapper around
/// [`StrategyConfig`] for the [`simnet::wire`] typed codec.
///
/// Layout: `version:u64 | seed:u64 | spec-tag:u8 | spec-params |
/// anchor:Option<((lat,lon),(lat,lon))>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigFrame(pub StrategyConfig);

const SPEC_SMOOTHING: u8 = 0;
const SPEC_GEO_I: u8 = 1;
const SPEC_CLOAKING: u8 = 2;
const SPEC_GAUSSIAN: u8 = 3;
const SPEC_TEMPORAL: u8 = 4;
const SPEC_IDENTITY: u8 = 5;

impl Encode for ConfigFrame {
    fn encode(&self, buf: &mut BytesMut) {
        let config = &self.0;
        config.version.encode(buf);
        config.seed.encode(buf);
        match config.spec {
            StrategySpec::SpeedSmoothing { epsilon_m } => {
                SPEC_SMOOTHING.encode(buf);
                epsilon_m.encode(buf);
            }
            StrategySpec::GeoIndistinguishability { epsilon } => {
                SPEC_GEO_I.encode(buf);
                epsilon.encode(buf);
            }
            StrategySpec::SpatialCloaking { cell_m } => {
                SPEC_CLOAKING.encode(buf);
                cell_m.encode(buf);
            }
            StrategySpec::GaussianPerturbation { sigma_m } => {
                SPEC_GAUSSIAN.encode(buf);
                sigma_m.encode(buf);
            }
            StrategySpec::TemporalDownsampling { window_s } => {
                SPEC_TEMPORAL.encode(buf);
                window_s.encode(buf);
            }
            StrategySpec::Identity => SPEC_IDENTITY.encode(buf),
        }
        let anchor = config.grid_anchor.map(|b| {
            (
                (b.min().latitude(), b.min().longitude()),
                (b.max().latitude(), b.max().longitude()),
            )
        });
        anchor.encode(buf);
    }
}

impl Decode for ConfigFrame {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let version = u64::decode(buf)?;
        let seed = u64::decode(buf)?;
        let spec = match u8::decode(buf)? {
            SPEC_SMOOTHING => StrategySpec::SpeedSmoothing {
                epsilon_m: f64::decode(buf)?,
            },
            SPEC_GEO_I => StrategySpec::GeoIndistinguishability {
                epsilon: f64::decode(buf)?,
            },
            SPEC_CLOAKING => StrategySpec::SpatialCloaking {
                cell_m: f64::decode(buf)?,
            },
            SPEC_GAUSSIAN => StrategySpec::GaussianPerturbation {
                sigma_m: f64::decode(buf)?,
            },
            SPEC_TEMPORAL => StrategySpec::TemporalDownsampling {
                window_s: i64::decode(buf)?,
            },
            SPEC_IDENTITY => StrategySpec::Identity,
            v => return Err(WireError::InvalidTag("strategy-spec", v)),
        };
        let anchor: Option<((f64, f64), (f64, f64))> = Option::decode(buf)?;
        let grid_anchor = match anchor {
            None => None,
            Some(((min_lat, min_lon), (max_lat, max_lon))) => {
                let min = GeoPoint::new(min_lat, min_lon)
                    .map_err(|_| WireError::Corrupt("anchor min out of range"))?;
                let max = GeoPoint::new(max_lat, max_lon)
                    .map_err(|_| WireError::Corrupt("anchor max out of range"))?;
                Some(
                    BoundingBox::new(min, max)
                        .map_err(|_| WireError::Corrupt("anchor box inverted"))?,
                )
            }
        };
        Ok(Self(StrategyConfig {
            version,
            spec,
            seed,
            grid_anchor,
        }))
    }
}

/// One device's protected upload unit: its *whole-day* anonymized
/// trajectory, tagged with the config version it was produced under.
///
/// `had_data` disambiguates two empty-record cases that the parity
/// invariant must keep apart: a device with **no raw fixes** that day
/// contributes no trajectory to the central release (`had_data = false`,
/// nothing is stored), while a device whose raw day slice **anonymized to
/// empty** contributes an empty trajectory exactly like the central run
/// would (`had_data = true`, an empty trajectory is stored).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedBatch {
    /// The uploading device.
    pub device: u64,
    /// The participant the device belongs to.
    pub user: UserId,
    /// The [`StrategyConfig::version`] the records were anonymized under.
    pub version: u64,
    /// The day the batch protects.
    pub day: i64,
    /// Always `true` in the federated protocol (whole-day uploads only);
    /// kept on the wire so the collector can reject partial uploads from
    /// nonconforming clients.
    pub end_of_day: bool,
    /// Whether the device had any raw fixes for `day` (see type docs).
    pub had_data: bool,
    /// The protected fixes, in trajectory order.
    pub records: Vec<LocationRecord>,
}

impl Encode for ProtectedBatch {
    fn encode(&self, buf: &mut BytesMut) {
        self.device.encode(buf);
        self.user.0.encode(buf);
        self.version.encode(buf);
        self.day.encode(buf);
        self.end_of_day.encode(buf);
        self.had_data.encode(buf);
        let recs: Vec<(i64, f64, f64)> = self
            .records
            .iter()
            .map(|r| (r.time.seconds(), r.point.latitude(), r.point.longitude()))
            .collect();
        recs.encode(buf);
    }
}

impl Decode for ProtectedBatch {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let device = u64::decode(buf)?;
        let user = UserId(u64::decode(buf)?);
        let version = u64::decode(buf)?;
        let day = i64::decode(buf)?;
        let end_of_day = bool::decode(buf)?;
        let had_data = bool::decode(buf)?;
        let raw: Vec<(i64, f64, f64)> = Vec::decode(buf)?;
        let mut records = Vec::with_capacity(raw.len());
        for (t, lat, lon) in raw {
            let point = GeoPoint::new(lat, lon)
                .map_err(|_| WireError::Corrupt("record coordinates out of range"))?;
            records.push(LocationRecord::new(user, Timestamp::new(t), point));
        }
        Ok(Self {
            device,
            user,
            version,
            day,
            end_of_day,
            had_data,
            records,
        })
    }
}

// ---------------------------------------------------------------------------
// Device side
// ---------------------------------------------------------------------------

/// The device-side federated staging store: holds the full raw sensing
/// schedule (flash-durable — raw records never leave the device), the
/// currently installed [`StrategyConfig`], and a finalize cursor walking
/// day by day. Each fully elapsed day is anonymized locally and enqueued
/// as one whole-day [`ProtectedBatch`] on the protected lane.
///
/// Version invalidation on the device: installing a *newer* config resets
/// the finalize cursor to the schedule's first day, so the device
/// re-anonymizes and re-uploads its full history under the new version —
/// that is how a fleet converges back to parity after an upgrade.
#[derive(Debug)]
pub struct FederatedOutbox {
    device: u64,
    user: UserId,
    tx: ReliableSender,
    records: Vec<LocationRecord>,
    first_day: i64,
    finalize_next: i64,
    config: Option<StrategyConfig>,
    strategy: Option<Box<dyn privapi::strategy::AnonymizationStrategy>>,
    poisoned: bool,
    bytes_enqueued: u64,
}

impl FederatedOutbox {
    /// A federated outbox over a pregenerated, time-sorted sensing
    /// schedule. `poisoned` models a malicious client that substitutes
    /// fabricated far-away fixes for its protected output.
    pub fn new(
        device: u64,
        user: UserId,
        config: ReliableConfig,
        mut records: Vec<LocationRecord>,
        poisoned: bool,
    ) -> Self {
        records.sort_by_key(|r| r.time);
        let first_day = records.first().map_or(0, |r| r.time.day_index());
        Self {
            device,
            user,
            tx: ReliableSender::new(device | PROTECTED_LANE_BIT, config),
            records,
            first_day,
            finalize_next: first_day,
            config: None,
            strategy: None,
            poisoned,
            bytes_enqueued: 0,
        }
    }

    /// The device id (without the lane bit).
    pub fn device(&self) -> u64 {
        self.device
    }

    /// The currently installed config, if any arrived yet.
    pub fn config(&self) -> Option<&StrategyConfig> {
        self.config.as_ref()
    }

    /// Total protected payload bytes enqueued (first uploads plus
    /// version-bump re-uploads; excludes transport retransmissions).
    pub fn bytes_enqueued(&self) -> u64 {
        self.bytes_enqueued
    }

    /// The protected-lane transport sender.
    pub fn sender_mut(&mut self) -> &mut ReliableSender {
        &mut self.tx
    }

    /// Read access to the protected-lane sender.
    pub fn sender(&self) -> &ReliableSender {
        &self.tx
    }

    /// Installs a broadcast config. Returns `true` when the version
    /// advanced — the finalize cursor rewinds to the first scheduled day
    /// and the full history is re-anonymized under the new version.
    /// Redelivered (older or equal) versions are ignored.
    ///
    /// # Errors
    ///
    /// [`PrivapiError`] when the config does not instantiate (corrupt or
    /// hostile broadcast); the previously installed config stays active.
    pub fn install(&mut self, config: StrategyConfig) -> Result<bool, PrivapiError> {
        if self.config.is_some_and(|c| config.version <= c.version) {
            return Ok(false);
        }
        let strategy = config.instantiate()?;
        self.config = Some(config);
        self.strategy = Some(strategy);
        self.finalize_next = self.first_day;
        Ok(true)
    }

    /// Whether every elapsed day has been finalized under the installed
    /// config and every upload acknowledged. A device with no config yet
    /// is *not* drained (it has not reported anything).
    pub fn drained(&self, last_day: i64) -> bool {
        self.config.is_some() && self.finalize_next > last_day && self.tx.is_idle()
    }

    /// Anonymizes and enqueues every fully elapsed, not-yet-finalized day.
    /// Returns the number of batches enqueued. Without an installed config
    /// nothing is staged — raw data never leaves the device.
    pub fn stage(&mut self, now_s: i64) -> usize {
        let Some(config) = self.config else {
            return 0;
        };
        let current_day = now_s.div_euclid(DAY_SECONDS);
        let mut batches = 0;
        while self.finalize_next < current_day {
            let day = self.finalize_next;
            let day_records: Vec<LocationRecord> = self
                .records
                .iter()
                .copied()
                .filter(|r| r.time.day_index() == day)
                .collect();
            let mut had_data = !day_records.is_empty();
            let mut protected = if had_data {
                let local =
                    Dataset::from_trajectories(vec![Trajectory::new(self.user, day_records)]);
                self.strategy
                    .as_ref()
                    .expect("strategy instantiated with config")
                    .anonymize_user(&local, self.user, config.seed)
                    .first()
                    .map(|t| t.records().to_vec())
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            if self.poisoned {
                had_data = true;
                protected = poison_records(self.user, day, &protected);
            }
            let batch = ProtectedBatch {
                device: self.device,
                user: self.user,
                version: config.version,
                day,
                end_of_day: true,
                had_data,
                records: protected,
            };
            let chunk = batch.encode_to_vec();
            self.bytes_enqueued += chunk.len() as u64;
            self.tx.enqueue(chunk);
            self.finalize_next += 1;
            batches += 1;
        }
        batches
    }
}

/// A poisoning client's substituted payload: every protected fix displaced
/// ~220 km north (far outside any plausibility region), or one fabricated
/// fix on a day the device sensed nothing. Deterministic so chaos runs
/// stay replayable.
fn poison_records(user: UserId, day: i64, protected: &[LocationRecord]) -> Vec<LocationRecord> {
    if protected.is_empty() {
        return vec![LocationRecord::new(
            user,
            Timestamp::new(day * DAY_SECONDS + 3_600),
            GeoPoint::new(10.0, 10.0).expect("fixed fabricated point is valid"),
        )];
    }
    protected
        .iter()
        .map(|r| {
            let lat = (r.point.latitude() + 2.0).min(89.0);
            LocationRecord::new(
                r.user,
                r.time,
                GeoPoint::new(lat, r.point.longitude()).expect("shifted point stays in range"),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Hive side: config broadcast
// ---------------------------------------------------------------------------

/// The Hive's config fan-out: one at-least-once [`ReliableSender`] per
/// device on the config lane. Broadcast survives loss, duplication and
/// partitions exactly like the data lanes do — a device that was deaf
/// during the broadcast keeps receiving retransmissions until it acks, so
/// config staleness is always *transient*.
#[derive(Debug)]
pub struct ConfigBroadcaster {
    reliable: ReliableConfig,
    senders: BTreeMap<u64, ReliableSender>,
    frames_sent: u64,
    bytes_sent: u64,
}

impl ConfigBroadcaster {
    /// A broadcaster with no registered devices.
    pub fn new(reliable: ReliableConfig) -> Self {
        Self {
            reliable,
            senders: BTreeMap::new(),
            frames_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Registers a device's config lane.
    pub fn register(&mut self, device: u64) {
        self.senders
            .entry(device)
            .or_insert_with(|| ReliableSender::new(device | CONFIG_LANE_BIT, self.reliable));
    }

    /// Enqueues `config` to every registered device.
    pub fn broadcast(&mut self, config: &StrategyConfig) {
        let chunk = ConfigFrame(*config).encode_to_vec();
        for sender in self.senders.values_mut() {
            sender.enqueue(chunk.clone());
        }
    }

    /// Polls every lane for due (re)transmissions, tagged with the target
    /// device id.
    pub fn poll(&mut self, now_ms: u64) -> Vec<(u64, Transmission)> {
        let mut out = Vec::new();
        for (&device, sender) in &mut self.senders {
            for tx in sender.poll(now_ms) {
                self.frames_sent += 1;
                self.bytes_sent += tx.frame.chunk.len() as u64;
                out.push((device, tx));
            }
        }
        out
    }

    /// Applies a device's ack (routed by the ack's lane id).
    pub fn on_ack(&mut self, ack: &AckFrame, now_ms: u64) {
        let device = ack.sender & !CONFIG_LANE_BIT;
        if let Some(sender) = self.senders.get_mut(&device) {
            sender.on_ack(ack, now_ms);
        }
    }

    /// The earliest retransmission deadline over all lanes.
    pub fn next_due(&self) -> Option<u64> {
        self.senders
            .values()
            .filter_map(ReliableSender::next_due)
            .min()
    }

    /// Whether every device acknowledged every broadcast config.
    pub fn is_idle(&self) -> bool {
        self.senders.values().all(ReliableSender::is_idle)
    }

    /// Config frames put on the wire (first transmissions plus
    /// retransmissions) — the broadcast overhead numerator.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Config bytes put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

// ---------------------------------------------------------------------------
// Hive side: protected-lane ingestion
// ---------------------------------------------------------------------------

/// Per-device protected-lane state: the dedup receiver plus the highest
/// day this device has *validly* finished reporting under the current
/// config version.
#[derive(Debug)]
struct ProtectedLane {
    user: UserId,
    rx: ReliableReceiver,
    completed_through: Option<i64>,
}

/// The Hive-side federated ingestion endpoint: per-device deduplicating
/// receivers in front of a [`FederatedSession`], with a version check and
/// a plausibility gate between transport and store.
///
/// Hostile-fleet containment, in admission order:
///
/// 1. **version check** — batches tagged with an obsolete config version
///    are quarantined whole (counted per batch, record and device), never
///    mixed into the current-version store;
/// 2. **plausibility gate** — a current-version batch containing any fix
///    outside the installed strategy's
///    [`StrategySpec::plausible_region`] is rejected *whole* and its
///    device flagged as poisoned. Whole-batch rejection keeps the release
///    equal to the central release over the honest sub-fleet — a partial
///    accept would publish a window no central run could produce.
///
/// Both outcomes still acknowledge the transport frame: at-least-once
/// delivery is about loss, not about trusting payloads, and an unacked
/// hostile batch would be retried forever.
#[derive(Debug)]
pub struct FederatedCollector {
    session: FederatedSession,
    lanes: BTreeMap<u64, ProtectedLane>,
    sensing_region: BoundingBox,
    window_reuploaded: u64,
    window_stale_batches: u64,
    window_stale_records: u64,
    window_stale_devices: BTreeSet<u64>,
    window_implausible: u64,
    poisoned: BTreeSet<u64>,
    last_closed: Option<i64>,
}

impl FederatedCollector {
    /// An endpoint gating against `sensing_region` (the fleet's raw
    /// sensing bounding box, provisioned operator-side).
    pub fn new(sensing_region: BoundingBox) -> Self {
        Self {
            session: FederatedSession::new(),
            lanes: BTreeMap::new(),
            sensing_region,
            window_reuploaded: 0,
            window_stale_batches: 0,
            window_stale_records: 0,
            window_stale_devices: BTreeSet::new(),
            window_implausible: 0,
            poisoned: BTreeSet::new(),
            last_closed: None,
        }
    }

    /// Registers a device's protected lane.
    pub fn register(&mut self, device: u64, user: UserId) {
        self.lanes.entry(device).or_insert_with(|| ProtectedLane {
            user,
            rx: ReliableReceiver::new(),
            completed_through: None,
        });
    }

    /// The underlying session (store, totals, stale users, release).
    pub fn session(&self) -> &FederatedSession {
        &self.session
    }

    /// Devices ever flagged by the plausibility gate.
    pub fn poisoned_devices(&self) -> &BTreeSet<u64> {
        &self.poisoned
    }

    /// Installs a broadcast config server-side. On a version bump the
    /// session store clears *and* every lane's completion watermark resets
    /// — devices must finish re-reporting under the new version before
    /// they stop counting as stragglers.
    pub fn install(&mut self, config: StrategyConfig) -> bool {
        let bumped = self.session.install(config);
        if bumped {
            for lane in self.lanes.values_mut() {
                lane.completed_through = None;
            }
        }
        bumped
    }

    /// Whether anything still awaits a close: gapped chunks in a reorder
    /// buffer, admitted days newer than the last close, or per-window
    /// counters from uploads that arrived after it.
    pub fn has_backlog(&self) -> bool {
        self.lanes.values().any(|l| l.rx.buffered() > 0)
            || self
                .session
                .days()
                .iter()
                .any(|&d| self.last_closed.is_none_or(|c| d > c))
            || self.window_reuploaded > 0
            || self.window_stale_batches > 0
            || self.window_implausible > 0
    }

    /// Ingests one protected-lane transport frame, returning the ack.
    ///
    /// # Errors
    ///
    /// * [`CollectError::UnknownDevice`] — the lane never registered
    ///   (nothing acked, the device keeps retrying);
    /// * [`CollectError::Wire`] / [`CollectError::Misrouted`] — a released
    ///   chunk is not a well-formed batch of this device (the transport
    ///   has advanced; the batch is skipped and the error reported).
    pub fn ingest(&mut self, frame: &DataFrame) -> Result<AckFrame, CollectError> {
        let device = frame.sender & !PROTECTED_LANE_BIT;
        let lane = self
            .lanes
            .get_mut(&device)
            .ok_or(CollectError::UnknownDevice(device))?;
        let (released, ack) = lane.rx.accept(frame.sender, frame.seq, frame.chunk.clone());
        let mut result = Ok(ack);
        for (_seq, chunk) in released {
            if let Err(e) = self.apply(device, &chunk) {
                result = result.and(Err(e));
            }
        }
        result
    }

    /// Applies one in-sequence protected batch: decode, version-check,
    /// gate, admit.
    fn apply(&mut self, device: u64, chunk: &[u8]) -> Result<(), CollectError> {
        let batch = ProtectedBatch::decode_from_slice(chunk)?;
        if batch.device != device {
            return Err(CollectError::Misrouted {
                lane: device,
                claimed: batch.device,
            });
        }
        let lane = self.lanes.get_mut(&device).expect("lane exists");
        if batch.user != lane.user {
            return Err(CollectError::Wire(WireError::Corrupt(
                "batch user does not match the device's registered owner",
            )));
        }
        if !batch.end_of_day {
            return Err(CollectError::Wire(WireError::Corrupt(
                "federated uploads must cover whole days",
            )));
        }
        let current = self.session.config().map(|c| c.version);
        if current != Some(batch.version) {
            // Stale (or pre-config) upload: quarantine whole, count at the
            // collect layer (batches, devices) and the session layer
            // (records, users). Never mixed into the store.
            self.window_stale_batches += 1;
            self.window_stale_records += batch.records.len() as u64;
            self.window_stale_devices.insert(device);
            obs::count("federated.stale_batches", 1);
            obs::count("federated.stale_records", batch.records.len() as u64);
            if obs::enabled() {
                obs::event(
                    "federated.quarantine",
                    &[
                        ("device", obs::AttrValue::U64(device)),
                        ("records", obs::AttrValue::U64(batch.records.len() as u64)),
                        ("reason", obs::AttrValue::Str("stale_config_version".into())),
                    ],
                );
            }
            let admission = self.session.accept(
                batch.version,
                batch.day,
                batch.user,
                Trajectory::new(batch.user, batch.records),
            );
            debug_assert!(!matches!(admission, Admission::Accepted));
            return Ok(());
        }
        let spec = self.session.config().expect("version checked").spec;
        let region = spec.plausible_region(&self.sensing_region);
        if batch.records.iter().any(|r| !region.contains(&r.point)) {
            // Implausible under the active mechanism: reject the whole
            // batch (a partial accept would publish a window no central
            // run could produce) and flag the device.
            let rejected = batch.records.len() as u64;
            self.window_implausible += rejected;
            self.session.note_implausible(rejected);
            if self.poisoned.insert(device) {
                obs::count("federated.poisoned_devices", 1);
            }
            obs::count("federated.implausible_records", rejected);
            if obs::enabled() {
                obs::event(
                    "federated.quarantine",
                    &[
                        ("device", obs::AttrValue::U64(device)),
                        ("records", obs::AttrValue::U64(rejected)),
                        ("reason", obs::AttrValue::Str("implausible_region".into())),
                    ],
                );
            }
            return Ok(());
        }
        if self.last_closed.is_some_and(|closed| batch.day <= closed) {
            self.window_reuploaded += batch.records.len() as u64;
        }
        if batch.had_data {
            let admission = self.session.accept(
                batch.version,
                batch.day,
                batch.user,
                Trajectory::new(batch.user, batch.records),
            );
            debug_assert_eq!(admission, Admission::Accepted);
        }
        lane.completed_through = Some(
            lane.completed_through
                .map_or(batch.day, |c| c.max(batch.day)),
        );
        Ok(())
    }

    /// Seals day `day`: the admitted protected trajectories become one
    /// [`DatasetWindow`] and the [`FederationDelta`] audit records exactly
    /// how cleanly (or not) the window was assembled.
    ///
    /// # Errors
    ///
    /// [`CollectError::CloseOutOfOrder`] when `day` does not exceed the
    /// last closed day.
    pub fn close_day(
        &mut self,
        day: i64,
    ) -> Result<(DatasetWindow, FederationDelta), CollectError> {
        if let Some(last) = self.last_closed {
            if day <= last {
                return Err(CollectError::CloseOutOfOrder {
                    day,
                    last_closed: last,
                });
            }
        }
        let version = self.session.config().map_or(0, |c| c.version);
        let mut delta = FederationDelta::new(day, version);
        let dataset = self.session.day_slice(day);
        delta.protected_records = dataset.record_count() as u64;
        delta.reuploaded_records = std::mem::take(&mut self.window_reuploaded);
        delta.stale_batches = std::mem::take(&mut self.window_stale_batches);
        delta.stale_records = std::mem::take(&mut self.window_stale_records);
        delta.stale_devices = std::mem::take(&mut self.window_stale_devices).len() as u64;
        delta.implausible_records = std::mem::take(&mut self.window_implausible);
        delta.poisoned_devices = self.poisoned.len() as u64;
        delta.straggler_devices = self
            .lanes
            .values()
            .filter(|l| l.completed_through.is_none_or(|c| c < day))
            .count() as u64;
        self.last_closed = Some(day);
        Ok((DatasetWindow::from_parts(day, dataset), delta))
    }
}

// ---------------------------------------------------------------------------
// Fleet harness
// ---------------------------------------------------------------------------

/// A device's config-lane deafness window: `(device, from_ms, until_ms)`.
/// While deaf the device drops incoming config frames (models a client
/// that cannot apply an upgrade yet); the Hive keeps retransmitting, so
/// the device converges once the window ends. Windows must end before the
/// simulation does or the run never terminates.
pub type DeafWindow = (u64, u64, u64);

/// Configuration of one federated fleet run.
#[derive(Debug, Clone)]
pub struct FederatedFleetConfig {
    /// The underlying fleet shape (population, faults, link, timers) —
    /// shared with the central-mode harness [`crate::fleet`] so federated
    /// and central runs are comparable.
    pub fleet: crate::fleet::FleetConfig,
    /// Per-(user, day) participation percentage; 100 keeps everyone.
    pub participation_pct: u64,
    /// The initially broadcast mechanism (config version 1).
    pub spec: StrategySpec,
    /// The anonymization seed broadcast inside every config version.
    pub anonymization_seed: u64,
    /// Size of the opt-in calibration cohort that keeps uploading raw.
    pub cohort_size: usize,
    /// Run server-side selection on the cohort's raw windows each close
    /// and rebroadcast (version bump) whenever the winner changes.
    pub select: bool,
    /// Devices deaf to config frames during a window (stale-config
    /// scenarios).
    pub deaf: Vec<DeafWindow>,
    /// Devices that substitute fabricated fixes for their protected
    /// output.
    pub poisoned: Vec<u64>,
    /// Force a config upgrade to this spec right after closing this day
    /// (upgrade-wave scenarios).
    pub upgrade_at_close: Option<(i64, StrategySpec)>,
}

impl FederatedFleetConfig {
    /// A small, fast federated fleet mirroring
    /// [`crate::fleet::FleetConfig::small`].
    pub fn small(seed: u64) -> Self {
        Self {
            fleet: crate::fleet::FleetConfig::small(seed),
            participation_pct: 100,
            spec: StrategySpec::SpeedSmoothing { epsilon_m: 100.0 },
            anonymization_seed: 42,
            cohort_size: 2,
            select: false,
            deaf: Vec::new(),
            poisoned: Vec::new(),
            upgrade_at_close: None,
        }
    }
}

/// Everything a federated fleet run produced.
#[derive(Debug)]
pub struct FederatedFleetOutcome {
    /// One closed protected window per day (plus a trailing drain window
    /// when late uploads were still in flight after the last close).
    pub windows: Vec<DatasetWindow>,
    /// The per-window federation audit, parallel to `windows`.
    pub deltas: Vec<FederationDelta>,
    /// The calibration cohort's raw windows (empty when no cohort).
    pub cohort_windows: Vec<DatasetWindow>,
    /// The cohort's reliable-ingest audit, parallel to `cohort_windows`.
    pub cohort_deltas: Vec<IngestDelta>,
    /// The final federated release (all admitted days, current version).
    pub release: Dataset,
    /// The config active at the end of the run.
    pub final_config: StrategyConfig,
    /// The session-layer ledger at the end of the run.
    pub session_totals: SessionTotals,
    /// Users that ever uploaded under an obsolete config version.
    pub stale_users: BTreeSet<UserId>,
    /// Devices flagged by the plausibility gate.
    pub poisoned_devices: BTreeSet<u64>,
    /// `(day, winner)` of each cohort selection run (when `select`).
    pub selections: Vec<(i64, String)>,
    /// Network counters: traffic, injected faults, transport retries.
    pub stats: NetworkStats,
    /// The raw oracle: the (thinned) generated population partitioned by
    /// day. Only the test harness holds this — the simulated server never
    /// sees raw non-cohort data.
    pub baseline: WindowedDataset,
    /// The whole population's calibration cohort.
    pub cohort: BTreeSet<UserId>,
    /// Total raw records generated after participation thinning.
    pub generated_records: u64,
    /// Raw payload bytes the federated deployment uplinks (cohort only),
    /// canonical whole-day encoding.
    pub raw_bytes_uplinked: u64,
    /// Raw payload bytes a central deployment would uplink (every
    /// device), same canonical encoding.
    pub central_raw_bytes: u64,
    /// Protected payload bytes devices enqueued (includes version-bump
    /// re-uploads).
    pub protected_bytes_uplinked: u64,
    /// Config frames put on the wire (incl. retransmissions).
    pub config_frames_broadcast: u64,
    /// Config bytes put on the wire.
    pub config_bytes_broadcast: u64,
}

impl FederatedFleetOutcome {
    /// The central counterfactual under the final config: what the server
    /// would have published had it seen every raw record itself.
    pub fn central(&self) -> Dataset {
        self.central_excluding(&BTreeSet::new())
    }

    /// The central counterfactual over the honest sub-fleet: the windowed
    /// raw prefix minus `excluded` users, anonymized centrally under the
    /// final config.
    pub fn central_excluding(&self, excluded: &BTreeSet<UserId>) -> Dataset {
        if self.baseline.is_empty() {
            return Dataset::new();
        }
        let prefix = self.baseline.prefix(self.baseline.len() - 1);
        let filtered = Dataset::from_shared(
            prefix
                .trajectories()
                .iter()
                .filter(|t| !excluded.contains(&t.user()))
                .cloned()
                .collect(),
        );
        central_release(&filtered, &self.final_config)
            .expect("a broadcast config always instantiates")
    }

    /// Whether the headline invariant held: the federated release is
    /// byte-identical to the full central counterfactual.
    pub fn parity(&self) -> bool {
        self.release == self.central()
    }

    /// Whether every protected window was assembled without degradation.
    pub fn is_clean(&self) -> bool {
        self.deltas.iter().all(FederationDelta::is_clean)
    }
}

/// A federated smartphone: one actor multiplexing the raw lane (cohort
/// members only), the protected lane and the config lane over its link to
/// the Hive.
struct FederatedDeviceActor {
    hive: NodeId,
    raw: Option<DeviceOutbox>,
    fed: FederatedOutbox,
    config_rx: ReliableReceiver,
    deaf_from_ms: u64,
    deaf_until_ms: u64,
    upload_every_ms: u64,
    last_day: i64,
}

impl FederatedDeviceActor {
    fn deaf(&self, now_ms: u64) -> bool {
        now_ms >= self.deaf_from_ms && now_ms < self.deaf_until_ms
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now().as_millis();
        if let Some(raw) = self.raw.as_mut() {
            for tx in raw.sender_mut().poll(now) {
                if tx.retransmit {
                    ctx.note_retry();
                }
                ctx.send(self.hive, tx.frame.to_message());
            }
        }
        for tx in self.fed.sender_mut().poll(now) {
            if tx.retransmit {
                ctx.note_retry();
            }
            ctx.send(self.hive, tx.frame.to_message());
        }
        let due = [
            self.raw.as_ref().and_then(|r| r.sender().next_due()),
            self.fed.sender().next_due(),
        ]
        .into_iter()
        .flatten()
        .min();
        if let Some(due) = due {
            ctx.set_timer(due.saturating_sub(now).max(1), TICK_RETRY);
        }
    }

    fn done(&self) -> bool {
        let raw_done = self.raw.as_ref().is_none_or(|r| r.drained(self.last_day));
        // An unconfigured device parks until a config frame wakes it.
        let fed_done = self.fed.config().is_none() || self.fed.drained(self.last_day);
        raw_done && fed_done
    }
}

impl Actor for FederatedDeviceActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, msg: Message) {
        let now = ctx.now().as_millis();
        if let Ok(frame) = DataFrame::from_message(&msg) {
            // Config lane (the only Hive→device data direction).
            if self.deaf(now) {
                return;
            }
            let (released, ack) =
                self.config_rx
                    .accept(frame.sender, frame.seq, frame.chunk.clone());
            ctx.send(self.hive, ack.to_message());
            let mut installed = false;
            for (_seq, chunk) in released {
                if let Ok(frame) = ConfigFrame::decode_from_slice(&chunk) {
                    // A non-instantiating config is ignored: the device
                    // keeps its previous mechanism.
                    installed |= self.fed.install(frame.0).unwrap_or(false);
                }
            }
            if installed {
                ctx.set_timer(1, TICK_UPLOAD);
            }
        } else if let Ok(ack) = AckFrame::from_message(&msg) {
            if ack.sender & PROTECTED_LANE_BIT != 0 {
                self.fed.sender_mut().on_ack(&ack, now);
            } else if let Some(raw) = self.raw.as_mut() {
                raw.sender_mut().on_ack(&ack, now);
            }
            self.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer_id: u64) {
        match timer_id {
            TICK_UPLOAD => {
                let now_s = ctx.now().as_millis() as i64;
                if let Some(raw) = self.raw.as_mut() {
                    raw.stage(now_s);
                }
                self.fed.stage(now_s);
                self.pump(ctx);
                if !self.done() {
                    ctx.set_timer(self.upload_every_ms, TICK_UPLOAD);
                }
            }
            _ => self.pump(ctx),
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // Volatile transport state is gone; schedules, cursors and the
        // installed config are flash-durable.
        if let Some(raw) = self.raw.as_mut() {
            raw.sender_mut().crash();
        }
        self.fed.sender_mut().crash();
        ctx.set_timer(1, TICK_UPLOAD);
    }
}

/// The Hive's federated front: the cohort's raw [`Collector`], the
/// [`FederatedCollector`] and the [`ConfigBroadcaster`], multiplexed by
/// lane id.
struct FederatedHiveActor {
    cohort: Collector,
    federated: FederatedCollector,
    broadcaster: ConfigBroadcaster,
    nodes: BTreeMap<u64, NodeId>,
}

impl FederatedHiveActor {
    fn pump_broadcast(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now().as_millis();
        for (device, tx) in self.broadcaster.poll(now) {
            if tx.retransmit {
                ctx.note_retry();
            }
            if let Some(&node) = self.nodes.get(&device) {
                ctx.send(node, tx.frame.to_message());
            }
        }
        if let Some(due) = self.broadcaster.next_due() {
            ctx.set_timer(due.saturating_sub(now).max(1), TICK_RETRY);
        }
    }
}

impl Actor for FederatedHiveActor {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Message) {
        if let Ok(frame) = DataFrame::from_message(&msg) {
            if frame.sender & PROTECTED_LANE_BIT != 0 {
                if let Ok(ack) = self.federated.ingest(&frame) {
                    ctx.send(from, ack.to_message());
                }
            } else if let Ok(ack) = self.cohort.ingest(&frame) {
                ctx.send(from, ack.to_message());
            }
        } else if let Ok(ack) = AckFrame::from_message(&msg) {
            self.broadcaster.on_ack(&ack, ctx.now().as_millis());
            self.pump_broadcast(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer_id: u64) {
        self.pump_broadcast(ctx);
    }
}

/// Canonical whole-day raw upload volume: what `users` would uplink if
/// each encoded every day of `dataset` as one final [`DayBatch`]. Used for
/// the raw-exposure accounting (federated cohort vs. central everyone).
fn canonical_raw_bytes<'a>(
    dataset: &Dataset,
    users: impl Iterator<Item = &'a UserId>,
    days: i64,
) -> u64 {
    let mut total = 0u64;
    for &user in users {
        let records = dataset.records_of(user);
        for day in 0..days {
            let batch = DayBatch {
                device: user.0,
                user,
                day,
                end_of_day: true,
                records: records
                    .iter()
                    .copied()
                    .filter(|r| r.time.day_index() == day)
                    .collect(),
            };
            total += batch.encode_to_vec().len() as u64;
        }
    }
    total
}

/// Runs one federated fleet end to end: thin the generated population,
/// broadcast config v1, let every device anonymize locally and upload
/// protected day batches under the configured fault schedule, close day
/// windows with federation audits, optionally run cohort selection and
/// config upgrades, then assemble the final release.
///
/// Determinism: the same `config` always produces the same outcome, byte
/// for byte — the federated chaos proptests rely on it.
///
/// # Panics
///
/// Panics when the generated population is empty (degenerate
/// configuration) or if a simulated endpoint violates the close-in-order
/// protocol — impossible by construction.
pub fn run_federated_fleet(config: &FederatedFleetConfig) -> FederatedFleetOutcome {
    let fleet = &config.fleet;
    let population = CityModel::builder()
        .seed(fleet.seed)
        .build()
        .generate_population(&PopulationConfig {
            users: fleet.users,
            days: fleet.days as usize,
            sampling_interval_s: fleet.sampling_interval_s,
            ..PopulationConfig::default()
        });
    let population = thin_participation(&population, config.participation_pct);
    let baseline = WindowedDataset::partition(&population);
    let generated_records = population.record_count() as u64;
    let users = population.users();
    let region = population
        .bounding_box()
        .expect("generated population is non-empty");
    let anchor = region.grid_anchor();
    let policy = FederationPolicy::new(config.cohort_size);
    let cohort = policy.cohort(&users);
    let seed = config.anonymization_seed;
    let mk_config = |version: u64, spec: StrategySpec| StrategyConfig {
        version,
        spec,
        seed,
        grid_anchor: spec.requires_anchor().then_some(anchor),
    };
    let mut current = mk_config(1, config.spec);

    let mut sim = Simulation::new(fleet.seed);
    sim.set_default_link(fleet.link);

    let mut cohort_collector = Collector::new();
    for &user in &cohort {
        cohort_collector.register(user.0, user);
    }
    let mut federated = FederatedCollector::new(region);
    let mut broadcaster = ConfigBroadcaster::new(fleet.reliable);
    for &user in &users {
        federated.register(user.0, user);
        broadcaster.register(user.0);
    }
    federated.install(current);
    broadcaster.broadcast(&current);
    let hive = sim.add_node(
        "hive",
        Box::new(FederatedHiveActor {
            cohort: cohort_collector,
            federated,
            broadcaster,
            nodes: BTreeMap::new(),
        }),
    );

    let mut nodes = BTreeMap::new();
    let mut device_nodes = Vec::with_capacity(users.len());
    for &user in &users {
        let deaf = config
            .deaf
            .iter()
            .find(|(d, _, _)| *d == user.0)
            .copied()
            .unwrap_or((user.0, 0, 0));
        let fed = FederatedOutbox::new(
            user.0,
            user,
            fleet.reliable,
            population.records_of(user),
            config.poisoned.contains(&user.0),
        );
        let raw = cohort.contains(&user).then(|| {
            DeviceOutbox::new(user.0, user, fleet.reliable, population.records_of(user))
        });
        let node = sim.add_node(
            &format!("device-{}", user.0),
            Box::new(FederatedDeviceActor {
                hive,
                raw,
                fed,
                config_rx: ReliableReceiver::new(),
                deaf_from_ms: deaf.1,
                deaf_until_ms: deaf.2,
                upload_every_ms: fleet.upload_every_s,
                last_day: fleet.days - 1,
            }),
        );
        nodes.insert(user.0, node);
        device_nodes.push(node);
    }
    sim.actor_as_mut::<FederatedHiveActor>(hive)
        .expect("hive actor")
        .nodes = nodes;
    sim.set_fault_plan(fleet.faults.clone());
    for (i, &node) in device_nodes.iter().enumerate() {
        sim.post_timer(node, 1 + (i as u64 % 97), TICK_UPLOAD);
    }
    // Kick the config broadcast.
    sim.post_timer(hive, 1, TICK_RETRY);

    let mut selection = config
        .select
        .then(|| (PrivApi::new(PrivApiConfig::default()), SessionCache::new()));
    let mut windows = Vec::new();
    let mut deltas = Vec::new();
    let mut cohort_windows = Vec::new();
    let mut cohort_deltas = Vec::new();
    let mut selections = Vec::new();
    for day in 0..fleet.days {
        let close_at = (day + 1) as u64 * DAY_SECONDS as u64 + fleet.grace_s;
        sim.run_until(SimTime::from_millis(close_at));
        let mut next_config: Option<StrategyConfig> = None;
        {
            let hive_actor = sim
                .actor_as_mut::<FederatedHiveActor>(hive)
                .expect("hive actor");
            if !cohort.is_empty() {
                let (w, d) = hive_actor
                    .cohort
                    .close_day(day)
                    .expect("cohort days close in order");
                if let Some((api, cache)) = selection.as_mut() {
                    if w.record_count() > 0 {
                        if let Ok(p) = api.publish_window(cache, &w) {
                            let info = p.published.strategy.clone();
                            selections.push((day, info.to_string()));
                            let winner_spec = api
                                .pool()
                                .iter()
                                .find(|s| s.info() == info)
                                .and_then(|s| s.spec());
                            if let Some(spec) = winner_spec {
                                if spec != current.spec {
                                    next_config = Some(mk_config(current.version + 1, spec));
                                }
                            }
                        }
                    }
                }
                cohort_windows.push(w);
                cohort_deltas.push(d);
            }
            let (w, d) = hive_actor
                .federated
                .close_day(day)
                .expect("federated days close in order");
            windows.push(w);
            deltas.push(d);
            if let Some((at, spec)) = config.upgrade_at_close {
                if at == day && spec != current.spec {
                    next_config = Some(mk_config(current.version + 1, spec));
                }
            }
            if let Some(nc) = next_config {
                current = nc;
                hive_actor.federated.install(current);
                hive_actor.broadcaster.broadcast(&current);
            }
        }
        if next_config.is_some() {
            sim.post_timer(hive, 1, TICK_RETRY);
        }
    }
    // Drain everything the faults (or a late upgrade) delayed past the
    // last scheduled close, then publish trailing quarantine windows.
    sim.run();
    {
        let hive_actor = sim
            .actor_as_mut::<FederatedHiveActor>(hive)
            .expect("hive actor");
        if !cohort.is_empty() && hive_actor.cohort.has_backlog() {
            let (w, d) = hive_actor
                .cohort
                .close_day(fleet.days)
                .expect("trailing cohort close follows the last day");
            cohort_windows.push(w);
            cohort_deltas.push(d);
        }
        if hive_actor.federated.has_backlog() {
            let (w, d) = hive_actor
                .federated
                .close_day(fleet.days)
                .expect("trailing federated close follows the last day");
            windows.push(w);
            deltas.push(d);
        }
    }

    let mut protected_bytes_uplinked = 0u64;
    for &node in &device_nodes {
        let device = sim
            .actor_as::<FederatedDeviceActor>(node)
            .expect("device actor");
        protected_bytes_uplinked += device.fed.bytes_enqueued();
    }
    let raw_bytes_uplinked = canonical_raw_bytes(&population, cohort.iter(), fleet.days);
    let central_raw_bytes = canonical_raw_bytes(&population, users.iter(), fleet.days);
    let stats = sim.stats();
    let hive_actor = sim
        .actor_as::<FederatedHiveActor>(hive)
        .expect("hive actor");
    let poisoned_devices = hive_actor.federated.poisoned_devices().clone();
    let session = hive_actor.federated.session();
    FederatedFleetOutcome {
        windows,
        deltas,
        cohort_windows,
        cohort_deltas,
        release: session.release(),
        final_config: current,
        session_totals: session.totals(),
        stale_users: session.stale_users().clone(),
        poisoned_devices,
        selections,
        stats,
        baseline,
        cohort,
        generated_records,
        raw_bytes_uplinked,
        central_raw_bytes,
        protected_bytes_uplinked,
        config_frames_broadcast: hive_actor.broadcaster.frames_sent(),
        config_bytes_broadcast: hive_actor.broadcaster.bytes_sent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u64, t: i64, lat: f64, lon: f64) -> LocationRecord {
        LocationRecord::new(
            UserId(user),
            Timestamp::new(t),
            GeoPoint::new(lat, lon).unwrap(),
        )
    }

    fn sample_region() -> BoundingBox {
        BoundingBox::new(
            GeoPoint::new(45.0, 4.0).unwrap(),
            GeoPoint::new(46.0, 5.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn config_frame_roundtrips_for_every_spec() {
        let anchor = sample_region().grid_anchor();
        let specs = [
            StrategySpec::SpeedSmoothing { epsilon_m: 100.0 },
            StrategySpec::GeoIndistinguishability { epsilon: 0.01 },
            StrategySpec::SpatialCloaking { cell_m: 250.0 },
            StrategySpec::GaussianPerturbation { sigma_m: 50.0 },
            StrategySpec::TemporalDownsampling { window_s: 600 },
            StrategySpec::Identity,
        ];
        for (i, &spec) in specs.iter().enumerate() {
            let config = StrategyConfig {
                version: i as u64 + 1,
                spec,
                seed: 99,
                grid_anchor: spec.requires_anchor().then_some(anchor),
            };
            let frame = ConfigFrame(config);
            let back = ConfigFrame::decode_from_slice(&frame.encode_to_vec()).unwrap();
            assert_eq!(back, frame, "spec {spec} must roundtrip");
        }
        let bad = {
            let mut buf = BytesMut::new();
            1u64.encode(&mut buf);
            2u64.encode(&mut buf);
            9u8.encode(&mut buf);
            buf.to_vec()
        };
        assert!(matches!(
            ConfigFrame::decode_from_slice(&bad),
            Err(WireError::InvalidTag("strategy-spec", 9))
        ));
    }

    #[test]
    fn protected_batch_roundtrips_on_the_wire() {
        let b = ProtectedBatch {
            device: 7,
            user: UserId(7),
            version: 3,
            day: 1,
            end_of_day: true,
            had_data: true,
            records: vec![rec(7, DAY_SECONDS + 60, 45.5, 4.5)],
        };
        let back = ProtectedBatch::decode_from_slice(&b.encode_to_vec()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn collector_quarantines_stale_versions_and_rejects_implausible_batches() {
        let region = sample_region();
        let mut collector = FederatedCollector::new(region);
        collector.register(1, UserId(1));
        collector.register(2, UserId(2));
        let config = StrategyConfig {
            version: 2,
            spec: StrategySpec::Identity,
            seed: 0,
            grid_anchor: None,
        };
        assert!(collector.install(config));

        let send = |collector: &mut FederatedCollector, seq: u64, batch: &ProtectedBatch| {
            let frame = DataFrame {
                sender: batch.device | PROTECTED_LANE_BIT,
                seq,
                chunk: batch.encode_to_vec(),
            };
            collector.ingest(&frame).unwrap()
        };
        // Device 1: stale version 1 for day 0, then a current re-upload.
        let stale = ProtectedBatch {
            device: 1,
            user: UserId(1),
            version: 1,
            day: 0,
            end_of_day: true,
            had_data: true,
            records: vec![rec(1, 100, 45.5, 4.5)],
        };
        send(&mut collector, 1, &stale);
        let good = ProtectedBatch {
            version: 2,
            ..stale.clone()
        };
        send(&mut collector, 2, &good);
        // Device 2: a poisoned batch, far outside the plausible region.
        let poisoned = ProtectedBatch {
            device: 2,
            user: UserId(2),
            version: 2,
            day: 0,
            end_of_day: true,
            had_data: true,
            records: vec![rec(2, 200, 10.0, 10.0)],
        };
        send(&mut collector, 1, &poisoned);

        let (window, delta) = collector.close_day(0).unwrap();
        assert_eq!(window.record_count(), 1, "only the honest re-upload lands");
        assert_eq!(delta.stale_batches, 1);
        assert_eq!(delta.stale_records, 1);
        assert_eq!(delta.stale_devices, 1);
        assert_eq!(delta.implausible_records, 1);
        assert_eq!(delta.poisoned_devices, 1);
        assert_eq!(
            delta.straggler_devices, 1,
            "the poisoned device never validly reported"
        );
        assert!(!delta.is_clean());
        // Session-layer ledger agrees with the collect-layer one.
        let totals = collector.session().totals();
        assert_eq!(totals.stale_records, 1);
        assert_eq!(totals.implausible_records, 1);
        assert!(collector.session().stale_users().contains(&UserId(1)));
        assert_eq!(collector.poisoned_devices().len(), 1);
    }

    #[test]
    fn unconfigured_devices_park_and_resume_on_config() {
        let mut outbox = FederatedOutbox::new(
            1,
            UserId(1),
            ReliableConfig::default(),
            vec![rec(1, 100, 45.5, 4.5)],
            false,
        );
        assert_eq!(
            outbox.stage(2 * DAY_SECONDS),
            0,
            "no config → nothing staged"
        );
        assert!(!outbox.drained(0));
        let config = StrategyConfig {
            version: 1,
            spec: StrategySpec::Identity,
            seed: 0,
            grid_anchor: None,
        };
        assert!(outbox.install(config).unwrap());
        assert!(!outbox.install(config).unwrap(), "redelivery is idempotent");
        assert_eq!(
            outbox.stage(2 * DAY_SECONDS),
            2,
            "both elapsed days finalize"
        );
        assert!(outbox.bytes_enqueued() > 0);
        // A version bump rewinds the finalize cursor: full re-upload.
        let v2 = StrategyConfig {
            version: 2,
            ..config
        };
        assert!(outbox.install(v2).unwrap());
        assert_eq!(
            outbox.stage(2 * DAY_SECONDS),
            2,
            "history re-staged under v2"
        );
    }

    #[test]
    fn fault_free_federated_fleet_matches_the_central_counterfactual() {
        let outcome = run_federated_fleet(&FederatedFleetConfig::small(21));
        assert!(outcome.is_clean(), "deltas: {:?}", outcome.deltas);
        assert!(outcome.parity(), "federated release must equal central");
        assert_eq!(outcome.final_config.version, 1);
        assert!(outcome.release.record_count() > 0);
        assert_eq!(outcome.cohort.len(), 2);
        assert_eq!(
            outcome.cohort_windows.len(),
            2,
            "cohort raw windows close daily"
        );
        assert!(outcome.raw_bytes_uplinked < outcome.central_raw_bytes);
        assert!(outcome.protected_bytes_uplinked > 0);
        assert!(
            outcome.config_frames_broadcast >= 6,
            "one config per device"
        );
    }
}
