//! # APISENSE — a SaaS crowd-sensing middleware
//!
//! Reproduction of the APISENSE platform of the paper's §2: "a distributed
//! middleware platform that leverages the dynamic deployment of
//! crowdsourcing tasks across a population of mobile phones".
//!
//! Architecture (paper, Figure 1):
//!
//! ```text
//!  Honeycomb ──upload task──▶ Hive ──offload script──▶ mobile devices
//!      ▲                        │                           │
//!      └──────forward───────────┴◀───────records────────────┘
//! ```
//!
//! * [`honeycomb`] — experimenter endpoints: describe crowd-sensing tasks as
//!   scripts, receive and store collected datasets;
//! * [`hive`] — the central service managing the community of mobile users
//!   and publishing crowd-sensing tasks;
//! * [`script`] — the task-scripting DSL (the paper uses "an extension of
//!   JavaScript"; see `DESIGN.md` §2 for the substitution): lexer, parser
//!   and sandboxed tree-walking interpreter with a sensor host API;
//! * [`device`] — simulated smartphones: battery model, sensor suite backed
//!   by mobility trajectories, client runtime executing deployed scripts;
//! * [`privacy`] — the two privacy layers: the device-side filter ("filter
//!   out and blur sensitive information (e.g., address book, location)
//!   depending on user preferences") and the platform-side
//!   [`privacy::PublicationGateway`] releasing collected datasets through
//!   the PRIVAPI evaluation engine and its shared strategy pool;
//! * [`virtual_sensor`] — device-group orchestration with round-robin,
//!   energy-aware and coverage-aware retrieval strategies;
//! * [`incentives`] — user feedback, ranking, rewarding and win-win
//!   incentive strategies with a participation model;
//! * [`deploy`] — end-to-end campaigns over the [`simnet`] network
//!   simulator (experiment E4);
//! * [`collect`] — the reliable device→Hive ingestion endpoint:
//!   at-least-once day-batch delivery with (device, sequence) dedup,
//!   out-of-order buffering and straggler quarantine, so the publication
//!   stream's ascending-day contract holds by protocol under network
//!   faults;
//! * [`fleet`] — fault-injected fleet runs (experiment E13): a device
//!   population uploading through [`collect`] over [`simnet::FaultPlan`]
//!   chaos, with the fault-free partition as byte-identity oracle;
//! * [`campaigns`] — the multi-campaign publication surface: every
//!   deployed task mapped onto a [`campaign::Orchestrator`] campaign, so
//!   N concurrent tasks release daily over one shared population stream
//!   with the original-side attack extraction paid once;
//! * [`federated`] — device-local anonymization (experiment E15): the Hive
//!   broadcasts the winning strategy as a versioned config, devices
//!   anonymize their own day slices and upload only protected records,
//!   and the server-side collector quarantines stale-config and poisoned
//!   uploads while keeping the assembled release byte-identical to the
//!   central counterfactual.
//!
//! # Example
//!
//! ```
//! use apisense::honeycomb::ExperimentBuilder;
//! use apisense::script::Script;
//!
//! let script = Script::compile(r#"
//!     let fix = sensor.gps();
//!     emit({ "lat": fix.lat, "lon": fix.lon });
//! "#).unwrap();
//! let task = ExperimentBuilder::new("network-quality")
//!     .script(script)
//!     .sampling_interval_s(120)
//!     .build();
//! assert_eq!(task.name(), "network-quality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod campaigns;
pub mod collect;
pub mod deploy;
pub mod device;
pub mod federated;
pub mod fleet;
pub mod hive;
pub mod honeycomb;
pub mod incentives;
pub mod privacy;
pub mod script;
pub mod virtual_sensor;

pub use error::ApisenseError;
